//! Minimal, offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest API the test-suite uses: the [`Strategy`]
//! trait with `prop_map` and `boxed`, strategies for integer/float ranges
//! and tuples, [`Just`], `any::<T>()`, the `prop_oneof!` and `proptest!`
//! macros, and `prop_assert!`/`prop_assert_eq!`. Value generation is a
//! deterministic seeded xorshift; there is no shrinking (the test-suite
//! disables it anyway via `max_shrink_iters: 0`). Swapping back to the real
//! crate requires no source changes in the tests.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The subset of `proptest::prelude` the tests import.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Deterministic xorshift64* generator driving all value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the `proptest!` macro seeds from the test name so
    /// every test case sequence is reproducible.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: (seed ^ 0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe internal form of [`Strategy`].
trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between boxed alternatives, built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// Full-range strategy for a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                FullRange::<$t>(std::marker::PhantomData).boxed()
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        FullRange::<bool>(std::marker::PhantomData).boxed()
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of test cases to generate.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Base seed for the value generator.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            seed: 0xC0FF_EE00,
        }
    }
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Supports the shape used in this repository: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(arg in
/// strategy) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(#[$meta:meta])* fn $name:ident($arg:pat_param in $strategy:expr) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = $strategy;
            let mut rng = $crate::TestRng::new(
                config.seed ^ stringify!($name).len() as u64,
            );
            for case in 0..config.cases {
                let value = $crate::Strategy::new_value(&strategy, &mut rng);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let $arg = value;
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!("proptest case {case}/{} failed", config.cases);
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)) => {};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
