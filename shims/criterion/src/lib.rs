//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository has no access to crates.io, so
//! the real `criterion` cannot be used. This shim implements just the subset
//! of the API the `bench` crate's benchmarks call — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! warmup-then-measure timing loop printing mean ns/iteration. Swapping the
//! workspace dependency back to the real crate requires no source changes in
//! the benchmarks.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed batches per benchmark.
const BATCHES: u32 = 5;
/// Target wall-clock time per timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(200);

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration over the timed batches.
    mean_ns: f64,
    iters_done: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            mean_ns: 0.0,
            iters_done: 0,
        }
    }

    /// Run `f` repeatedly: a calibration pass sizes the batch, then
    /// `BATCHES` timed batches are averaged.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: find an iteration count that fills BATCH_TARGET.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET / 10 || n >= 1 << 30 {
                let per_iter = elapsed.as_secs_f64() / n as f64;
                n = ((BATCH_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 32);
                break;
            }
            n *= 8;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += n;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iters as f64;
        self.iters_done = iters;
    }
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_named(&full, f);
        self
    }

    /// Run one benchmark in this group with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_named(&full, |b| f(b, input));
        self
    }

    /// End the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_named(name, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run_named<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        println!(
            "{name:<48} {:>12.1} ns/iter ({} iters)",
            bencher.mean_ns, bencher.iters_done
        );
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, but still part of the public API).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
