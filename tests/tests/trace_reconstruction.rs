//! The flight recorder as a reconstruction oracle: a seeded concurrent
//! run's collector output must agree with what the runtime itself
//! reports.
//!
//! * Every committed incarnation (by receipt id) has a full
//!   begin→…→committed span tree whose five client-side children tile the
//!   root exactly.
//! * The restart events surviving in the recorder equal the runtime's
//!   restart counters — no incarnation restarted untraced, none twice.
//! * `TraceLog::lifecycle_violations` is empty: incarnation ids never
//!   leak events across restarts (each attempt runs under a fresh id).
//! * The serialization order certified by the `sercheck` oracle mentions
//!   only transactions whose commit the recorder also saw.
//! * `Database::trace_report`'s Section-5 phase sums telescope to the
//!   measured end-to-end latency (within 5%, the PR acceptance bound —
//!   exact by construction, the tolerance only covers float folding).
//!
//! The rings are sized far above the event volume so nothing is
//! overwritten — asserted first, so every equality below is exact.

use std::collections::BTreeSet;

use dbmodel::{CcMethod, LogicalItemId};
use runtime::{
    CcPolicy, Database, Phase, RuntimeConfig, TraceConfig, TraceLevel, TraceLog, TxnError, TxnSpec,
};

const ITEMS: u64 = 16;

fn traced_config(policy: CcPolicy) -> RuntimeConfig {
    RuntimeConfig {
        num_shards: 2,
        num_items: ITEMS,
        initial_value: 1_000,
        policy,
        deadlock_scan_interval: std::time::Duration::from_millis(2),
        trace: TraceConfig {
            level: TraceLevel::Full,
            // Far above the event volume of these runs: no ring wraps, so
            // the recorder holds the *complete* event history.
            ring_capacity: 1 << 16,
            ..TraceConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

#[test]
fn span_trees_agree_with_the_execution_log_under_contention() {
    let db = Database::open(traced_config(CcPolicy::Static(CcMethod::TwoPhaseLocking))).unwrap();
    let threads = 4u64;
    let txns_per_thread = 50u64;

    // Seeded contention: every thread interleaves all three protocols
    // over the same 16 items, so restarts genuinely occur.
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut receipts = Vec::new();
                for k in 0..txns_per_thread {
                    let method = CcMethod::ALL[((t + k) % 3) as usize];
                    let from = LogicalItemId((t * 5 + k) % ITEMS);
                    let to = LogicalItemId((t * 5 + k * 7 + 1) % ITEMS);
                    if from == to {
                        continue;
                    }
                    let spec = TxnSpec::new().write(from).write(to).method(method);
                    match db.run_transaction(&spec, |reads| {
                        vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
                    }) {
                        Ok(receipt) => receipts.push(receipt.id),
                        Err(TxnError::TooManyRestarts { .. }) => {}
                        Err(other) => panic!("unexpected transaction error: {other:?}"),
                    }
                }
                receipts
            })
        })
        .collect();
    let mut committed_ids = Vec::new();
    for worker in workers {
        committed_ids.extend(worker.join().expect("client thread panicked"));
    }

    let stats = db.stats();
    let events = db.trace_snapshot();
    assert_eq!(
        events.len() as u64,
        stats.trace_events,
        "rings sized above the event volume must not have overwritten anything"
    );

    let log = TraceLog::from_events(events);

    // Every committed incarnation reconstructs to a full span tree whose
    // client-side children tile the root interval exactly.
    for id in &committed_ids {
        let tree = log
            .span_tree(id.0)
            .unwrap_or_else(|| panic!("committed txn {id:?} left no events"));
        let root = tree
            .root
            .unwrap_or_else(|| panic!("committed txn {id:?} has no begin→terminal root"));
        assert_eq!(
            tree.children.len(),
            5,
            "committed txn {id:?} is missing client-side boundary events"
        );
        assert_eq!(tree.children[0].start_nanos, root.start_nanos);
        assert_eq!(tree.children[4].end_nanos, root.end_nanos);
        for pair in tree.children.windows(2) {
            assert_eq!(
                pair[0].end_nanos, pair[1].start_nanos,
                "txn {id:?}: segments must telescope"
            );
        }
    }

    // Commit and restart events agree with the runtime's own counters.
    let traced_committed: BTreeSet<u64> = log.committed().into_iter().collect();
    assert_eq!(traced_committed.len() as u64, stats.committed);
    assert_eq!(log.count_phase(Phase::Committed), stats.committed);
    assert_eq!(
        log.count_phase(Phase::RestartRejected),
        stats.rejected_restarts
    );
    assert_eq!(
        log.count_phase(Phase::RestartDeadlock),
        stats.deadlock_restarts
    );
    assert_eq!(log.restart_events(), stats.restarts());

    // Incarnation ids never leak events across restarts.
    let violations = log.lifecycle_violations();
    assert!(
        violations.is_empty(),
        "lifecycle violations: {violations:?}"
    );

    // The serializability oracle's order mentions only commits the
    // recorder also saw (same incarnation ids end-to-end).
    let report = db.shutdown().expect("shutdown");
    let order = report.serializable().expect("run must be serializable");
    for txn in &order {
        assert!(
            traced_committed.contains(&txn.0),
            "serialized txn {txn:?} has no traced commit"
        );
    }
}

#[test]
fn trace_report_phase_sums_match_end_to_end_latency() {
    let db = Database::open(traced_config(CcPolicy::Mix {
        p_2pl: 0.34,
        p_to: 0.33,
    }))
    .unwrap();
    // Deterministic single-client load: no contention, every incarnation
    // commits first try under whichever method the mix assigns.
    for k in 0..200u64 {
        let from = LogicalItemId(k % ITEMS);
        let to = LogicalItemId((k * 7 + 1) % ITEMS);
        if from == to {
            continue;
        }
        let spec = TxnSpec::new().write(from).write(to);
        db.run_transaction(&spec, |reads| {
            vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
        })
        .expect("uncontended transaction commits");
    }

    let report = db.trace_report();
    assert!(
        !report.methods.is_empty(),
        "a mixed run must report at least one method breakdown"
    );
    for m in &report.methods {
        assert!(m.spans() > 0);
        let sum = m.phase_sum_mean_us();
        let e2e = m.end_to_end_mean_us();
        assert!(e2e > 0.0, "commits take non-zero time");
        let relative = (sum - e2e).abs() / e2e;
        assert!(
            relative <= 0.05,
            "phase sums must telescope to end-to-end latency: \
             sum {sum:.3}µs vs e2e {e2e:.3}µs ({relative:.4} relative error)"
        );
    }
    // The dwell meters were live on the default batched-ring transport.
    assert!(
        report.transport_dwell.iter().all(|d| d.messages > 0),
        "stamped dwell meters only report lanes that moved messages"
    );
    let table = report.format_table();
    assert!(
        table.contains("sum-S"),
        "report renders the Section-5 table"
    );
    db.shutdown().expect("shutdown");
}
