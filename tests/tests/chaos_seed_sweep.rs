//! Seed-sweep chaos property test: 200+ seeded fault schedules, each run
//! against a live multi-shard [`runtime::Database`] with a mixed-protocol
//! bank workload, and every surviving history certified by the `sercheck`
//! oracle.
//!
//! Each seed samples its own chaos mix ([`FaultProfile::sampled`]): drop /
//! duplicate / delay rates, partition windows and shard crash points, all
//! materialized into one deterministic [`FaultSchedule`]. The invariants a
//! run must uphold no matter what the schedule does:
//!
//! * every client finishes — commit, `TooManyRestarts`, or
//!   `ShardUnavailable`; never a hang, never a panic;
//! * the conserved bank total survives (no lost committed writes, no
//!   partially applied transfers);
//! * the merged execution log is conflict-serializable;
//! * no transaction is still registered after the drain.
//!
//! On any violation the test panics with the seed, the full schedule and a
//! one-command replay line, so a failure found in a 200-seed sweep can be
//! reproduced in isolation:
//!
//! ```text
//! CHAOS_REPLAY_SEED=<seed> cargo test -p integration-tests \
//!     --test chaos_seed_sweep replay_one -- --ignored --nocapture
//! ```
//!
//! The file also carries the runtime half of the mutation test: the same
//! duplicate-storm schedule is run twice, once with duplicate suppression
//! on (everything commits, `dup_suppressed` counts the storm) and once
//! with the guard mutated off (the suite demonstrably fails), proving the
//! harness has teeth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dbmodel::{CcMethod, LogicalItemId, ReplicationPolicy};
use runtime::{CcPolicy, Database, FaultProfile, FaultSchedule, RuntimeConfig, TxnError, TxnSpec};

const ACCOUNTS: u64 = 16;
const INITIAL: i64 = 1_000;
const SHARDS: u32 = 2;
const THREADS: u64 = 3;
const TXNS_PER_THREAD: u64 = 8;

fn li(i: u64) -> LogicalItemId {
    LogicalItemId(i % ACCOUNTS)
}

/// Everything a human needs to rerun one failing seed by hand.
fn replay_banner(seed: u64, schedule: &FaultSchedule) -> String {
    format!(
        "chaos seed {seed:#018x} violated an invariant.\n{schedule}\nreplay: \
         CHAOS_REPLAY_SEED={seed} cargo test -p integration-tests \
         --test chaos_seed_sweep replay_one -- --ignored --nocapture"
    )
}

/// A chaos-tuned runtime: short deadlines so dead shards surface as
/// bounded errors instead of stalls, a roomy inbox so a sleeping shard
/// backs traffic up without wedging senders, and a fast detector so
/// stranded queue entries are swept within the run.
fn chaos_config(schedule: FaultSchedule) -> RuntimeConfig {
    RuntimeConfig {
        num_shards: SHARDS,
        num_items: ACCOUNTS,
        initial_value: INITIAL,
        replication: ReplicationPolicy::SingleCopy,
        policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
        deadlock_scan_interval: Duration::from_millis(2),
        shard_inbox_capacity: 4096,
        request_timeout: Duration::from_millis(50),
        commit_timeout: Duration::from_millis(200),
        max_restarts: 6,
        restart_backoff: Duration::from_micros(200),
        faults: Some(schedule),
        ..RuntimeConfig::default()
    }
}

/// The total balance, read in one big transaction. Only called after
/// `quiesce_faults`, but a shard may still be sleeping off a crash
/// outage and stranded entries may still await the detector's sweep, so
/// clean timeouts are retried.
fn audit_total(db: &Database, seed: u64, schedule: &FaultSchedule) -> i64 {
    let spec = TxnSpec::new().reads((0..ACCOUNTS).map(LogicalItemId));
    for _ in 0..20 {
        match db.run_transaction(&spec, |_| vec![]) {
            Ok(receipt) => return receipt.reads.values().sum(),
            Err(TxnError::TooManyRestarts { .. }) | Err(TxnError::ShardUnavailable) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(err) => panic!("audit failed: {err}\n{}", replay_banner(seed, schedule)),
        }
    }
    panic!(
        "audit never committed after quiesce\n{}",
        replay_banner(seed, schedule)
    )
}

/// What one seeded run observed, for chunk-level aggregate assertions.
struct RunOutcome {
    committed: u64,
    faults_injected: u64,
    dup_suppressed: u64,
    snapshot_served: u64,
}

/// Run one seeded chaos schedule end to end and check every invariant.
fn run_seed(seed: u64) -> RunOutcome {
    let profile = FaultProfile::sampled(seed);
    let schedule = FaultSchedule::generate(profile, seed, SHARDS as usize);
    let db = Database::open(chaos_config(schedule.clone())).unwrap();
    let committed = Arc::new(AtomicU64::new(0));
    let clean_failures = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            let committed = Arc::clone(&committed);
            let clean_failures = Arc::clone(&clean_failures);
            std::thread::spawn(move || {
                for k in 0..TXNS_PER_THREAD {
                    let method = CcMethod::ALL[((t + k) % 3) as usize];
                    let from = li(t * 5 + k);
                    let to = li(t * 3 + k * 7 + 1);
                    if from == to {
                        continue;
                    }
                    let amount = (1 + (t + k) % 9) as i64;
                    let spec = TxnSpec::new().write(from).write(to).method(method);
                    match db.run_transaction(&spec, |reads| {
                        vec![(from, reads[&from] - amount), (to, reads[&to] + amount)]
                    }) {
                        Ok(_) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        // The only acceptable failures under chaos: the
                        // bounded-restart budget ran out, or a shard
                        // stopped answering within its deadline. Both are
                        // clean — nothing half-applied, nothing stuck.
                        Err(TxnError::TooManyRestarts { .. }) | Err(TxnError::ShardUnavailable) => {
                            clean_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => panic!("unexpected transaction error: {err}"),
                    }
                }
            })
        })
        .collect();

    // PR 10: a snapshot auditor races the transfer threads. Every
    // read-only execute that succeeds — snapshot-served or fallen back —
    // must observe a transaction-consistent cut, i.e. the conserved bank
    // total, no matter what the schedule does to the coordinated traffic
    // around it. A crashed shard may only surface as a bounded clean
    // error, never as a torn answer.
    let snapshot_served = Arc::new(AtomicU64::new(0));
    let auditor = {
        let db = db.clone();
        let served = Arc::clone(&snapshot_served);
        let schedule = schedule.clone();
        std::thread::spawn(move || {
            let spec = TxnSpec::new().reads((0..ACCOUNTS).map(LogicalItemId));
            for _ in 0..6 {
                match db.execute(&spec) {
                    Ok(receipt) => {
                        let total: i64 = receipt.reads.values().sum();
                        assert_eq!(
                            total,
                            ACCOUNTS as i64 * INITIAL,
                            "a read observed a torn cut (snapshot={})\n{}",
                            receipt.snapshot,
                            replay_banner(seed, &schedule),
                        );
                        if receipt.snapshot {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(TxnError::TooManyRestarts { .. }) | Err(TxnError::ShardUnavailable) => {}
                    Err(err) => panic!(
                        "unexpected snapshot auditor error: {err}\n{}",
                        replay_banner(seed, &schedule)
                    ),
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    for worker in workers.into_iter().chain(std::iter::once(auditor)) {
        if worker.join().is_err() {
            panic!(
                "a client thread panicked\n{}",
                replay_banner(seed, &schedule)
            );
        }
    }

    // Flush anything the plane still holds (delayed or partition-buffered
    // messages) before checking the drained state.
    db.quiesce_faults();
    assert_eq!(
        db.live_transactions(),
        0,
        "clients drained but transactions stayed registered\n{}",
        replay_banner(seed, &schedule)
    );

    // No lost committed writes: transfers conserve the bank total whether
    // they committed, aborted, or timed out at commit (decided but
    // unacknowledged — still applied atomically).
    let total = audit_total(&db, seed, &schedule);
    assert_eq!(
        total,
        ACCOUNTS as i64 * INITIAL,
        "bank total not conserved\n{}",
        replay_banner(seed, &schedule)
    );

    let stats = db.stats();
    let counters = db.fault_counters().expect("fault plane is armed");
    let report = db.shutdown().expect("last handle drains the runtime");
    if let Err(violation) = report.serializable() {
        panic!(
            "history not serializable: {violation:?}\n{}",
            replay_banner(seed, &schedule)
        );
    }
    RunOutcome {
        committed: committed.load(Ordering::Relaxed),
        faults_injected: counters.total(),
        dup_suppressed: stats.dup_suppressed,
        snapshot_served: snapshot_served.load(Ordering::Relaxed),
    }
}

/// Sweep one contiguous chunk of seeds and assert chunk-level aggregates:
/// chaos actually fired, and progress was still made.
fn sweep_chunk(range: std::ops::Range<u64>) {
    let mut committed = 0;
    let mut faults = 0;
    let mut snapshots = 0;
    for seed in range.clone() {
        let outcome = run_seed(seed);
        committed += outcome.committed;
        faults += outcome.faults_injected;
        snapshots += outcome.snapshot_served;
    }
    assert!(
        committed > 0,
        "no transaction committed across seeds {range:?} — chaos drowned all progress"
    );
    assert!(
        faults > 0,
        "no fault fired across seeds {range:?} — the plane is not wired in"
    );
    assert!(
        snapshots > 0,
        "no snapshot read served across seeds {range:?} — the plane is not wired in"
    );
}

// The 200-seed sweep, chunked so `--test-threads=4` runs it in parallel.

#[test]
fn chaos_sweep_seeds_000_049() {
    sweep_chunk(0..50);
}

#[test]
fn chaos_sweep_seeds_050_099() {
    sweep_chunk(50..100);
}

#[test]
fn chaos_sweep_seeds_100_149() {
    sweep_chunk(100..150);
}

#[test]
fn chaos_sweep_seeds_150_199() {
    sweep_chunk(150..200);
}

/// One-command replay of a failing seed printed by `replay_banner`.
#[test]
#[ignore = "manual replay hook: set CHAOS_REPLAY_SEED"]
fn replay_one() {
    let seed: u64 = std::env::var("CHAOS_REPLAY_SEED")
        .expect("set CHAOS_REPLAY_SEED=<seed> to replay")
        .parse()
        .expect("CHAOS_REPLAY_SEED must be a u64");
    let outcome = run_seed(seed);
    println!(
        "seed {seed:#018x}: committed={} faults_injected={} dup_suppressed={} snapshot_served={}",
        outcome.committed, outcome.faults_injected, outcome.dup_suppressed, outcome.snapshot_served
    );
}

/// A duplicate-storm schedule: every faultable message is delivered
/// twice. With suppression on this is harmless noise; with it mutated
/// off it corrupts the queues.
fn duplicate_storm_schedule(seed: u64) -> FaultSchedule {
    let profile = FaultProfile {
        dup_rate: 1.0,
        horizon: 4096,
        ..FaultProfile::default()
    };
    FaultSchedule::generate(profile, seed, SHARDS as usize)
}

/// Control arm: under a 100% duplicate storm with suppression ON
/// (the default), every transaction commits, the suppression counter
/// proves re-deliveries really arrived and were absorbed, and the
/// history stays serializable.
#[test]
fn duplicate_storm_is_absorbed_when_suppression_is_on() {
    let db = Database::open(chaos_config(duplicate_storm_schedule(7))).unwrap();
    for k in 0..12u64 {
        let from = li(k);
        let to = li(k + 5);
        let spec = TxnSpec::new()
            .write(from)
            .write(to)
            .method(CcMethod::ALL[(k % 3) as usize]);
        db.run_transaction(&spec, |reads| {
            vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
        })
        .expect("duplicates are suppressed, so every transaction commits");
    }
    db.quiesce_faults();
    let stats = db.stats();
    assert!(
        stats.dup_suppressed > 0,
        "a 100% dup-rate storm must exercise the suppression guard"
    );
    let counters = db.fault_counters().unwrap();
    assert!(counters.duplicated > 0, "the plane duplicated nothing");
    let report = db.shutdown().unwrap();
    assert!(report.serializable().is_ok());
}

/// Mutation arm: the same storm with the suppression guard disabled
/// (`dedup_access: false`) demonstrably fails — the first re-delivered
/// `Access` double-queues its transaction, the queue invariant trips
/// (debug assertion in `pam::DataQueue::insert`), the shard dies and
/// clients surface bounded errors instead of committing. This is the
/// proof the chaos suite has teeth: weaken the runtime's idempotence
/// and the tests notice.
///
/// Debug builds only: the double-queue trip is a `debug_assert`, which
/// is exactly the mutation the engine-level test in `unified-cc`
/// (`dedup_mutation_double_entry_is_demonstrable`) pins down for both
/// build profiles.
#[cfg(debug_assertions)]
#[test]
fn duplicate_storm_without_suppression_demonstrably_fails() {
    let mut config = chaos_config(duplicate_storm_schedule(7));
    config.dedup_access = false; // the mutation under test
    config.max_restarts = 2;
    // The panicking shard stops draining its inbox; keep the detector
    // from flooding it while the clients fail over.
    config.deadlock_scan_interval = Duration::from_millis(25);
    let db = Database::open(config).unwrap();

    let mut failures = 0;
    for k in 0..12u64 {
        let from = li(k);
        let to = li(k + 5);
        let spec = TxnSpec::new()
            .write(from)
            .write(to)
            .method(CcMethod::ALL[(k % 3) as usize]);
        match db.run_transaction(&spec, |reads| {
            vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
        }) {
            Ok(_) => {}
            Err(TxnError::TooManyRestarts { .. })
            | Err(TxnError::ShardUnavailable)
            | Err(TxnError::ShuttingDown) => failures += 1,
            Err(err) => panic!("unexpected error under mutation: {err}"),
        }
    }
    assert!(
        failures > 0,
        "suppression was mutated off under a duplicate storm but every \
         transaction still committed — the harness has no teeth"
    );
    db.shutdown();
}
