//! The paper's Section 4.2 counter-example, executed against the real engine.
//!
//! Three data items x, y, z and three transactions:
//!
//! ```text
//! t1 (T/O):  r1(x), w1(y)
//! t2 (T/O):  r2(y), w2(z)
//! t3 (2PL):  r3(z), w3(x)
//! ```
//!
//! With the precedence orders r1 < w3 on x, r2 < w1 on y, r3 < w2 on z, a
//! naive combination of pure-T/O and pure-2PL enforcement would let all three
//! execute and produce a non-serializable history (the paper's motivating
//! example for why "sometimes read requests must lock the data"). The
//! unified engine's semi-lock protocol must prevent it: whatever order the
//! messages are processed in, the resulting implementation logs must stay
//! conflict serializable.

use dbmodel::{
    AccessMode, CcMethod, LogSet, LogicalItemId, PhysicalItemId, SiteId, Timestamp, Transaction,
    TsTuple, TxnId,
};
use pam::RequestMsg;
use sercheck::check_serializable;
use unified_cc::{EnforcementMode, QueueManager, RequestIssuer, RiAction};

fn item(i: u64) -> PhysicalItemId {
    PhysicalItemId::new(LogicalItemId(i), SiteId(0))
}

/// Drive a set of issuers against one queue manager until quiescence, in a
/// caller-controlled round-robin order, recording implementations.
fn drive(qm: &mut QueueManager, issuers: &mut [RequestIssuer], logs: &mut LogSet, order: &[usize]) {
    // Seed with the start messages, interleaved in the requested order.
    let mut inboxes: Vec<Vec<RequestMsg>> = issuers.iter_mut().map(|ri| ri.start().sends).collect();
    for _round in 0..200 {
        let mut progressed = false;
        for &idx in order {
            let msgs: Vec<RequestMsg> = std::mem::take(&mut inboxes[idx]);
            for msg in msgs {
                progressed = true;
                let out = qm.handle(SiteId(0), &msg);
                for event in out.events {
                    if let unified_cc::QmEvent::Implemented {
                        item, txn, access, ..
                    } = event
                    {
                        logs.record(item, txn, access);
                    }
                }
                for reply in out.replies {
                    // Replies may belong to any issuer (grants unblocked by a
                    // release), so route by transaction id.
                    let target = issuers
                        .iter_mut()
                        .position(|ri| ri.txn_id() == reply.txn())
                        .expect("reply for a known transaction");
                    let ri_out = issuers[target].on_reply(&reply);
                    inboxes[target].extend(ri_out.sends);
                    if ri_out.actions.contains(&RiAction::StartExecution) {
                        let exec = issuers[target].on_execution_done();
                        inboxes[target].extend(exec.sends);
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
}

fn build_issuer(id: u64, method: CcMethod, ts: u64, read: u64, write: u64) -> RequestIssuer {
    let txn = Transaction::builder(TxnId(id), SiteId(0))
        .method(method)
        .read(LogicalItemId(read))
        .write(LogicalItemId(write))
        .build();
    RequestIssuer::new(
        txn,
        TsTuple::new(Timestamp(ts), 5),
        vec![
            (item(read), AccessMode::Read),
            (item(write), AccessMode::Write),
        ],
    )
}

#[test]
fn section_4_2_example_stays_serializable_under_every_interleaving() {
    // x = item 1, y = item 2, z = item 3.
    let orders: Vec<Vec<usize>> = vec![
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ];
    for order in orders {
        let mut qm = QueueManager::new(SiteId(0));
        for i in 1..=3 {
            qm.add_item(item(i), 0, EnforcementMode::SemiLock);
        }
        let mut issuers = vec![
            build_issuer(1, CcMethod::TimestampOrdering, 10, 1, 2), // t1: r(x) w(y)
            build_issuer(2, CcMethod::TimestampOrdering, 20, 2, 3), // t2: r(y) w(z)
            build_issuer(3, CcMethod::TwoPhaseLocking, 0, 3, 1),    // t3: r(z) w(x)
        ];
        let mut logs = LogSet::new();
        drive(&mut qm, &mut issuers, &mut logs, &order);
        let verdict = check_serializable(&logs);
        assert!(
            verdict.is_ok(),
            "interleaving {order:?} produced a non-serializable history: {verdict:?}"
        );
    }
}

#[test]
fn to_read_does_take_a_semi_lock_that_blocks_2pl_writers() {
    // The crux of the example: after a T/O transaction reads x and is
    // considered executed, a 2PL writer of x must still wait until the T/O
    // transaction's locks are fully released if the read was pre-scheduled —
    // but when the T/O read lock is a plain (normal) grant and then released,
    // the 2PL writer proceeds. Here we check the blocking direction: while
    // the T/O transaction still *holds* its (semi-)read lock, a 2PL write is
    // not granted.
    let mut qm = QueueManager::new(SiteId(0));
    qm.add_item(item(1), 7, EnforcementMode::SemiLock);

    // T/O transaction reads x and holds the lock (no release yet).
    let to_read = RequestMsg::Access {
        txn: TxnId(1),
        item: item(1),
        mode: AccessMode::Read,
        method: CcMethod::TimestampOrdering,
        ts: TsTuple::new(Timestamp(10), 5),
    };
    let out = qm.handle(SiteId(0), &to_read);
    assert_eq!(out.replies.len(), 1, "T/O read granted");

    // A 2PL write arrives: it must wait behind the semi-read lock.
    let w2pl = RequestMsg::Access {
        txn: TxnId(2),
        item: item(1),
        mode: AccessMode::Write,
        method: CcMethod::TwoPhaseLocking,
        ts: TsTuple::new(Timestamp(0), 1),
    };
    let out = qm.handle(SiteId(0), &w2pl);
    assert!(
        out.replies.is_empty(),
        "the 2PL writer must block on the T/O reader's lock"
    );

    // Releasing the T/O reader unblocks the writer.
    let release = RequestMsg::Release {
        txn: TxnId(1),
        item: item(1),
        write_value: None,
        commit_ts: Timestamp::ZERO,
    };
    let out = qm.handle(SiteId(0), &release);
    assert!(
        out.replies
            .iter()
            .any(|r| matches!(r, pam::ReplyMsg::Grant { txn: TxnId(2), .. })),
        "2PL writer granted once the reader releases"
    );
}
