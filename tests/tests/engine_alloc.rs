//! The acceptance criterion of the allocation-free engine core, asserted
//! directly: after warm-up, a steady-state `handle_batch` call performs
//! **zero** heap allocations.
//!
//! A counting global allocator wraps `System` and counts every `alloc`,
//! `alloc_zeroed` and `realloc` (frees are irrelevant — the claim is that
//! the hot path never *asks* the allocator for memory). The workload is a
//! deterministic steady-state wave mixing all three protocols on one
//! queue manager: a wide 2PL write transaction over all eight items (the
//! exp9 gate-cell shape), a T/O demote-then-release transaction, and a PA
//! transaction driven through a full backoff round (`Access` → `Backoff`
//! → `UpdatedTs` → grant → release). Warm-up waves grow every buffer the
//! wave will ever touch — the sink's reply/event vectors and upgrade
//! scratch, each item's queue and lock storage, the message scratch —
//! and the measured waves must then leave the allocation counter exactly
//! where it was.
//!
//! The measurement takes the minimum over several windows so a stray
//! allocation from the test harness's own machinery (timers, stdout)
//! cannot flake the test; the engine allocating *every* wave would still
//! fail all windows.
//!
//! This file holds only this test: the counting allocator is process-wide
//! and must not observe unrelated tests running concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dbmodel::{
    AccessMode, CcMethod, LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId, Value,
};
use pam::{ReplyMsg, RequestMsg};
use unified_cc::{EnforcementMode, QmSink, QueueManager};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const SITE: SiteId = SiteId(0);
const ITEMS: u64 = 8;
const INITIAL: Value = 100;

fn pi(i: u64) -> PhysicalItemId {
    PhysicalItemId::new(LogicalItemId(i), SITE)
}

/// Monotone counters threaded through the waves.
struct Clock {
    txn: u64,
    ts: u64,
    /// Commit-stamp domain (PR 10): the wide 2PL release installs a
    /// stamped version each wave, and the watermark follows it.
    cts: u64,
}

/// One steady-state wave: wide 2PL (stamped — each release appends to
/// the item's version ring), T/O with demote, PA with a backoff round,
/// and a snapshot read of every item at the advanced watermark — every
/// message batched through `handle_batch` into `sink`, with `msgs` as
/// the reused message scratch and `snap_out` as the reused snapshot
/// reply buffer.
fn wave(
    qm: &mut QueueManager,
    sink: &mut QmSink,
    msgs: &mut Vec<RequestMsg>,
    snap_items: &[PhysicalItemId],
    snap_out: &mut Vec<(PhysicalItemId, Value, Timestamp)>,
    clock: &mut Clock,
) {
    // --- Wide 2PL write transaction over all items (access then release,
    // the two HandleBatch commands the runtime shard would see).
    let t = TxnId(clock.txn);
    clock.txn += 1;
    msgs.clear();
    for i in 0..ITEMS {
        msgs.push(RequestMsg::Access {
            txn: t,
            item: pi(i),
            mode: AccessMode::Write,
            method: CcMethod::TwoPhaseLocking,
            ts: TsTuple::new(Timestamp(1), 10),
        });
    }
    sink.clear();
    qm.handle_batch(SITE, msgs.iter(), sink);
    assert_eq!(sink.replies.len(), ITEMS as usize, "all 2PL writes granted");
    clock.cts += 1;
    let cts = Timestamp(clock.cts);
    msgs.clear();
    for i in 0..ITEMS {
        msgs.push(RequestMsg::Release {
            txn: t,
            item: pi(i),
            write_value: Some(INITIAL),
            commit_ts: cts,
        });
    }
    sink.clear();
    qm.handle_batch(SITE, msgs.iter(), sink);

    // --- Snapshot read of every item at the freshly advanced watermark:
    // version-ring installs and chain walks at steady state must be as
    // allocation-free as the queue machinery (PR 10 satellite).
    qm.set_watermark(cts);
    snap_out.clear();
    assert!(
        qm.snapshot_read_into(cts, snap_items, snap_out),
        "the watermark version is always retained"
    );
    assert!(snap_out.iter().all(|&(_, v, ts)| v == INITIAL && ts == cts));

    // --- T/O transaction at a strictly rising timestamp: grant, demote
    // (semi-locks + implementation), release.
    let t = TxnId(clock.txn);
    clock.txn += 1;
    clock.ts += 10;
    let ts = clock.ts;
    msgs.clear();
    for i in 0..2 {
        msgs.push(RequestMsg::Access {
            txn: t,
            item: pi(i),
            mode: AccessMode::Write,
            method: CcMethod::TimestampOrdering,
            ts: TsTuple::new(Timestamp(ts), 10),
        });
    }
    for i in 0..2 {
        msgs.push(RequestMsg::Demote {
            txn: t,
            item: pi(i),
            write_value: Some(INITIAL),
            commit_ts: Timestamp::ZERO,
        });
    }
    for i in 0..2 {
        msgs.push(RequestMsg::Release {
            txn: t,
            item: pi(i),
            write_value: None,
            commit_ts: Timestamp::ZERO,
        });
    }
    sink.clear();
    qm.handle_batch(SITE, msgs.iter(), sink);

    // --- PA transaction forced through a backoff round on item 0: the
    // low timestamp is behind W-TS, so the queue proposes a backed-off
    // one; the follow-up batch replays it and releases.
    let t = TxnId(clock.txn);
    clock.txn += 1;
    msgs.clear();
    msgs.push(RequestMsg::Access {
        txn: t,
        item: pi(0),
        mode: AccessMode::Write,
        method: CcMethod::PrecedenceAgreement,
        ts: TsTuple::new(Timestamp(1), 10),
    });
    sink.clear();
    qm.handle_batch(SITE, msgs.iter(), sink);
    let new_ts = sink
        .replies
        .iter()
        .find_map(|r| match r {
            ReplyMsg::Backoff { new_ts, .. } => Some(*new_ts),
            _ => None,
        })
        .expect("the stale PA timestamp must be backed off");
    msgs.clear();
    msgs.push(RequestMsg::UpdatedTs {
        txn: t,
        item: pi(0),
        new_ts,
    });
    msgs.push(RequestMsg::Release {
        txn: t,
        item: pi(0),
        write_value: Some(INITIAL),
        commit_ts: Timestamp::ZERO,
    });
    sink.clear();
    qm.handle_batch(SITE, msgs.iter(), sink);
}

#[test]
fn steady_state_handle_batch_performs_zero_allocations() {
    let mut qm = QueueManager::new(SITE);
    for i in 0..ITEMS {
        qm.add_item(pi(i), INITIAL, EnforcementMode::SemiLock);
    }
    let mut sink = QmSink::new();
    let mut msgs: Vec<RequestMsg> = Vec::new();
    let snap_items: Vec<PhysicalItemId> = (0..ITEMS).map(pi).collect();
    let mut snap_out: Vec<(PhysicalItemId, Value, Timestamp)> = Vec::new();
    let mut clock = Clock {
        txn: 1,
        ts: 100,
        cts: 0,
    };

    // Warm-up: grow every buffer the steady-state wave touches.
    for _ in 0..50 {
        wave(
            &mut qm,
            &mut sink,
            &mut msgs,
            &snap_items,
            &mut snap_out,
            &mut clock,
        );
    }
    let reply_cap = sink.reply_capacity();
    let event_cap = sink.event_capacity();

    // Measure: minimum allocation delta over several windows (immune to a
    // stray harness allocation; an allocating engine fails every window).
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..100 {
            wave(
                &mut qm,
                &mut sink,
                &mut msgs,
                &snap_items,
                &mut snap_out,
                &mut clock,
            );
        }
        let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        min_delta = min_delta.min(delta);
    }
    assert_eq!(
        min_delta, 0,
        "steady-state handle_batch waves must not touch the allocator"
    );

    // Sink-capacity stability: the accumulators stopped growing too.
    assert_eq!(sink.reply_capacity(), reply_cap, "reply buffer regrew");
    assert_eq!(sink.event_capacity(), event_cap, "event buffer regrew");

    // The engine still did real work the whole time.
    assert!(qm.items().all(|i| i.is_idle()), "every wave fully drained");

    // Bounded-memory claim (PR 10): hundreds of stamped installs later,
    // every version ring is pruned to the retain knob.
    assert!(
        qm.items()
            .all(|i| i.versions().count() <= unified_cc::DEFAULT_VERSION_RETAIN),
        "version chains must stay pruned to the retain bound"
    );
}
