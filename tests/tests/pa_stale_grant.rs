//! Regression test for the PR 1 stale-grant bug: a PA issuer whose backoff
//! round has fired must ignore a pre-backoff `ReplyMsg::Grant` still in
//! flight, keyed off the grant's `at` timestamp tag.
//!
//! The lost-update window this closes: T1 (PA) gets a value-carrying write
//! grant on X at its original timestamp, then backs off because another
//! queue proposed a higher timestamp. The `UpdatedTs` broadcast makes X
//! revoke the grant and admit T2 in between; X's value moves on. If the
//! stale grant (tagged with the *pre-backoff* timestamp and carrying the
//! *pre-T2* value) were honoured when it surfaces after the round, T1
//! would compute its read-modify-write from the stale value and silently
//! overwrite T2's update. The issuer must instead wait for the re-issued
//! grant tagged with the backed-off timestamp and carrying the fresh
//! value.
//!
//! The test drives the real sans-IO state machines — two `QueueManager`s
//! and a `RequestIssuer` — with an adversarial transport (held, reordered
//! and duplicated replies), exactly the interleavings a sharded runtime
//! produces.

use dbmodel::{
    AccessMode, CcMethod, LogicalItemId, PhysicalItemId, SiteId, Timestamp, Transaction, TsTuple,
    TxnId, Value,
};
use pam::{ReplyMsg, RequestMsg};
use unified_cc::{EnforcementMode, QueueManager, RequestIssuer, RiAction};

fn li(i: u64) -> LogicalItemId {
    LogicalItemId(i)
}

/// Route one request to the queue manager owning its item and collect the
/// replies.
fn route(qms: &mut [QueueManager], origin: SiteId, msg: &RequestMsg) -> Vec<ReplyMsg> {
    let site = msg.item().site;
    let qm = qms
        .iter_mut()
        .find(|qm| qm.site() == site)
        .expect("message routed to an unknown site");
    qm.handle(origin, msg).replies
}

fn grant_at(reply: &ReplyMsg) -> Option<(TxnId, Timestamp, Option<Value>)> {
    match reply {
        ReplyMsg::Grant { txn, at, value, .. } => Some((*txn, *at, *value)),
        _ => None,
    }
}

#[test]
fn pa_issuer_ignores_stale_pre_backoff_grant_and_no_update_is_lost() {
    let x = PhysicalItemId::new(li(0), SiteId(0));
    let y = PhysicalItemId::new(li(1), SiteId(1));
    let mut qmx = QueueManager::new(SiteId(0));
    qmx.add_item(x, 100, EnforcementMode::SemiLock);
    let mut qmy = QueueManager::new(SiteId(1));
    qmy.add_item(y, 0, EnforcementMode::SemiLock);
    let mut qms = [qmx, qmy];

    // T0 (PA, ts 40) writes Y and finishes, raising Y's timestamp
    // thresholds so T1's ts 10 will be proposed a backoff there.
    let t0 = TxnId(100);
    let replies = route(
        &mut qms,
        SiteId(1),
        &RequestMsg::Access {
            txn: t0,
            item: y,
            mode: AccessMode::Write,
            method: CcMethod::PrecedenceAgreement,
            ts: TsTuple::new(Timestamp(40), 25),
        },
    );
    assert!(
        replies.iter().any(|r| grant_at(r).is_some()),
        "T0's uncontended write grants immediately"
    );
    route(
        &mut qms,
        SiteId(1),
        &RequestMsg::Release {
            txn: t0,
            item: y,
            write_value: Some(7),
            commit_ts: Timestamp::ZERO,
        },
    );

    // T1 (PA, ts 10, INT 25) read-modify-writes X and Y.
    let txn1 = Transaction::builder(TxnId(1), SiteId(0))
        .method(CcMethod::PrecedenceAgreement)
        .write(li(0))
        .write(li(1))
        .build();
    let mut t1 = RequestIssuer::new(
        txn1,
        TsTuple::new(Timestamp(10), 25),
        vec![(x, AccessMode::Write), (y, AccessMode::Write)],
    );
    let out = t1.start();
    assert_eq!(out.sends.len(), 2);

    // X grants T1 at its original timestamp, value attached. The reply is
    // HELD in flight by the adversarial transport.
    let x_replies = route(&mut qms, SiteId(0), &out.sends[0]);
    let held_grant = x_replies
        .iter()
        .find(|r| grant_at(r).is_some())
        .expect("X grants T1")
        .clone();
    let (_, at, value) = grant_at(&held_grant).unwrap();
    assert_eq!(at, Timestamp(10), "grants are tagged with the issue ts");
    assert_eq!(value, Some(100), "write grants carry the item value");

    // Y proposes a backoff above T0's timestamp.
    let y_replies = route(&mut qms, SiteId(0), &out.sends[1]);
    let backoff = y_replies
        .iter()
        .find(|r| matches!(r, ReplyMsg::Backoff { .. }))
        .expect("Y proposes a backoff")
        .clone();
    let proposed = match backoff {
        ReplyMsg::Backoff { new_ts, .. } => new_ts,
        _ => unreachable!(),
    };
    assert!(proposed > Timestamp(40), "proposal clears Y's thresholds");

    // Deliver the backoff, then the held grant: the round fires.
    assert!(t1.on_reply(&backoff).actions.is_empty());
    let out = t1.on_reply(&held_grant);
    assert_eq!(out.actions, vec![RiAction::BackoffRound]);
    let backed_off = t1.ts().ts;
    assert_eq!(backed_off, proposed, "TS' = max over proposals");
    let updates = out.sends.clone();
    assert!(updates
        .iter()
        .all(|m| matches!(m, RequestMsg::UpdatedTs { .. })));

    // Before the UpdatedTs reaches X, T2 (PA, ts 20) queues a write on X.
    let t2 = TxnId(2);
    let replies = route(
        &mut qms,
        SiteId(0),
        &RequestMsg::Access {
            txn: t2,
            item: x,
            mode: AccessMode::Write,
            method: CcMethod::PrecedenceAgreement,
            ts: TsTuple::new(Timestamp(20), 25),
        },
    );
    assert!(
        replies.iter().all(|r| grant_at(r).is_none()),
        "T2 queues behind T1's still-held grant"
    );

    // THE REGRESSION: a duplicate of the pre-backoff grant surfaces after
    // the round fired. Its `at` tag (the original timestamp) must disqualify
    // it — the issuer stays in its backoff-grant collection phase and the
    // stale value must not count.
    let out = t1.on_reply(&held_grant);
    assert!(
        out.actions.is_empty() && out.sends.is_empty(),
        "stale pre-backoff grant must be ignored, got {:?}",
        out.actions
    );

    // The UpdatedTs broadcast lands: X revokes T1's grant and admits T2;
    // Y re-grants T1 at the backed-off timestamp.
    let mut t2_grant = None;
    let mut t1_regrants = Vec::new();
    for update in &updates {
        for reply in route(&mut qms, SiteId(0), update) {
            match grant_at(&reply) {
                Some((txn, at, _)) if txn == t2 => {
                    assert_eq!(at, Timestamp(20), "T2's grant tagged with its own ts");
                    t2_grant = Some(reply);
                }
                Some((txn, at, _)) if txn == t1.txn_id() => {
                    assert_eq!(at, backed_off, "re-grants tagged with the new ts");
                    t1_regrants.push(reply);
                }
                _ => {}
            }
        }
    }
    let t2_grant = t2_grant.expect("revoking T1's stale grant admits T2");

    // T2 executes its read-modify-write and releases: X moves 100 → 111.
    let (_, _, seen) = grant_at(&t2_grant).unwrap();
    let t2_writes = seen.unwrap() + 11;
    for reply in route(
        &mut qms,
        SiteId(0),
        &RequestMsg::Release {
            txn: t2,
            item: x,
            write_value: Some(t2_writes),
            commit_ts: Timestamp::ZERO,
        },
    ) {
        if grant_at(&reply).is_some_and(|(txn, _, _)| txn == t1.txn_id()) {
            t1_regrants.push(reply);
        }
    }
    assert_eq!(qms[0].value_of(x), Some(111));

    // T1's re-issued grants (fresh values, new tag) complete the round.
    // Deliver Y's first: were the stale X grant still counting, the issuer
    // would consider itself fully granted here and start executing on the
    // pre-T2 value — the exact lost-update window.
    let (x_regrants, y_regrants): (Vec<_>, Vec<_>) =
        t1_regrants.into_iter().partition(|r| r.item() == x);
    assert!(!x_regrants.is_empty(), "X re-issues T1's grant after T2");
    assert!(!y_regrants.is_empty(), "Y re-issues T1's grant at TS'");
    for regrant in &y_regrants {
        assert!(t1.on_reply(regrant).actions.is_empty());
    }
    assert!(
        !t1.all_granted(),
        "X still awaits its re-issued grant — the stale grant must not count"
    );
    let mut executing = false;
    for regrant in &x_regrants {
        let (_, at, _) = grant_at(regrant).unwrap();
        assert_eq!(at, backed_off);
        let out = t1.on_reply(regrant);
        if out.actions.contains(&RiAction::StartExecution) {
            executing = true;
        }
    }
    assert!(executing, "fresh grants at TS' start execution");
    assert_eq!(
        t1.read_value(li(0)),
        Some(111),
        "T1 computes from the post-T2 value, not the stale 100"
    );

    // T1 increments what it actually read and commits.
    t1.set_write_value(li(0), t1.read_value(li(0)).unwrap() + 1);
    t1.set_write_value(li(1), 1);
    let out = t1.on_execution_done();
    assert!(out.actions.contains(&RiAction::FullyReleased));
    for send in &out.sends {
        route(&mut qms, SiteId(0), send);
    }

    // Both updates survived: T2's +11 and T1's +1 on top of it. Had the
    // stale grant been honoured, T1 would have written 101 and erased
    // T2's update.
    assert_eq!(qms[0].value_of(x), Some(112), "no lost update");
    assert_eq!(qms[1].value_of(y), Some(1), "T1's Y write landed");
}
