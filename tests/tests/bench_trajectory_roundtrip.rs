//! Round-trip of the bench suite's machine-readable trajectories: a
//! `BENCH_exp9.json` document built from a real (tiny) runtime cell must
//! emit, parse back and validate through the same dependency-free JSON
//! layer the trace plane uses — the contract regression tooling relies
//! on when diffing bench runs.

use dbmodel::{CcMethod, LogicalItemId};
use runtime::{CcPolicy, Database, RuntimeConfig, TxnSpec};
use trace::json::Json;

#[test]
fn exp9_trajectory_emits_parses_and_validates() {
    // One tiny exp9-shaped cell: enough traffic for non-trivial counters.
    let db = Database::open(RuntimeConfig {
        num_shards: 2,
        num_items: 16,
        initial_value: 1_000,
        policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
        ..RuntimeConfig::default()
    })
    .unwrap();
    let begun = std::time::Instant::now();
    for k in 0..40u64 {
        let from = LogicalItemId(k % 16);
        let to = LogicalItemId((k * 5 + 1) % 16);
        if from == to {
            continue;
        }
        let spec = TxnSpec::new().write(from).write(to);
        db.run_transaction(&spec, |reads| {
            vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
        })
        .expect("cell transaction commits");
    }
    let elapsed = begun.elapsed().as_secs_f64();
    let stats = db.stats();
    let serializable = db.shutdown().expect("shutdown").serializable().is_ok();

    // The exp9 row shape, from the measured cell.
    let mut traj = bench::Trajectory::new("exp9");
    traj.meta("smoke", Json::Bool(true));
    traj.meta("txns_per_client", Json::num(40u32));
    traj.row([
        ("clients", Json::num(1u32)),
        ("shards", Json::num(2u32)),
        ("policy", Json::str("2PL")),
        ("plane", Json::str("ring")),
        ("reply", Json::str("mail")),
        ("committed", Json::Num(stats.committed as f64)),
        ("txn_per_sec", Json::Num(stats.committed as f64 / elapsed)),
        ("restarts", Json::Num(stats.restarts() as f64)),
        ("serializable", Json::Bool(serializable)),
        (
            "stale_reply_events",
            Json::Num(stats.stale_reply_events as f64),
        ),
        (
            "mailbox_overflow_entries",
            Json::Num(stats.mailbox_overflow_entries as f64),
        ),
        ("trace_events", Json::Num(stats.trace_events as f64)),
    ]);

    // Emit → re-read → parse → validate → field round-trip.
    let dir = std::env::temp_dir().join(format!("bench_traj_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = traj.write_to(&dir).expect("trajectory writes");
    assert!(path.ends_with("BENCH_exp9.json"));

    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(text.trim()).expect("emitted document parses");
    bench::validate_bench_doc(&doc).expect("emitted document validates");

    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("exp9"));
    assert_eq!(
        doc.get("meta")
            .and_then(|m| m.get("txns_per_client"))
            .and_then(Json::as_f64),
        Some(40.0)
    );
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert_eq!(
        row.get("committed").and_then(Json::as_f64),
        Some(stats.committed as f64),
        "counters survive the round trip exactly"
    );
    assert_eq!(row.get("serializable").and_then(Json::as_bool), Some(true));
    assert_eq!(
        row.get("trace_events").and_then(Json::as_f64),
        Some(stats.trace_events as f64),
        "the cell ran with the flight recorder on by default"
    );
    assert!(stats.trace_events > 0, "default config traces");

    std::fs::remove_dir_all(&dir).ok();
}
