//! Property tests for the selection cache: memoizing the STL′ grid must
//! never change a decision.
//!
//! The contract under test is the one the runtime relies on: within an
//! epoch, the cached selector returns **byte-identical**
//! [`SelectionDecision`]s to a fresh STL′ evaluation at the same epoch
//! snapshot — memoization is transparency, not approximation. With
//! quantization disabled the comparison is against the fresh evaluation of
//! the transaction's own shape; with quantization enabled it is against
//! the fresh evaluation of the bucket's canonical representative, and the
//! hit and miss paths must agree with each other bit for bit.

use dbmodel::{AccessMode, Catalog, Transaction};
use dbmodel::{CcMethod, LogicalItemId, PhysicalItemId, ReplicationPolicy, SiteId, TxnId};
use metrics::SimMetrics;
use proptest::prelude::*;
use selection::{
    classify, evaluate_decision, CacheSettings, CachedStlSelector, MethodParamSet, OpProfile,
    ProtocolParams, SelectionCache, SelectionDecision, ShapeSummary, StlModel, StlSelector,
};
use simkit::time::{Duration, SimTime};

/// Byte-level view of a decision (NaN-safe, unlike `PartialEq`).
fn bits(d: &SelectionDecision) -> (CcMethod, u64, u64, u64, bool) {
    (
        d.method,
        d.stl_2pl.to_bits(),
        d.stl_to.to_bits(),
        d.stl_pa.to_bits(),
        d.exploratory,
    )
}

fn arb_model() -> impl Strategy<Value = StlModel> {
    // λ_w is kept a healthy fraction of λ_A so the escalation ladder stays
    // shallow and 1000 cases stay fast; the estimators see the full range
    // of regimes regardless (unloaded through saturated).
    (
        10.0f64..150.0,
        0.02f64..0.25,
        0.0f64..0.12,
        0.0f64..=1.0,
        1.0f64..8.0,
    )
        .prop_map(|(lambda_a, w_frac, r_frac, q_r, k)| StlModel {
            lambda_a,
            lambda_r: lambda_a * r_frac,
            lambda_w: lambda_a * w_frac,
            q_r,
            k,
        })
}

fn arb_params() -> impl Strategy<Value = ProtocolParams> {
    (
        0.0f64..0.2,
        0.0f64..0.3,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
    )
        .prop_map(
            |(u_ok, u_denied, p_abort, p_read_denial, p_write_denial)| ProtocolParams {
                u_ok,
                u_denied,
                p_abort,
                p_read_denial,
                p_write_denial,
            },
        )
}

fn arb_param_set() -> impl Strategy<Value = MethodParamSet> {
    (arb_params(), arb_params(), arb_params()).prop_map(|(p2pl, to, pa)| MethodParamSet {
        p2pl,
        to,
        pa,
    })
}

fn arb_summary() -> impl Strategy<Value = ShapeSummary> {
    (0usize..6, 0usize..6, 0.0f64..120.0, 0.0f64..240.0).prop_map(
        |(m, n, read_loss, write_loss)| ShapeSummary {
            m,
            n,
            read_loss,
            write_loss,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 1000,
        ..ProptestConfig::default()
    })]

    /// The headline equivalence: for random transaction shapes and random
    /// protocol parameters, the cached selector's decision — miss path and
    /// hit path alike — is byte-identical to a fresh `StlSelector`-style
    /// evaluation at the same epoch snapshot (same model, same parameters).
    #[test]
    fn cached_decision_is_byte_identical_to_fresh_evaluation(
        case in (arb_model(), arb_summary(), arb_param_set())
    ) {
        let (model, summary, params) = case;
        let fresh = evaluate_decision(&model, &summary, &params);
        let mut cache = SelectionCache::exact();
        let miss = cache.decide(&model, &params, &summary);
        let hit = cache.decide(&model, &params, &summary);
        prop_assert_eq!(bits(&fresh), bits(&miss), "miss path diverged");
        prop_assert_eq!(bits(&fresh), bits(&hit), "hit path diverged");
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(cache.misses(), 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 300,
        ..ProptestConfig::default()
    })]

    /// With quantization enabled, every decision equals the fresh
    /// evaluation of the bucket's canonical representative, hit and miss
    /// paths agree, and the representative lands in its own bucket.
    #[test]
    fn quantized_cache_is_internally_consistent(
        case in (arb_model(), arb_summary(), arb_param_set(), 0.01f64..0.4)
    ) {
        let (model, summary, params, quant) = case;
        let mut cache = SelectionCache::new(quant, 8192);
        let key = cache.key_for(&summary);
        let rep = cache.representative(key);
        prop_assert_eq!(cache.key_for(&rep), key, "representative escaped its bucket");
        let fresh_rep = evaluate_decision(&model, &rep, &params);
        let miss = cache.decide(&model, &params, &summary);
        let hit = cache.decide(&model, &params, &summary);
        prop_assert_eq!(bits(&fresh_rep), bits(&miss));
        prop_assert_eq!(bits(&miss), bits(&hit));
    }

    /// The fast-path safety contract of the `ShapeKey` grid (PR 8): the
    /// confluence classification memoized alongside the protocol decision
    /// is stable across *every* representative of a quantized key. Two
    /// summaries landing in the same bucket — however far apart their
    /// loss estimates sit inside it — must classify identically, both by
    /// the pure classifier and through the cache's hit path, so a cache
    /// hit can never flip a transaction onto a bypass its own fresh
    /// evaluation would refuse.
    #[test]
    fn classification_is_stable_across_bucket_representatives(
        case in (
            arb_model(),
            arb_summary(),
            arb_summary(),
            arb_param_set(),
            0.01f64..0.4,
            0u8..16,
        )
    ) {
        let (model, a, b, params, quant, raw_profile) = case;
        let profile = OpProfile::from_bits(raw_profile);
        let mut cache = SelectionCache::new(quant, 8192);
        let key_a = cache.key_with_profile(&a, profile);
        // Only pairs that quantize to the same key are constrained; steer
        // `b` into `a`'s bucket by reusing `a`'s sizes (sizes are exact
        // key fields, losses are the quantized ones).
        let b = ShapeSummary { m: a.m, n: a.n, ..b };
        if cache.key_with_profile(&b, profile) == key_a {
            let fresh_a = classify(profile, a.m, a.n);
            let fresh_b = classify(profile, b.m, b.n);
            prop_assert_eq!(fresh_a, fresh_b, "same key, different fresh classification");
            // The memoized verdict (seeded by whichever summary misses
            // first) matches the other summary's fresh classification on
            // its hit.
            let routed_miss = cache.decide_routed(&model, &params, &a, profile);
            let routed_hit = cache.decide_routed(&model, &params, &b, profile);
            prop_assert_eq!(routed_miss.confluence, fresh_b);
            prop_assert_eq!(routed_hit.confluence, fresh_b);
            prop_assert_eq!(cache.hits(), 1);
        }
    }
}

/// A warmed-up metrics collection whose rates are derived from `seed`.
fn seeded_metrics(seed: u64, items: u64) -> SimMetrics {
    let mut m = SimMetrics::new();
    m.set_time_span(SimTime::ZERO, SimTime::from_secs(50));
    for (mi, &method) in CcMethod::ALL.iter().enumerate() {
        let commits = 40 + (seed >> (mi * 8)) % 60;
        for _ in 0..commits {
            m.record_commit(method, Duration::from_millis(20 + (seed % 50)));
            m.record_lock_hold(method, Duration::from_millis(10 + (seed % 40)), false);
        }
        for _ in 0..(seed >> (mi * 4)) % 30 {
            m.record_request_outcome(method, AccessMode::Read, seed.is_multiple_of(3));
            m.record_request_outcome(method, AccessMode::Write, seed.is_multiple_of(5));
        }
    }
    for i in 0..items {
        let grants = 20 + (seed.wrapping_mul(i + 1) >> 7) % 400;
        for _ in 0..grants {
            m.record_grant(
                PhysicalItemId::new(LogicalItemId(i), SiteId((i % 2) as u32)),
                if (seed ^ i).is_multiple_of(3) {
                    AccessMode::Write
                } else {
                    AccessMode::Read
                },
            );
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 60,
        ..ProptestConfig::default()
    })]

    /// End to end: against frozen live-style metrics, the exact-keyed
    /// cached selector and a fresh `StlSelector` walk in lockstep through
    /// a stream of random transactions — warm-up rounds, exploration
    /// rounds and cost-based decisions all byte-identical.
    #[test]
    fn cached_selector_matches_fresh_selector_against_frozen_metrics(seed in 0u64..u64::MAX) {
        const ITEMS: u64 = 16;
        let catalog = Catalog::generate(2, ITEMS, ReplicationPolicy::SingleCopy);
        let metrics = seeded_metrics(seed, ITEMS);
        let mut cached = CachedStlSelector::with_settings(CacheSettings {
            quant_rel: 0.0,
            warmup_commits: 20,
            explore_every: 5,
            ..CacheSettings::default()
        });
        let mut fresh = StlSelector::with_settings(20, 5);
        for i in 0..12u64 {
            let x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
            let mut b = Transaction::builder(TxnId(i), SiteId(0));
            for r in 0..(x % 4) {
                b = b.read(LogicalItemId((x >> (r * 3)) % ITEMS));
            }
            for w in 0..(1 + (x >> 8) % 3) {
                b = b.write(LogicalItemId((x >> (w * 5 + 16)) % ITEMS));
            }
            let txn = b.build();
            let a = cached.select(&txn, &catalog, &metrics);
            let e = fresh.select(&txn, &catalog, &metrics);
            prop_assert_eq!(bits(&a), bits(&e), "selection {} diverged", i);
        }
    }
}
