//! Application-level invariant test: money conservation under concurrent
//! transfers coordinated by the unified engine.
//!
//! A set of accounts lives on one queue manager. Transfer transactions (each
//! under a randomly chosen protocol) read two accounts and move a random
//! amount between them. Requests from concurrently open transactions are
//! interleaved randomly. Because the engine only ever admits conflict
//! serializable executions, the total balance must be exactly preserved and
//! the resulting history must pass the serializability oracle.

use dbmodel::{
    AccessMode, CcMethod, LogSet, LogicalItemId, PhysicalItemId, SiteId, Timestamp, Transaction,
    TsTuple, TxnId, Value,
};
use pam::RequestMsg;
use sercheck::check_serializable;
use simkit::rng::SimRng;
use unified_cc::{
    EnforcementMode, QmEvent, QueueManager, RequestIssuer, RiAction, RiPhase, WaitForGraph,
};

const ACCOUNTS: u64 = 12;
const INITIAL: Value = 1_000;

fn item(i: u64) -> PhysicalItemId {
    PhysicalItemId::new(LogicalItemId(i), SiteId(0))
}

struct OpenTxn {
    ri: RequestIssuer,
    from: u64,
    to: u64,
    amount: Value,
    outbox: Vec<RequestMsg>,
    done: bool,
    restarted: bool,
}

fn new_transfer(id: u64, method: CcMethod, ts: u64, rng: &mut SimRng) -> OpenTxn {
    let from = rng.next_below(ACCOUNTS);
    let mut to = rng.next_below(ACCOUNTS);
    if to == from {
        to = (to + 1) % ACCOUNTS;
    }
    let amount = (rng.next_below(50) + 1) as Value;
    transfer_with(id, method, ts, from, to, amount)
}

fn transfer_with(id: u64, method: CcMethod, ts: u64, from: u64, to: u64, amount: Value) -> OpenTxn {
    let txn = Transaction::builder(TxnId(id), SiteId(0))
        .method(method)
        .write(LogicalItemId(from))
        .write(LogicalItemId(to))
        .build();
    let accesses = vec![
        (item(from), AccessMode::Write),
        (item(to), AccessMode::Write),
    ];
    let mut ri = RequestIssuer::new(txn, TsTuple::new(Timestamp(ts), 7), accesses);
    let outbox = ri.start().sends;
    OpenTxn {
        ri,
        from,
        to,
        amount,
        outbox,
        done: false,
        restarted: false,
    }
}

#[test]
fn concurrent_transfers_preserve_total_balance() {
    let mut rng = SimRng::new(20240613);
    let mut qm = QueueManager::new(SiteId(0));
    for i in 0..ACCOUNTS {
        qm.add_item(item(i), INITIAL, EnforcementMode::SemiLock);
    }
    let mut logs = LogSet::new();
    let mut open: Vec<OpenTxn> = Vec::new();
    let mut next_id = 0u64;
    let mut next_ts = 0u64;
    let mut committed = 0usize;

    // Balances as the application sees them: reads come back on grants; since
    // transfers are blind writes here, we read via the grant value of the
    // write? Writes do not return values, so the transfer amount is applied
    // to the value read *at grant time* — instead, model transfers as
    // read-modify-write by keeping our own view from the grant of a write
    // lock being exclusive: we re-read through the queue manager under the
    // protection of the exclusive lock.
    let mut steps = 0;
    while (committed < 200 || !open.is_empty()) && steps < 200_000 {
        steps += 1;
        // Periodic deadlock detection, exactly as the unified system requires
        // for its 2PL members: abort the youngest 2PL transaction of each
        // wait-for cycle.
        if steps % 64 == 0 {
            let graph = WaitForGraph::from_edges(qm.wait_edges());
            let victims = graph.choose_victims(|txn| {
                open.iter().any(|t| {
                    t.ri.txn_id() == txn
                        && t.ri.txn().method == CcMethod::TwoPhaseLocking
                        && !t.done
                })
            });
            for victim in victims {
                if let Some(t) = open.iter_mut().find(|t| t.ri.txn_id() == victim) {
                    let out = t.ri.abort_for_deadlock();
                    if out
                        .actions
                        .iter()
                        .any(|a| matches!(a, RiAction::Restart { .. }))
                    {
                        t.restarted = true;
                    }
                    t.outbox.extend(out.sends);
                }
            }
        }
        // Occasionally admit a new transfer while fewer than 6 are open.
        if committed + open.len() < 200 && open.len() < 6 && rng.next_bool(0.4) {
            next_id += 1;
            next_ts += 1 + rng.next_below(3);
            let method = CcMethod::ALL[rng.next_index(3)];
            open.push(new_transfer(next_id, method, next_ts, &mut rng));
        }
        if open.is_empty() {
            continue;
        }
        // Pick a random open transaction with pending messages and deliver one.
        let idx = rng.next_index(open.len());
        let txn = &mut open[idx];
        if txn.outbox.is_empty() {
            if txn.done || matches!(txn.ri.phase(), RiPhase::Aborted) {
                // Finished or aborted with nothing left to send.
                let finished = open.swap_remove(idx);
                if finished.restarted {
                    // Re-submit the aborted transfer (same accounts and
                    // amount) with a fresh id and a larger timestamp.
                    next_id += 1;
                    next_ts += 5;
                    let method = finished.ri.txn().method;
                    open.push(transfer_with(
                        next_id,
                        method,
                        next_ts,
                        finished.from,
                        finished.to,
                        finished.amount,
                    ));
                }
                continue;
            }
            continue;
        }
        let msg = txn.outbox.remove(0);
        let out = qm.handle(SiteId(0), &msg);
        for event in out.events {
            if let QmEvent::Implemented {
                item, txn, access, ..
            } = event
            {
                logs.record(item, txn, access);
            }
        }
        for reply in out.replies {
            let target = open
                .iter_mut()
                .find(|t| t.ri.txn_id() == reply.txn())
                .expect("reply belongs to an open transaction");
            let ri_out = target.ri.on_reply(&reply);
            target.outbox.extend(ri_out.sends);
            for action in ri_out.actions {
                match action {
                    RiAction::StartExecution => {
                        // Execute the transfer under exclusive locks: read the
                        // current committed values directly (safe: this
                        // transaction holds write locks on both accounts).
                        let from_val = qm.value_of(item(target.from)).unwrap();
                        let to_val = qm.value_of(item(target.to)).unwrap();
                        target
                            .ri
                            .set_write_value(LogicalItemId(target.from), from_val - target.amount);
                        target
                            .ri
                            .set_write_value(LogicalItemId(target.to), to_val + target.amount);
                        let exec = target.ri.on_execution_done();
                        target.outbox.extend(exec.sends);
                        for follow_up in exec.actions {
                            match follow_up {
                                RiAction::Committed => committed += 1,
                                RiAction::FullyReleased => target.done = true,
                                _ => {}
                            }
                        }
                    }
                    RiAction::Committed => {
                        committed += 1;
                    }
                    RiAction::FullyReleased => {
                        target.done = true;
                    }
                    RiAction::Restart { .. } => {
                        target.restarted = true;
                    }
                    RiAction::BackoffRound => {}
                }
            }
        }
    }

    assert!(committed >= 200, "drove {committed} transfers to commit");
    let total: Value = (0..ACCOUNTS).map(|i| qm.value_of(item(i)).unwrap()).sum();
    assert_eq!(
        total,
        INITIAL * ACCOUNTS as Value,
        "total balance must be conserved"
    );
    assert!(check_serializable(&logs).is_ok());
}
