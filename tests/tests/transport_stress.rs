//! Stress and equivalence coverage for the batched message plane.
//!
//! Three layers, matching the guarantees the runtime leans on:
//!
//! 1. **Ring semantics under real contention** — seeded multi-producer
//!    stress against a deliberately tiny ring, exercising full-ring
//!    backpressure (producer park/unpark), empty-ring consumer parking,
//!    and FIFO-per-producer ordering.
//! 2. **Plane equivalence, deterministic** — the same single-client
//!    workload produces identical reads, commits and final state on the
//!    batched ring and on the mpsc baseline.
//! 3. **Plane equivalence, concurrent** — a mixed-method multi-threaded
//!    workload on each plane is certified by the `sercheck`
//!    serializability oracle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dbmodel::{CcMethod, LogicalItemId, Value};
use runtime::{CcPolicy, Database, RuntimeConfig, TransportKind, TxnSpec};
use simkit::rng::SimRng;
use transport::ring;

fn li(i: u64) -> LogicalItemId {
    LogicalItemId(i)
}

/// Seeded multi-producer stress on a tiny ring: every message arrives,
/// per-producer order is preserved, and the full-ring slow path (producer
/// parking) is genuinely exercised.
#[test]
fn ring_multi_producer_fifo_under_backpressure() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 5_000;
    // Capacity 8: with four producers bursting, the ring is full most of
    // the time, so blocking sends park and rely on consumer wakeups.
    let (tx, mut rx) = ring::channel::<(u64, u64)>(8);
    let full_hits = Arc::new(AtomicU64::new(0));

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let tx = tx.clone();
            let full_hits = Arc::clone(&full_hits);
            std::thread::spawn(move || {
                let mut rng = SimRng::new(0xDEC0DE + p);
                for seq in 0..PER_PRODUCER {
                    // First offer without blocking so the test can prove
                    // the full-ring path ran, then block until accepted.
                    match tx.try_send((p, seq)) {
                        Ok(()) => {}
                        Err(ring::TrySendError::Full(v)) => {
                            full_hits.fetch_add(1, Ordering::Relaxed);
                            tx.send(v).expect("receiver alive");
                        }
                        Err(ring::TrySendError::Disconnected(_)) => {
                            panic!("receiver vanished mid-test")
                        }
                    }
                    // Seeded bursts: occasionally yield so producers
                    // interleave differently from run to run of the loop,
                    // but deterministically per seed.
                    if rng.next_f64() < 0.01 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    drop(tx);

    let mut received: Vec<(u64, u64)> = Vec::new();
    let mut buf = Vec::new();
    let mut rng = SimRng::new(0xC0FFEE);
    loop {
        buf.clear();
        match rx.drain_blocking(&mut buf) {
            Ok(_) => received.append(&mut buf),
            Err(_) => break, // all producers done, ring drained
        }
        // A deliberately sluggish consumer keeps the ring full so the
        // producer park/unpark path fires continuously.
        if rng.next_f64() < 0.05 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    for p in producers {
        p.join().unwrap();
    }

    assert_eq!(received.len(), (PRODUCERS * PER_PRODUCER) as usize);
    let mut next_expected = vec![0u64; PRODUCERS as usize];
    for &(p, seq) in &received {
        assert_eq!(
            seq, next_expected[p as usize],
            "producer {p} delivered out of order"
        );
        next_expected[p as usize] = seq + 1;
    }
    assert!(
        full_hits.load(Ordering::Relaxed) > 0,
        "the stress must actually hit the full-ring backpressure path"
    );
}

/// The consumer parks on an empty ring and is woken by each trickled
/// send; nothing is lost and the disconnect is observed promptly.
#[test]
fn ring_consumer_parks_and_wakes_on_trickle() {
    let (tx, mut rx) = ring::channel::<u64>(64);
    let producer = std::thread::spawn(move || {
        for i in 0..50 {
            tx.send(i).unwrap();
            // Gaps far longer than the publish cost force the consumer
            // through its park/unpark handshake on nearly every value.
            std::thread::sleep(Duration::from_micros(300));
        }
    });
    let mut got = Vec::new();
    let mut buf = Vec::new();
    while rx.drain_blocking(&mut buf).is_ok() {
        got.append(&mut buf);
    }
    producer.join().unwrap();
    assert_eq!(got, (0..50).collect::<Vec<_>>());
}

fn plane_config(transport: TransportKind, shards: u32, items: u64) -> RuntimeConfig {
    RuntimeConfig {
        num_shards: shards,
        num_items: items,
        initial_value: 100,
        transport,
        deadlock_scan_interval: Duration::from_millis(2),
        ..RuntimeConfig::default()
    }
}

/// Drive one deterministic single-client workload and capture everything
/// observable: per-transaction read values and the final state of every
/// item.
fn deterministic_run(transport: TransportKind) -> (Vec<Vec<Value>>, Vec<Value>, u64) {
    const ITEMS: u64 = 12;
    let db = Database::open(plane_config(transport, 3, ITEMS)).unwrap();
    let mut observed = Vec::new();
    for i in 0..80u64 {
        let a = li(i % ITEMS);
        let b = li((i * 5 + 1) % ITEMS);
        if a == b {
            continue;
        }
        let method = CcMethod::ALL[(i % 3) as usize];
        let spec = TxnSpec::new().write(a).write(b).method(method);
        let receipt = db
            .run_transaction(&spec, |reads| vec![(a, reads[&a] - 1), (b, reads[&b] + 1)])
            .unwrap();
        observed.push(receipt.reads.values().copied().collect::<Vec<_>>());
    }
    let finals: Vec<Value> = (0..ITEMS)
        .map(|i| {
            db.run_transaction(&TxnSpec::new().read(li(i)), |_| vec![])
                .unwrap()
                .reads[&li(i)]
        })
        .collect();
    let report = db.shutdown().unwrap();
    assert!(
        report.serializable().is_ok(),
        "{transport:?} run must be serializable"
    );
    (observed, finals, report.stats.committed)
}

/// Batched-vs-unbatched equivalence (satellite 3): a deterministic
/// workload is bit-identical across the two planes — batching only groups
/// messages, it never reorders a transaction's effects.
#[test]
fn batched_and_mpsc_planes_are_observationally_equivalent() {
    let (ring_reads, ring_finals, ring_committed) = deterministic_run(TransportKind::BatchedRing);
    let (mpsc_reads, mpsc_finals, mpsc_committed) = deterministic_run(TransportKind::Mpsc);
    assert_eq!(ring_committed, mpsc_committed);
    assert_eq!(ring_reads, mpsc_reads, "per-transaction reads diverged");
    assert_eq!(ring_finals, mpsc_finals, "final states diverged");
}

/// Concurrent mixed-method traffic on both planes, each run certified by
/// the sercheck oracle, with the balance invariant checked on top.
#[test]
fn both_planes_serializable_under_concurrent_mixed_load() {
    for transport in [TransportKind::BatchedRing, TransportKind::Mpsc] {
        const ITEMS: u64 = 24;
        const CLIENTS: u64 = 6;
        const PER_CLIENT: u64 = 40;
        let db = Database::open(RuntimeConfig {
            policy: CcPolicy::Mix {
                p_2pl: 0.34,
                p_to: 0.33,
            },
            ..plane_config(transport, 3, ITEMS)
        })
        .unwrap();
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for k in 0..PER_CLIENT {
                        let i = c * 131 + k * 17;
                        let from = li(i % ITEMS);
                        let to = li((i * 3 + 1) % ITEMS);
                        if from == to {
                            continue;
                        }
                        let spec = TxnSpec::new().write(from).write(to);
                        db.run_transaction(&spec, |reads| {
                            vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let total: Value = (0..ITEMS)
            .map(|i| {
                db.run_transaction(&TxnSpec::new().read(li(i)), |_| vec![])
                    .unwrap()
                    .reads[&li(i)]
            })
            .sum();
        assert_eq!(total, 100 * ITEMS as Value, "{transport:?}: balance leaked");
        let report = db.shutdown().unwrap();
        assert!(
            report.serializable().is_ok(),
            "{transport:?}: oracle rejected the execution"
        );
    }
}
