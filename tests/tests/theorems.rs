//! End-to-end checks of the paper's correctness results (Theorems 2–3,
//! Corollaries 1–2) on full simulation runs.

use dbmodel::CcMethod;
use sim::{MethodPolicy, SimConfig, Simulation};

fn config(policy: MethodPolicy, seed: u64) -> SimConfig {
    SimConfig {
        seed,
        num_sites: 3,
        num_items: 40,
        arrival_rate: 250.0,
        txn_size: 4,
        read_fraction: 0.5,
        num_transactions: 400,
        local_compute: simkit::time::Duration::from_millis(5),
        method_policy: policy,
        ..SimConfig::default()
    }
}

#[test]
fn theorem_2_mixed_executions_are_conflict_serializable() {
    for seed in [1, 2, 3] {
        let report = Simulation::run(config(
            MethodPolicy::Mix {
                p_2pl: 0.34,
                p_to: 0.33,
            },
            seed,
        ));
        assert!(
            report.serializable().is_ok(),
            "seed {seed}: {:?}",
            report.serializable()
        );
        assert_eq!(report.committed, report.submitted, "no transaction is lost");
    }
}

#[test]
fn corollary_1_pa_is_free_from_deadlocks_and_restarts() {
    let report = Simulation::run(config(
        MethodPolicy::Static(CcMethod::PrecedenceAgreement),
        7,
    ));
    let stats = report.metrics.method(CcMethod::PrecedenceAgreement);
    assert_eq!(stats.restarts(), 0, "PA never restarts");
    assert_eq!(stats.deadlock_aborts.get(), 0, "PA never deadlocks");
    assert_eq!(
        report.committed, report.submitted,
        "every PA transaction executes"
    );
    assert!(report.serializable().is_ok());
    // Under this contention level the backoff machinery was actually used,
    // so the absence of restarts is not vacuous.
    assert!(stats.backoff_rounds.get() > 0, "the run exercised backoffs");
}

#[test]
fn theorem_3_only_2pl_transactions_are_deadlock_victims() {
    for seed in [11, 12] {
        let report = Simulation::run(config(
            MethodPolicy::Mix {
                p_2pl: 0.5,
                p_to: 0.25,
            },
            seed,
        ));
        assert_eq!(
            report
                .metrics
                .method(CcMethod::TimestampOrdering)
                .deadlock_aborts
                .get(),
            0
        );
        assert_eq!(
            report
                .metrics
                .method(CcMethod::PrecedenceAgreement)
                .deadlock_aborts
                .get(),
            0
        );
        assert!(report.serializable().is_ok());
    }
}

#[test]
fn to_never_deadlocks_but_does_restart_under_contention() {
    let report = Simulation::run(config(
        MethodPolicy::Static(CcMethod::TimestampOrdering),
        21,
    ));
    let stats = report.metrics.method(CcMethod::TimestampOrdering);
    assert_eq!(stats.deadlock_aborts.get(), 0);
    assert!(
        stats.rejections.get() > 0,
        "contention must cause some rejections"
    );
    assert_eq!(
        report.committed, report.submitted,
        "restarts eventually succeed"
    );
    assert!(report.serializable().is_ok());
}

#[test]
fn pure_2pl_runs_are_serializable_even_with_deadlock_recovery() {
    let report = Simulation::run(config(MethodPolicy::Static(CcMethod::TwoPhaseLocking), 31));
    assert!(report.serializable().is_ok());
    assert_eq!(report.committed, report.submitted);
    // Deadlock victims (if any) must all be 2PL by construction.
    assert_eq!(
        report.total_deadlocks(),
        report
            .metrics
            .method(CcMethod::TwoPhaseLocking)
            .deadlock_aborts
            .get()
    );
}
