//! Cross-validation: the unified engine restricted to a single protocol must
//! make the same accept/reject/backoff decisions as the standalone reference
//! implementations of Section 3 (the `protocols` crate).

use dbmodel::{
    AccessMode, CcMethod, LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId,
};
use pam::{ReplyMsg, RequestMsg};
use protocols::{
    BasicTimestampOrdering, LockManager, LockMode2pl, LockRequestOutcome, PaDecision,
    PaQueueManager, ToDecision,
};
use simkit::rng::SimRng;
use unified_cc::{EnforcementMode, QueueManager};

fn item(i: u64) -> PhysicalItemId {
    PhysicalItemId::new(LogicalItemId(i), SiteId(0))
}

fn access(txn: u64, i: u64, mode: AccessMode, method: CcMethod, ts: u64, int: u64) -> RequestMsg {
    RequestMsg::Access {
        txn: TxnId(txn),
        item: item(i),
        mode,
        method,
        ts: TsTuple::new(Timestamp(ts), int),
    }
}

#[test]
fn to_decisions_match_standalone_basic_to() {
    // Replay the same random single-item operation stream through both the
    // standalone Basic T/O scheduler and the unified queue manager running
    // only T/O transactions; the accept/reject verdicts must be identical.
    let mut rng = SimRng::new(42);
    let mut standalone = BasicTimestampOrdering::new();
    let mut unified = QueueManager::new(SiteId(0));
    unified.add_item(item(1), 0, EnforcementMode::SemiLock);

    for txn in 1..400u64 {
        let ts = rng.next_below(1_000) + 1;
        let mode = if rng.next_bool(0.5) {
            AccessMode::Read
        } else {
            AccessMode::Write
        };
        let standalone_verdict =
            standalone.submit(TxnId(txn), Timestamp(ts), LogicalItemId(1), mode);

        let out = unified.handle(
            SiteId(0),
            &access(txn, 1, mode, CcMethod::TimestampOrdering, ts, 1),
        );
        let rejected = out
            .replies
            .iter()
            .any(|r| matches!(r, ReplyMsg::Reject { .. }));
        let unified_verdict = if rejected {
            ToDecision::Rejected
        } else {
            ToDecision::Accepted
        };
        assert_eq!(
            standalone_verdict, unified_verdict,
            "txn {txn} ts {ts} {mode:?}: standalone and unified T/O disagree"
        );
        if !rejected {
            // Release immediately so both schedulers consider the operation
            // implemented (standalone Basic T/O implements on acceptance).
            unified.handle(
                SiteId(0),
                &RequestMsg::Release {
                    txn: TxnId(txn),
                    item: item(1),
                    write_value: if mode == AccessMode::Write {
                        Some(ts as i64)
                    } else {
                        None
                    },
                    commit_ts: Timestamp::ZERO,
                },
            );
        }
    }
}

#[test]
fn pa_backoff_proposals_match_standalone_pa() {
    // Every iteration compares one decision on freshly seeded engines whose
    // R-TS/W-TS thresholds are forced to the same state by a granted and
    // released write at a random timestamp. Accept/backoff verdicts and the
    // proposal values must then agree exactly.
    let mut rng = SimRng::new(7);
    for txn in 1..300u64 {
        let seed_ts = rng.next_below(400) + 50;
        let mut standalone = PaQueueManager::new(LogicalItemId(1));
        let mut unified = QueueManager::new(SiteId(0));
        unified.add_item(item(1), 0, EnforcementMode::SemiLock);
        standalone.submit(
            TxnId(1_000_000),
            SiteId(0),
            TsTuple::new(Timestamp(seed_ts), 1),
            AccessMode::Write,
        );
        standalone.poll_grants();
        standalone.release(TxnId(1_000_000));
        unified.handle(
            SiteId(0),
            &access(
                1_000_000,
                1,
                AccessMode::Write,
                CcMethod::PrecedenceAgreement,
                seed_ts,
                1,
            ),
        );
        unified.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(1_000_000),
                item: item(1),
                write_value: Some(1),
                commit_ts: Timestamp::ZERO,
            },
        );

        let ts = rng.next_below(500) + 1;
        let interval = rng.next_below(20) + 1;
        let mode = if rng.next_bool(0.5) {
            AccessMode::Read
        } else {
            AccessMode::Write
        };
        let standalone_verdict = standalone.submit(
            TxnId(txn),
            SiteId(0),
            TsTuple::new(Timestamp(ts), interval),
            mode,
        );
        standalone.poll_grants();
        standalone.release(TxnId(txn));

        let out = unified.handle(
            SiteId(0),
            &access(txn, 1, mode, CcMethod::PrecedenceAgreement, ts, interval),
        );
        let unified_backoff = out.replies.iter().find_map(|r| match r {
            ReplyMsg::Backoff { new_ts, .. } => Some(*new_ts),
            _ => None,
        });
        match (standalone_verdict, unified_backoff) {
            (PaDecision::Accepted, None) => {
                // Both accepted at the original timestamp: grant + release on
                // both sides so the R-TS/W-TS thresholds track each other.
                standalone.poll_grants();
                standalone.release(TxnId(txn));
                unified.handle(
                    SiteId(0),
                    &RequestMsg::Release {
                        txn: TxnId(txn),
                        item: item(1),
                        write_value: if mode == AccessMode::Write {
                            Some(1)
                        } else {
                            None
                        },
                        commit_ts: Timestamp::ZERO,
                    },
                );
            }
            (PaDecision::BackedOff(expected), Some(actual)) => {
                // Both engines must agree that the request needs to back off,
                // propose a timestamp of the form ts + k·INT, and stay above
                // the original timestamp. The exact proposal may differ by a
                // few intervals because the unified engine's thresholds also
                // account for the unified precedence bookkeeping; the
                // decision agreement is what the cross-validation pins down.
                assert!(
                    expected > Timestamp(ts),
                    "standalone proposal must exceed ts"
                );
                assert!(actual > Timestamp(ts), "unified proposal must exceed ts");
                assert_eq!(
                    (actual.0 - ts) % interval,
                    0,
                    "txn {txn}: unified proposal not of the form ts + k*INT"
                );
                assert_eq!(
                    (expected.0 - ts) % interval,
                    0,
                    "txn {txn}: standalone proposal not of the form ts + k*INT"
                );
                // Resolve the backoff identically on both sides.
                standalone.update_ts(TxnId(txn), SiteId(0), expected);
                standalone.poll_grants();
                standalone.release(TxnId(txn));
                unified.handle(
                    SiteId(0),
                    &RequestMsg::UpdatedTs {
                        txn: TxnId(txn),
                        item: item(1),
                        new_ts: actual,
                    },
                );
                unified.handle(
                    SiteId(0),
                    &RequestMsg::Release {
                        txn: TxnId(txn),
                        item: item(1),
                        write_value: if mode == AccessMode::Write {
                            Some(1)
                        } else {
                            None
                        },
                        commit_ts: Timestamp::ZERO,
                    },
                );
            }
            (s, u) => panic!("txn {txn}: standalone {s:?} vs unified backoff {u:?}"),
        }
    }
}

#[test]
fn two_pl_grant_order_matches_standalone_lock_manager() {
    // Same FCFS request sequence against both engines: grants must occur for
    // the same transactions in the same order.
    let requests: Vec<(u64, AccessMode)> = vec![
        (1, AccessMode::Read),
        (2, AccessMode::Read),
        (3, AccessMode::Write),
        (4, AccessMode::Read),
        (5, AccessMode::Write),
    ];

    // Standalone.
    let mut lm = LockManager::new();
    let mut standalone_granted = Vec::new();
    for &(txn, mode) in &requests {
        let mode2 = match mode {
            AccessMode::Read => LockMode2pl::Shared,
            AccessMode::Write => LockMode2pl::Exclusive,
        };
        if lm.request(TxnId(txn), LogicalItemId(1), mode2) == LockRequestOutcome::Granted {
            standalone_granted.push(TxnId(txn));
        }
    }
    // Unified, 2PL-only.
    let mut unified = QueueManager::new(SiteId(0));
    unified.add_item(item(1), 0, EnforcementMode::SemiLock);
    let mut unified_granted = Vec::new();
    for &(txn, mode) in &requests {
        let out = unified.handle(
            SiteId(0),
            &access(txn, 1, mode, CcMethod::TwoPhaseLocking, 0, 1),
        );
        for reply in out.replies {
            if let ReplyMsg::Grant { txn, .. } = reply {
                unified_granted.push(txn);
            }
        }
    }
    assert_eq!(standalone_granted, unified_granted);

    // Release the initial readers in both engines; the writer t3 must be the
    // next grant in both.
    let mut after_standalone = Vec::new();
    after_standalone.extend(lm.release_all(TxnId(1)));
    after_standalone.extend(lm.release_all(TxnId(2)));
    let mut after_unified = Vec::new();
    for txn in [1u64, 2] {
        let out = unified.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(txn),
                item: item(1),
                write_value: None,
                commit_ts: Timestamp::ZERO,
            },
        );
        for reply in out.replies {
            if let ReplyMsg::Grant { txn, .. } = reply {
                after_unified.push(txn);
            }
        }
    }
    assert_eq!(after_standalone, vec![TxnId(3)]);
    assert_eq!(after_unified, vec![TxnId(3)]);
}
