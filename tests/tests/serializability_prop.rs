//! Property-based tests: for *every* randomly drawn configuration — load,
//! transaction size, read mix, replication, skew, delays, method mix — the
//! unified system commits the whole workload and the execution is conflict
//! serializable (Theorem 2), PA transactions never restart (Corollary 1), and
//! T/O / PA transactions are never deadlock victims (Corollary 2).

use dbmodel::{CcMethod, ReplicationPolicy};
use network::DelaySpec;
use proptest::prelude::*;
use sim::{MethodPolicy, SimConfig, Simulation};
use simkit::time::Duration;

fn arb_policy() -> impl Strategy<Value = MethodPolicy> {
    prop_oneof![
        Just(MethodPolicy::Static(CcMethod::TwoPhaseLocking)),
        Just(MethodPolicy::Static(CcMethod::TimestampOrdering)),
        Just(MethodPolicy::Static(CcMethod::PrecedenceAgreement)),
        (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(a, b)| {
            // Normalise so the probabilities always sum below 1.
            let total = a + b + 1.0;
            MethodPolicy::Mix {
                p_2pl: a / total,
                p_to: b / total,
            }
        }),
        Just(MethodPolicy::DynamicStl),
    ]
}

fn arb_replication() -> impl Strategy<Value = ReplicationPolicy> {
    prop_oneof![
        Just(ReplicationPolicy::SingleCopy),
        Just(ReplicationPolicy::FullReplication),
        (2usize..4).prop_map(ReplicationPolicy::KCopies),
    ]
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        any::<u64>(),
        2u32..5,
        10u64..80,
        20.0f64..400.0,
        1usize..6,
        0.0f64..=1.0,
        0.0f64..1.2,
        arb_replication(),
        arb_policy(),
        1u64..20_000,
    )
        .prop_map(
            |(seed, sites, items, rate, size, read_frac, skew, replication, policy, backoff)| {
                SimConfig {
                    seed,
                    num_sites: sites,
                    num_items: items,
                    replication,
                    arrival_rate: rate,
                    txn_size: size.min(items as usize),
                    read_fraction: read_frac,
                    access_skew: skew,
                    num_transactions: 120,
                    local_compute: Duration::from_millis(3),
                    local_delay: DelaySpec::Uniform(20, 150),
                    remote_delay: DelaySpec::ExponentialMean(1_500),
                    pa_backoff_interval: backoff,
                    method_policy: policy,
                    ..SimConfig::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0,
        .. ProptestConfig::default()
    })]

    #[test]
    fn every_random_configuration_is_serializable_and_live(config in arb_config()) {
        prop_assert!(config.validate().is_ok(), "generated config must be valid");
        let report = Simulation::run(config);
        // Liveness: the whole workload commits.
        prop_assert_eq!(report.committed, report.submitted);
        // Safety: Theorem 2.
        prop_assert!(report.serializable().is_ok(), "{:?}", report.serializable());
        // Corollary 1: PA transactions never restart.
        prop_assert_eq!(report.metrics.method(CcMethod::PrecedenceAgreement).restarts(), 0);
        // Corollary 2 / Theorem 3: only 2PL transactions are deadlock victims.
        prop_assert_eq!(
            report.metrics.method(CcMethod::TimestampOrdering).deadlock_aborts.get(),
            0
        );
        prop_assert_eq!(
            report.metrics.method(CcMethod::PrecedenceAgreement).deadlock_aborts.get(),
            0
        );
    }
}
