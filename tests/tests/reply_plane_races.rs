//! The reply-plane race certification suite (PR 4's `test` archetype).
//!
//! The slab registry's one dangerous claim is that a reply addressed to
//! an earlier incarnation can never surface in a later incarnation that
//! reuses the same mailbox slot — the runtime's "stale reply for an
//! aborted incarnation is dropped" rule, now enforced by an incarnation
//! tag instead of by allocating a fresh channel per incarnation. This
//! suite attacks that claim three ways:
//!
//! 1. **Seeded churn across 8 threads** — clients cycle incarnations on
//!    reused mailboxes while producers deliver against deliberately
//!    stale key snapshots; every received event must carry the
//!    consumer's *current* key, and the stale-drop counter must prove
//!    the races actually fired.
//! 2. **Mutation check** — the identical machinery with the generation
//!    tag disabled (`MailboxOptions::tag_check = false`) must
//!    demonstrably leak: a stale reply observably reaches a later
//!    incarnation. If this test ever stops failing-the-guarantee with
//!    the tag off, the suite has lost its teeth.
//! 3. **Victim-signal race** — a `DeadlockVictim`-style marker racing a
//!    stream of coalesced reply batches is never lost: if the producer
//!    saw it accepted, the consumer observes it before the registration
//!    is torn down.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simkit::rng::SimRng;
use transport::mailbox::{Mailbox, MailboxOptions, MailboxRegistry};

const CLIENTS: usize = 8;
const PRODUCERS: usize = 4;

/// Events in this suite are `(intended_key, payload)` where the payload
/// repeats the key the producer believed it was addressing — so a
/// misrouted event is observable at the consumer even if the filter is
/// mutation-disabled.
type Ev = u64;

fn churn_options(tag_check: bool) -> MailboxOptions {
    MailboxOptions {
        // Small index pinned at its ceiling: live-key collisions (the
        // overflow path) occur under churn, so the slow home is raced
        // too. The resizable-index churn gets its own test below.
        index_capacity: 64,
        index_max_capacity: 64,
        mailbox_capacity: 32,
        max_clients: CLIENTS,
        tag_check,
        ..MailboxOptions::default()
    }
}

/// The shared churn harness. Runs clients cycling incarnations on
/// reused mailboxes against producers delivering to (possibly stale)
/// key snapshots until `deadline`, and returns
/// `(cross_incarnation_leaks, stale_dropped)`.
fn run_churn(registry: &MailboxRegistry<Ev>, run_for: Duration, seed: u64) -> (u64, u64) {
    // Each client's currently (or recently) registered key. Producers
    // read these racily — that staleness is the attack.
    let published: Arc<Vec<AtomicU64>> =
        Arc::new((0..CLIENTS).map(|_| AtomicU64::new(0)).collect());
    let next_key = Arc::new(AtomicU64::new(1));
    let stop = Arc::new(AtomicBool::new(false));
    let leaks = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            let registry = registry.clone();
            scope.spawn(move || {
                let mut rng = SimRng::new(seed ^ (0xB0B0 + p as u64));
                while !stop.load(Ordering::Relaxed) {
                    let c = (rng.next_f64() * CLIENTS as f64) as usize % CLIENTS;
                    let key = published[c].load(Ordering::Relaxed);
                    if key == 0 {
                        continue;
                    }
                    // Deliver a burst; by the time the later sends land
                    // the client may be incarnations ahead.
                    for _ in 0..4 {
                        registry.deliver(key, key);
                    }
                }
            });
        }
        for c in 0..CLIENTS {
            let published = Arc::clone(&published);
            let next_key = Arc::clone(&next_key);
            let stop = Arc::clone(&stop);
            let leaks = Arc::clone(&leaks);
            let registry = registry.clone();
            scope.spawn(move || {
                let mut rng = SimRng::new(seed ^ (0xC11E + c as u64));
                // One mailbox per client thread, reused across every
                // incarnation below — the allocation-free design under
                // test.
                let mut mailbox = registry.acquire().expect("mailbox slab exhausted");
                while !stop.load(Ordering::Relaxed) {
                    let key = next_key.fetch_add(1, Ordering::Relaxed);
                    registry.register(key, 0, &mut mailbox);
                    published[c].store(key, Ordering::Relaxed);
                    // Seed one event for this incarnation regardless of
                    // producer aim. `try_deliver`, not `deliver`: this
                    // thread is its own consumer, and blocking on a ring
                    // only it can drain would self-deadlock.
                    registry.try_deliver(key, key);
                    let drains = 1 + (rng.next_f64() * 3.0) as usize;
                    for _ in 0..drains {
                        if let Some(payload) = mailbox.recv_timeout(key, Duration::from_millis(5)) {
                            if payload != key {
                                // A reply for another (earlier)
                                // incarnation surfaced in this one.
                                leaks.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    // Leave undrained events behind on purpose: the next
                    // incarnation must never see them.
                    registry.deregister(key);
                    if rng.next_f64() < 0.05 {
                        std::thread::yield_now();
                    }
                }
                published[c].store(0, Ordering::Relaxed);
            });
        }
        std::thread::sleep(run_for);
        stop.store(true, Ordering::Relaxed);
    });
    (leaks.load(Ordering::Relaxed), registry.stale_dropped())
}

/// Satellite 1, main half: with the generation tag enabled, the churn
/// may drop arbitrarily many stale events but must never leak one into
/// a later incarnation — and the drop counter must prove the stale
/// races genuinely happened (otherwise the zero-leak assertion is
/// vacuous).
#[test]
fn churn_with_tag_never_leaks_across_incarnations() {
    let registry = MailboxRegistry::<Ev>::with_options(churn_options(true));
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut total_stale = 0;
    while Instant::now() < deadline {
        let (leaks, stale) = run_churn(&registry, Duration::from_millis(300), 0xA5EED);
        assert_eq!(
            leaks, 0,
            "a stale reply reached a later incarnation despite the tag"
        );
        total_stale = stale;
        if total_stale > 0 {
            break;
        }
    }
    assert!(
        total_stale > 0,
        "the churn never produced a stale delivery — the race test is vacuous"
    );
}

/// Satellite 1, mutation half: disabling the generation tag must make
/// the identical churn demonstrably fail the stale-grant rule. The
/// deterministic transport-level unit test pins the exact leak
/// sequence; this one shows the tag is what stops it *under real
/// races*.
#[test]
fn churn_without_tag_demonstrably_leaks() {
    let registry = MailboxRegistry::<Ev>::with_options(churn_options(false));
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut leaked = 0;
    while Instant::now() < deadline && leaked == 0 {
        let (leaks, _) = run_churn(&registry, Duration::from_millis(300), 0x0FF7A6);
        leaked += leaks;
    }
    assert!(
        leaked > 0,
        "with the tag disabled the churn must leak stale replies; \
         if it no longer does, the race suite has lost its teeth"
    );
}

/// Satellite 2, racing half (the deterministic ordering half lives in
/// `runtime`'s registry tests, on both planes): a rare victim-style
/// marker racing a firehose of reply batches is never lost — every
/// marker the producer saw accepted is observed by the consumer of that
/// incarnation.
#[test]
fn victim_marker_racing_reply_batches_is_never_lost() {
    const MARKER: u64 = u64::MAX;
    const ROUNDS: u64 = 400;
    let registry = MailboxRegistry::<(u64, bool)>::with_options(MailboxOptions {
        index_capacity: 64,
        mailbox_capacity: 32,
        max_clients: 2,
        tag_check: true,
        ..MailboxOptions::default()
    });
    let current = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // The "shard": keeps blasting reply batches at the live key.
        {
            let current = Arc::clone(&current);
            let stop = Arc::clone(&stop);
            let registry = registry.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let key = current.load(Ordering::Relaxed);
                    if key != 0 {
                        registry.deliver(key, (key, false));
                    }
                }
            });
        }
        // The "client": per incarnation, waits for the detector's marker
        // amid the reply noise.
        let mut mailbox = registry.acquire().expect("mailbox slab exhausted");
        let mut rng = SimRng::new(0xDEAD10C);
        for round in 1..=ROUNDS {
            let key = round;
            registry.register(key, 0, &mut mailbox);
            current.store(key, Ordering::Relaxed);
            // The "detector" races from this thread at a seeded delay:
            // the signal interleaves arbitrarily with in-flight replies.
            if rng.next_f64() < 0.5 {
                std::thread::yield_now();
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            // `try_deliver` + drain loop (never block on one's own
            // mailbox): the shard may have filled the ring, in which
            // case draining a few replies frees a slot for the signal.
            let mut accepted = registry.try_deliver(key, (MARKER, true));
            let mut seen_marker = false;
            while !seen_marker {
                assert!(
                    Instant::now() < deadline,
                    "round {round}: the victim marker was lost among the replies"
                );
                if let Some((payload, is_marker)) =
                    mailbox.recv_timeout(key, Duration::from_millis(100))
                {
                    if is_marker {
                        assert_eq!(payload, MARKER);
                        seen_marker = true;
                    } else {
                        assert_eq!(payload, key, "reply leaked across incarnations");
                    }
                }
                if !accepted {
                    accepted = registry.try_deliver(key, (MARKER, true));
                }
            }
            assert!(accepted, "the live incarnation's signal was queued");
            current.store(0, Ordering::Relaxed);
            registry.deregister(key);
        }
        stop.store(true, Ordering::Relaxed);
    });
}

/// Concurrent register/deregister/deliver churn keeps the registry's
/// bookkeeping consistent: after the dust settles nothing is live, the
/// overflow map is empty, and a fresh registration still round-trips.
#[test]
fn churn_leaves_consistent_bookkeeping() {
    let registry = MailboxRegistry::<Ev>::with_options(churn_options(true));
    let _ = run_churn(&registry, Duration::from_millis(500), 0xB00C);
    assert_eq!(registry.len(), 0, "every incarnation was deregistered");
    assert_eq!(
        registry.overflow_entries(),
        0,
        "collision entries were cleaned up"
    );
    let mut mailbox = registry.acquire().expect("mailbox slab exhausted");
    registry.register(u64::MAX - 1, 7, &mut mailbox);
    assert!(registry.deliver(u64::MAX - 1, 42));
    assert_eq!(
        mailbox.recv_timeout(u64::MAX - 1, Duration::from_secs(1)),
        Some(42)
    );
    assert_eq!(registry.resolve_meta(u64::MAX - 1), Some(7));
    registry.deregister(u64::MAX - 1);
}

/// Shared harness for the resizable-index tests: ramp `ramp_n` keys to
/// concurrently live (each holding its own mailbox) while churner
/// threads cycle short-lived incarnations through the same index, then
/// deliver exactly one payload to every held key and require it back.
/// Returns `(index_capacity, index_resizes, overflow_entries)` sampled
/// at peak liveness.
fn ramp_under_churn(ramp_n: usize, opts: MailboxOptions) -> (usize, u64, usize) {
    const CHURNERS: u64 = 3;
    let registry = MailboxRegistry::<Ev>::with_options(opts);
    let stop = Arc::new(AtomicBool::new(false));
    let leaks = Arc::new(AtomicU64::new(0));
    let mut at_peak = (0, 0, 0);

    std::thread::scope(|scope| {
        // Churners register/deliver/deregister transient keys (disjoint
        // from the ramp's key range) so index growth races live
        // registration traffic, not a quiesced registry.
        for t in 0..CHURNERS {
            let stop = Arc::clone(&stop);
            let leaks = Arc::clone(&leaks);
            let registry = registry.clone();
            scope.spawn(move || {
                let mut mailbox = registry.acquire().expect("mailbox slab exhausted");
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = (1 << 32) + t + n * CHURNERS;
                    n += 1;
                    registry.register(key, 0, &mut mailbox);
                    registry.try_deliver(key, key);
                    if let Some(payload) = mailbox.recv_timeout(key, Duration::from_millis(1)) {
                        if payload != key {
                            leaks.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    registry.deregister(key);
                }
            });
        }

        let mut held: Vec<(u64, Mailbox<Ev>)> = Vec::with_capacity(ramp_n);
        for i in 0..ramp_n {
            let key = (i + 1) as u64;
            let mut mailbox = registry.acquire().expect("mailbox slab exhausted");
            registry.register(key, 0, &mut mailbox);
            held.push((key, mailbox));
        }
        // Every held key must still be individually addressable at peak
        // liveness — and must receive its own payload, never another
        // incarnation's.
        for (key, mailbox) in &mut held {
            assert!(
                registry.deliver(*key, *key),
                "delivery to live key {key} was refused at peak liveness"
            );
            assert_eq!(
                mailbox.recv_timeout(*key, Duration::from_secs(5)),
                Some(*key),
                "held key {key} lost (or mis-received) its reply"
            );
        }
        at_peak = (
            registry.index_capacity(),
            registry.index_resizes(),
            registry.overflow_entries(),
        );
        stop.store(true, Ordering::Relaxed);
        for (key, _) in &held {
            registry.deregister(*key);
        }
    });

    assert_eq!(
        leaks.load(Ordering::Relaxed),
        0,
        "a churner observed a stale reply while the index was resizing"
    );
    assert_eq!(registry.len(), 0, "every registration was torn down");
    assert_eq!(
        registry.overflow_entries(),
        0,
        "overflow drained after teardown"
    );
    at_peak
}

/// Tentpole race certification: growing the index from a deliberately
/// tiny starting table while churners race register/deliver/deregister
/// traffic through it must lose nothing — and must actually have grown,
/// or the test proved nothing about resizing.
#[test]
fn index_growth_under_churn_never_loses_a_delivery() {
    let (capacity, resizes, _) = ramp_under_churn(
        4096,
        MailboxOptions {
            index_capacity: 64,
            mailbox_capacity: 8,
            max_clients: 4096 + 64,
            tag_check: true,
            ..MailboxOptions::default()
        },
    );
    assert!(
        resizes >= 6,
        "ramping 4096 live keys from 64 buckets grew only {resizes} times"
    );
    assert!(
        capacity >= 4096,
        "index stayed at {capacity} buckets under a 4096-key live set"
    );
}

/// The acceptance gate for the old 4096-bucket ceiling: 32768 keys —
/// 8x the fixed index PR 4 shipped — concurrently live under churn,
/// with zero registrations shunted to the mutexed overflow map and
/// zero stale-reply leaks.
#[test]
fn scale_32768_live_keys_stays_off_the_overflow_path() {
    let (capacity, resizes, overflow) = ramp_under_churn(
        32_768,
        MailboxOptions {
            index_capacity: 1024,
            mailbox_capacity: 8,
            max_clients: 32_768 + 64,
            tag_check: true,
            ..MailboxOptions::default()
        },
    );
    assert_eq!(
        overflow, 0,
        "live registrations leaked onto the overflow map below the growth ceiling"
    );
    assert!(
        resizes > 0,
        "the index never resized on the way to 32768 live keys"
    );
    assert!(
        capacity >= 32_768,
        "index stopped at {capacity} buckets under a 32768-key live set"
    );
}
