//! Reply-plane equivalence: the lock-free mailbox registry and the
//! per-incarnation mpsc registry are observationally interchangeable.
//!
//! Mirrors `transport_stress.rs`'s plane-equivalence layers for the
//! *reply* direction (satellite 3):
//!
//! 1. **Deterministic** — one seeded single-client workload produces
//!    bit-identical reads, commits and final state on both reply planes.
//! 2. **Concurrent** — the same seeded mixed-method multi-threaded
//!    workload runs on each reply plane and both histories are certified
//!    by the `sercheck` serializability oracle, with the balance
//!    invariant checked on top.
//! 3. **Crossed planes** — the reply plane composes with both message
//!    planes (ring and mpsc transports), since the two are selected
//!    independently.

use std::time::Duration;

use dbmodel::{CcMethod, LogicalItemId, Value};
use runtime::{CcPolicy, Database, ReplyPlaneKind, RuntimeConfig, TransportKind, TxnSpec};

fn li(i: u64) -> LogicalItemId {
    LogicalItemId(i)
}

fn plane_config(reply: ReplyPlaneKind, shards: u32, items: u64) -> RuntimeConfig {
    RuntimeConfig {
        num_shards: shards,
        num_items: items,
        initial_value: 100,
        reply_plane: reply,
        deadlock_scan_interval: Duration::from_millis(2),
        ..RuntimeConfig::default()
    }
}

/// Drive one deterministic single-client workload and capture everything
/// observable: per-transaction read values and the final state of every
/// item.
fn deterministic_run(reply: ReplyPlaneKind) -> (Vec<Vec<Value>>, Vec<Value>, u64) {
    const ITEMS: u64 = 12;
    let db = Database::open(plane_config(reply, 3, ITEMS)).unwrap();
    let mut observed = Vec::new();
    for i in 0..80u64 {
        let a = li(i % ITEMS);
        let b = li((i * 5 + 1) % ITEMS);
        if a == b {
            continue;
        }
        let method = CcMethod::ALL[(i % 3) as usize];
        let spec = TxnSpec::new().write(a).write(b).method(method);
        let receipt = db
            .run_transaction(&spec, |reads| vec![(a, reads[&a] - 1), (b, reads[&b] + 1)])
            .unwrap();
        observed.push(receipt.reads.values().copied().collect::<Vec<_>>());
    }
    let finals: Vec<Value> = (0..ITEMS)
        .map(|i| {
            db.run_transaction(&TxnSpec::new().read(li(i)), |_| vec![])
                .unwrap()
                .reads[&li(i)]
        })
        .collect();
    let report = db.shutdown().unwrap();
    assert!(
        report.serializable().is_ok(),
        "{reply:?} run must be serializable"
    );
    (observed, finals, report.stats.committed)
}

/// Mailbox-vs-mpsc registry equivalence: a deterministic workload is
/// bit-identical across the two reply planes — the slab only changes how
/// replies are routed and woken, never what a transaction observes.
#[test]
fn mailbox_and_mpsc_registries_are_observationally_equivalent() {
    let (mail_reads, mail_finals, mail_committed) = deterministic_run(ReplyPlaneKind::Mailbox);
    let (mpsc_reads, mpsc_finals, mpsc_committed) = deterministic_run(ReplyPlaneKind::Mpsc);
    assert_eq!(mail_committed, mpsc_committed);
    assert_eq!(mail_reads, mpsc_reads, "per-transaction reads diverged");
    assert_eq!(mail_finals, mpsc_finals, "final states diverged");
}

/// Concurrent mixed-method traffic on both reply planes, each run
/// certified by the sercheck oracle, with the balance invariant checked
/// on top — the reply plane's version of
/// `both_planes_serializable_under_concurrent_mixed_load`.
#[test]
fn both_reply_planes_serializable_under_concurrent_mixed_load() {
    for reply in [ReplyPlaneKind::Mailbox, ReplyPlaneKind::Mpsc] {
        const ITEMS: u64 = 24;
        const CLIENTS: u64 = 6;
        const PER_CLIENT: u64 = 40;
        let db = Database::open(RuntimeConfig {
            policy: CcPolicy::Mix {
                p_2pl: 0.34,
                p_to: 0.33,
            },
            ..plane_config(reply, 3, ITEMS)
        })
        .unwrap();
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for k in 0..PER_CLIENT {
                        let i = c * 131 + k * 17;
                        let from = li(i % ITEMS);
                        let to = li((i * 3 + 1) % ITEMS);
                        if from == to {
                            continue;
                        }
                        let spec = TxnSpec::new().write(from).write(to);
                        db.run_transaction(&spec, |reads| {
                            vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let total: Value = (0..ITEMS)
            .map(|i| {
                db.run_transaction(&TxnSpec::new().read(li(i)), |_| vec![])
                    .unwrap()
                    .reads[&li(i)]
            })
            .sum();
        assert_eq!(total, 100 * ITEMS as Value, "{reply:?}: balance leaked");
        let report = db.shutdown().unwrap();
        assert!(
            report.serializable().is_ok(),
            "{reply:?}: oracle rejected the execution"
        );
    }
}

/// The reply plane is orthogonal to the shard message plane: all four
/// combinations serve the same deterministic workload identically.
#[test]
fn reply_plane_composes_with_both_transports() {
    let mut baseline: Option<(u64, Vec<Value>)> = None;
    for transport in [TransportKind::BatchedRing, TransportKind::Mpsc] {
        for reply in [ReplyPlaneKind::Mailbox, ReplyPlaneKind::Mpsc] {
            const ITEMS: u64 = 8;
            let db = Database::open(RuntimeConfig {
                transport,
                ..plane_config(reply, 2, ITEMS)
            })
            .unwrap();
            for i in 0..40u64 {
                let a = li(i % ITEMS);
                let b = li((i * 3 + 1) % ITEMS);
                if a == b {
                    continue;
                }
                let spec = TxnSpec::new().write(a).write(b);
                db.run_transaction(&spec, |reads| vec![(a, reads[&a] + 1), (b, reads[&b] - 1)])
                    .unwrap();
            }
            let finals: Vec<Value> = (0..ITEMS)
                .map(|i| {
                    db.run_transaction(&TxnSpec::new().read(li(i)), |_| vec![])
                        .unwrap()
                        .reads[&li(i)]
                })
                .collect();
            let report = db.shutdown().unwrap();
            assert!(report.serializable().is_ok());
            let signature = (report.stats.committed, finals);
            match &baseline {
                None => baseline = Some(signature),
                Some(expected) => assert_eq!(
                    expected, &signature,
                    "{transport:?} + {reply:?} diverged from the baseline combination"
                ),
            }
        }
    }
}
