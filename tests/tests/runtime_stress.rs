//! Seeded concurrent stress: 2/4/8 shards × mixed `CcMethod` clients under
//! fixed RNG seeds, every execution log certified by the `sercheck`
//! oracle.
//!
//! Each client thread draws its workload (method, items, amounts) from its
//! own deterministic `SimRng` stream forked off the test seed, so the
//! *submitted* workload is reproducible run to run even though the
//! interleaving is genuinely concurrent. The checks are the paper's
//! runtime-level guarantees: committed read-modify-writes conserve the
//! account total, PA transactions never restart (Corollary 1), deadlock
//! aborts only ever hit 2PL transactions (Corollary 2), and the merged
//! execution log replays conflict-serializably (Theorem 2).
//!
//! (The companion deadlock-injection case — a hand-built wait cycle
//! asserting the detector victimises the *youngest* 2PL member — lives in
//! `runtime`'s detector unit tests, where the shard plumbing is
//! accessible.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dbmodel::{CcMethod, LogicalItemId};
use runtime::{Database, RuntimeConfig, TxnError, TxnSpec};
use simkit::rng::SimRng;

const ITEMS: u64 = 32;
const INITIAL: i64 = 500;
const CLIENTS: u64 = 6;
const TXNS_PER_CLIENT: u64 = 50;

fn li(i: u64) -> LogicalItemId {
    LogicalItemId(i % ITEMS)
}

fn stress(shards: u32, seed: u64) {
    let db = Database::open(RuntimeConfig {
        num_shards: shards,
        num_items: ITEMS,
        initial_value: INITIAL,
        deadlock_scan_interval: Duration::from_millis(2),
        ..RuntimeConfig::default()
    })
    .expect("valid config");

    let committed = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let db = db.clone();
            let committed = Arc::clone(&committed);
            let refused = Arc::clone(&refused);
            // One deterministic stream per client: the submitted workload
            // is a pure function of (seed, t).
            let mut rng = SimRng::new(seed).fork(t);
            std::thread::spawn(move || {
                for _ in 0..TXNS_PER_CLIENT {
                    let method = CcMethod::ALL[rng.next_index(3)];
                    let from = li(rng.next_below(ITEMS));
                    let to = li(rng.next_below(ITEMS));
                    if from == to {
                        continue;
                    }
                    let amount = 1 + rng.next_below(9) as i64;
                    let spec = TxnSpec::new().write(from).write(to).method(method);
                    match db.run_transaction(&spec, |reads| {
                        vec![(from, reads[&from] - amount), (to, reads[&to] + amount)]
                    }) {
                        Ok(receipt) => {
                            assert_eq!(receipt.method, method, "pinned method honoured");
                            if method == CcMethod::PrecedenceAgreement {
                                assert_eq!(receipt.restarts, 0, "PA never restarts (Corollary 1)");
                            }
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TxnError::TooManyRestarts { .. }) => {
                            refused.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected transaction error: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("stress client panicked");
    }

    // Committed transfers conserve the total.
    let audit = TxnSpec::new().reads((0..ITEMS).map(LogicalItemId));
    let receipt = db
        .run_transaction(&audit, |_| vec![])
        .expect("audit commits");
    assert_eq!(
        receipt.reads.values().sum::<i64>(),
        ITEMS as i64 * INITIAL,
        "conserved total under {shards} shards (seed {seed:#x})"
    );

    let report = db.shutdown().expect("first shutdown wins");
    assert_eq!(
        report.stats.committed,
        committed.load(Ordering::Relaxed) + 1, // + the audit transaction
    );
    assert_eq!(report.stats.failed, refused.load(Ordering::Relaxed));

    // Deadlock aborts may only ever hit 2PL incarnations (Corollary 2).
    for method in [CcMethod::TimestampOrdering, CcMethod::PrecedenceAgreement] {
        assert_eq!(
            report.metrics.method(method).deadlock_aborts.get(),
            0,
            "{method:?} must never be a deadlock victim"
        );
    }

    // The oracle certifies the whole interleaving (Theorem 2).
    let order = report
        .serializable()
        .expect("stress run must be conflict-serializable");
    assert!(order.len() as u64 >= committed.load(Ordering::Relaxed));

    // The shard-side feedback counters saw the traffic: every shard that
    // implemented operations also reported grants.
    let snapshot = &report.stats;
    assert_eq!(snapshot.per_shard.len(), shards as usize);
    assert!(snapshot.per_shard.iter().any(|s| s.implemented > 0));
    for shard in &snapshot.per_shard {
        assert!(shard.grants >= shard.prescheduled, "conflicts ⊆ grants");
    }
}

#[test]
fn stress_2_shards_seeded() {
    stress(2, 0xDEC0_DE01);
}

#[test]
fn stress_4_shards_seeded() {
    stress(4, 0xDEC0_DE02);
}

#[test]
fn stress_8_shards_seeded() {
    stress(8, 0xDEC0_DE03);
}
