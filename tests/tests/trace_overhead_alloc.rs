//! The tracing plane's zero-overhead claims, asserted with a counting
//! global allocator (the `engine_alloc` pattern):
//!
//! * at [`TraceLevel::Off`] the plane allocates nothing — not at
//!   construction (no rings, no counters, no stripes) and not per record
//!   call (every entry point returns on its first branch);
//! * at [`TraceLevel::Full`] the steady-state hot path — ring event
//!   writes, phase-counter bumps and warmed span folds — performs zero
//!   heap allocations: every buffer (the lanes' fixed slot arrays, the
//!   striped per-method histograms) exists after warm-up and is only
//!   ever overwritten.
//!
//! As in `engine_alloc`, the measurement takes the minimum allocation
//! delta over several windows so a stray harness allocation cannot flake
//! the test, while a path that allocates *every* event would fail all
//! windows. This file holds only this test: the counting allocator is
//! process-wide and must not observe unrelated tests running
//! concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dbmodel::CcMethod;
use runtime::{Phase, TraceConfig, TraceLevel};
use trace::{SpanTimings, TracePlane};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One steady-state burst of tracing work: the client-side lifecycle
/// events of a few transactions, a shard-side batch event, and one span
/// fold — everything the runtime's hot paths ask of the plane.
fn burst(plane: &TracePlane, lane: usize, base_txn: u64) {
    for k in 0..8 {
        let txn = base_txn + k;
        plane.record_at(lane, 10 * txn, txn, Phase::Begin, 0);
        plane.record_at(lane, 10 * txn + 2, txn, Phase::SelectionDone, 0);
        plane.record_at(lane, 10 * txn + 4, txn, Phase::TransportEnqueued, 2);
        plane.record(0, txn, Phase::ShardRecv, 2);
        plane.record_at(lane, 10 * txn + 6, txn, Phase::ExecutionStart, 0);
        plane.record_at(lane, 10 * txn + 8, txn, Phase::Committed, 0);
        plane.record_span(
            CcMethod::TwoPhaseLocking,
            &SpanTimings {
                begin: 10 * txn,
                selection_done: 10 * txn + 2,
                enqueued: 10 * txn + 4,
                exec_start: 10 * txn + 6,
                commit_start: 10 * txn + 7,
                committed: 10 * txn + 8,
            },
        );
    }
}

/// Minimum allocation delta over `windows` repetitions of `work`.
fn min_alloc_delta(windows: usize, mut work: impl FnMut()) -> u64 {
    let mut min_delta = u64::MAX;
    for _ in 0..windows {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        work();
        min_delta = min_delta.min(ALLOC_CALLS.load(Ordering::Relaxed) - before);
    }
    min_delta
}

#[test]
fn tracing_adds_zero_allocations_off_and_in_full_steady_state() {
    // --- TraceLevel::Off: construction plus every record call together
    // must not touch the allocator (beyond the plane's own empty boxes,
    // which `Box<[T]>::from([])` creates without allocating).
    let off_delta = min_alloc_delta(5, || {
        let plane = TracePlane::new(
            &TraceConfig {
                level: TraceLevel::Off,
                ..TraceConfig::default()
            },
            4,
        );
        let lane = plane.client_lane();
        burst(&plane, lane, 1);
        assert_eq!(plane.now(), 0, "no clock reads when off");
        assert_eq!(plane.events_recorded(), 0);
    });
    assert_eq!(
        off_delta, 0,
        "an Off plane must never ask the allocator for memory"
    );

    // --- TraceLevel::Full: after warm-up (rings exist from construction;
    // the first span fold builds this thread's stripe's per-method
    // histograms), the steady-state record/record_span path is
    // allocation-free even while the rings wrap.
    let plane = TracePlane::new(
        &TraceConfig {
            level: TraceLevel::Full,
            ring_capacity: 64, // small, so the measured bursts wrap the rings
            ..TraceConfig::default()
        },
        1,
    );
    let lane = plane.client_lane();
    let mut next_txn = 1u64;
    for _ in 0..50 {
        burst(&plane, lane, next_txn);
        next_txn += 8;
    }
    let warmed = plane.events_recorded();

    let full_delta = min_alloc_delta(5, || {
        for _ in 0..100 {
            burst(&plane, lane, next_txn);
            next_txn += 8;
        }
    });
    assert_eq!(
        full_delta, 0,
        "steady-state Full-level tracing must not touch the allocator"
    );

    // The plane did real work the whole time: every burst's events were
    // counted, and the wrapped rings still hold the most recent ones.
    assert_eq!(plane.events_recorded(), warmed + 5 * 100 * 8 * 6);
    assert!(!plane.snapshot().is_empty());
}
