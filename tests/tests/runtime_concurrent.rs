//! Integration test of the sharded execution runtime: real threads, real
//! contention, mixed protocols on shared data.
//!
//! N client threads run mixed 2PL / T/O / PA transactions against a
//! multi-shard [`runtime::Database`]. Every transaction either commits or
//! aborts cleanly (no panics, no lost locks, no stuck threads); the
//! conserved-total invariant shows committed read-modify-writes are atomic
//! and isolated; and the captured execution log is certified
//! conflict-serializable by the `sercheck` oracle — the paper's Theorem 2
//! exercised on a live multi-threaded system instead of the simulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dbmodel::{CcMethod, LogicalItemId, ReplicationPolicy};
use runtime::{CcPolicy, Database, RuntimeConfig, TxnError, TxnSpec};

const ACCOUNTS: u64 = 24;
const INITIAL: i64 = 1_000;

fn li(i: u64) -> LogicalItemId {
    LogicalItemId(i % ACCOUNTS)
}

fn config(shards: u32, policy: CcPolicy) -> RuntimeConfig {
    RuntimeConfig {
        num_shards: shards,
        num_items: ACCOUNTS,
        initial_value: INITIAL,
        replication: ReplicationPolicy::SingleCopy,
        policy,
        deadlock_scan_interval: std::time::Duration::from_millis(2),
        ..RuntimeConfig::default()
    }
}

/// The total balance, read in one big transaction.
fn audit_total(db: &Database) -> i64 {
    let spec = TxnSpec::new().reads((0..ACCOUNTS).map(LogicalItemId));
    let receipt = db
        .run_transaction(&spec, |_| vec![])
        .expect("audit commits");
    receipt.reads.values().sum()
}

#[test]
fn mixed_protocol_threads_commit_cleanly_and_serializably() {
    let db = Database::open(config(4, CcPolicy::Static(CcMethod::TwoPhaseLocking))).unwrap();
    let committed = Arc::new(AtomicU64::new(0));
    let clean_aborts = Arc::new(AtomicU64::new(0));
    let threads = 8u64;
    let txns_per_thread = 40u64;

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            let committed = Arc::clone(&committed);
            let clean_aborts = Arc::clone(&clean_aborts);
            std::thread::spawn(move || {
                for k in 0..txns_per_thread {
                    // Every thread interleaves all three protocols on the
                    // same accounts.
                    let method = CcMethod::ALL[((t + k) % 3) as usize];
                    let from = li(t * 5 + k);
                    let to = li(t * 5 + k * 7 + 1);
                    if from == to {
                        continue;
                    }
                    let amount = (1 + (t + k) % 9) as i64;
                    let spec = TxnSpec::new().write(from).write(to).method(method);
                    match db.run_transaction(&spec, |reads| {
                        vec![(from, reads[&from] - amount), (to, reads[&to] + amount)]
                    }) {
                        Ok(receipt) => {
                            assert_eq!(receipt.method, method, "method is honoured");
                            if method == CcMethod::PrecedenceAgreement {
                                assert_eq!(
                                    receipt.restarts, 0,
                                    "PA transactions never restart (Corollary 1)"
                                );
                            }
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        // A clean refusal is acceptable; anything else is a
                        // test failure (the unwrap panics the thread).
                        Err(TxnError::TooManyRestarts { .. }) => {
                            clean_aborts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected transaction error: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread panicked");
    }

    // Committed transfers conserve the total; aborted ones leave no trace.
    assert_eq!(audit_total(&db), ACCOUNTS as i64 * INITIAL);

    let stats = db.stats();
    let report = db.shutdown().expect("first shutdown wins");
    assert_eq!(
        stats.committed,
        committed.load(Ordering::Relaxed) + 1, // + the audit transaction
        "every success was a real commit"
    );
    assert_eq!(stats.failed, clean_aborts.load(Ordering::Relaxed));

    // The tap captured every implemented operation; the oracle certifies
    // the whole execution.
    let order = report
        .serializable()
        .expect("live execution must be conflict-serializable (Theorem 2)");
    assert!(order.len() as u64 >= committed.load(Ordering::Relaxed));
    assert!(report.logs.total_ops() > 0);
}

#[test]
fn replicated_catalog_write_all_stays_serializable() {
    // Two copies of every item: writes fan out to two shards, reads pick
    // one — the read-one/write-all translation under real concurrency.
    let db = Database::open(RuntimeConfig {
        replication: ReplicationPolicy::KCopies(2),
        ..config(3, CcPolicy::Static(CcMethod::PrecedenceAgreement))
    })
    .unwrap();
    let workers: Vec<_> = (0..6u64)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for k in 0..30u64 {
                    let item = li(t * 3 + k);
                    let spec = TxnSpec::new().write(item);
                    db.run_transaction(&spec, |reads| vec![(item, reads[&item] + 1)])
                        .expect("PA increments commit");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread panicked");
    }
    let total = audit_total(&db);
    assert_eq!(total, ACCOUNTS as i64 * INITIAL + 6 * 30);
    let report = db.shutdown().unwrap();
    assert_eq!(report.stats.committed, 181);
    report.serializable().expect("replicated run serializable");
}

#[test]
fn dynamic_stl_policy_serves_concurrent_load() {
    let db = Database::open(config(2, CcPolicy::DynamicStl)).unwrap();
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for k in 0..40u64 {
                    let a = li(t * 11 + k);
                    let b = li(t * 11 + k * 3 + 1);
                    let spec = TxnSpec::new().read(a).write(b);
                    db.run_transaction(&spec, move |reads| vec![(b, reads[&a] + 1)])
                        .expect("dynamic transactions commit");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread panicked");
    }
    let report = db.shutdown().unwrap();
    assert_eq!(report.stats.committed, 160);
    assert!(
        report.selection_counts.values().sum::<u64>() >= 160,
        "every unpinned transaction went through the selector"
    );
    assert!(
        report.selection_counts.len() >= 2,
        "warm-up round-robin exercises several methods: {:?}",
        report.selection_counts
    );
    report.serializable().expect("dynamic run serializable");
}
