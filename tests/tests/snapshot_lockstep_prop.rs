//! Property-based lockstep test for the MVCC snapshot-read plane (PR 10):
//! for *every* randomly drawn workload — shard count, item count, write
//! mix, chunk sizes — a snapshot read taken at the quiesced watermark is
//! byte-identical to what a coordinated read would return, after every
//! chunk, not just at the end.
//!
//! The driver applies writer chunks (puts and adds, routed through
//! whatever plane `execute` picks — fast path or coordinated) and keeps a
//! plain `BTreeMap` model in lockstep. Between chunks every item is read
//! through the snapshot plane; because the driver is quiesced at that
//! point, the watermark covers every retired stamp and the snapshot must
//! equal the model exactly. The final read repeats the comparison with a
//! pinned method (forced coordination) and the merged history must be
//! oracle-certified.

use std::collections::BTreeMap;
use std::time::Duration;

use dbmodel::{CcMethod, LogicalItemId, Value};
use proptest::prelude::*;
use runtime::{Database, RuntimeConfig, TxnSpec};

/// One writer operation: a put or an accumulated add on one item.
#[derive(Debug, Clone, Copy)]
enum WriteOp {
    Put(u64, Value),
    Add(u64, Value),
}

/// Deterministic op sequence from one drawn seed (the shim's strategies
/// cover scalars; the variable-length vector is derived in-body).
fn ops_from_seed(seed: u64, items: u64, len: usize) -> Vec<WriteOp> {
    let mut rng = TestRng::new(seed);
    (0..len)
        .map(|_| {
            let item = rng.below(items);
            match rng.below(2) {
                0 => WriteOp::Put(item, rng.below(200) as Value - 100),
                _ => WriteOp::Add(item, rng.below(20) as Value - 10),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0,
        .. ProptestConfig::default()
    })]

    #[test]
    fn snapshot_reads_track_a_quiesced_coordinated_model(
        (shards, items, chunk, len, seed) in (1u32..4, 4u64..12, 1usize..7, 1usize..80, any::<u64>())
    ) {
        let db = Database::open(RuntimeConfig {
            num_shards: shards,
            num_items: items,
            deadlock_scan_interval: Duration::from_millis(2),
            ..RuntimeConfig::default()
        })
        .unwrap();
        let mut model: BTreeMap<LogicalItemId, Value> =
            (0..items).map(|i| (LogicalItemId(i), 0)).collect();
        let all_items = TxnSpec::new().reads((0..items).map(LogicalItemId));
        for batch in ops_from_seed(seed, items, len).chunks(chunk) {
            for &op in batch {
                match op {
                    WriteOp::Put(i, v) => {
                        db.execute(&TxnSpec::new().put(LogicalItemId(i), v)).unwrap();
                        model.insert(LogicalItemId(i), v);
                    }
                    WriteOp::Add(i, d) => {
                        db.execute(&TxnSpec::new().add(LogicalItemId(i), d)).unwrap();
                        let slot = model.get_mut(&LogicalItemId(i)).unwrap();
                        *slot = slot.wrapping_add(d);
                    }
                }
            }
            // Quiesced (every execute above acknowledged, every stamp
            // retired): the snapshot watermark covers the full history and
            // the read must equal the model exactly.
            let receipt = db.execute(&all_items).unwrap();
            prop_assert!(receipt.snapshot, "a pure read must ride the snapshot plane");
            prop_assert_eq!(&receipt.reads, &model);
        }
        // The same read forced through coordination agrees with the last
        // snapshot — the two planes serve one history.
        let receipt = db
            .execute(&all_items.clone().method(CcMethod::TwoPhaseLocking))
            .unwrap();
        prop_assert!(!receipt.snapshot);
        prop_assert_eq!(&receipt.reads, &model);
        let report = db.shutdown().unwrap();
        prop_assert!(report.serializable().is_ok());
    }
}
