//! Batched-engine equivalence: `QueueManager::handle_batch` must be a pure
//! batching of the per-message `handle` loop.
//!
//! The property under test is the one the runtime's shard loop relies on:
//! for *any* mixed-protocol request stream, pushing the stream through
//! `handle_batch` in arbitrary chunk sizes with one reused [`QmSink`]
//! produces **byte-identical** output — the same replies in the same
//! order, the same events, the same item values, the same wait edges and
//! waiting sets — as handling every message individually. Batching is an
//! allocation strategy, not a semantics change.
//!
//! Streams are generated from proptest-drawn seeds: a pool of scripted
//! transactions (2PL / T/O / PA, random read-write sets over four items,
//! colliding timestamps so rejects, backoffs, revocations and queued
//! waits all occur) interleaved step by step by a seeded RNG. PA backoff
//! rounds and T/O reject-aborts are driven from the replies the reference
//! engine actually produced, so the streams exercise `UpdatedTs`
//! revocation and abort paths too.
//!
//! The companion concurrent test runs the real runtime (whose shards now
//! drive `handle_batch` for every drained batch) under mixed-method
//! clients and certifies the merged execution log through the `sercheck`
//! oracle.

use dbmodel::{
    AccessMode, CcMethod, LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId, Value,
};
use pam::{ReplyMsg, RequestMsg};
use proptest::prelude::*;
use simkit::rng::SimRng;
use unified_cc::{EnforcementMode, QmEvent, QmSink, QueueManager};

const SITE: SiteId = SiteId(0);
const ITEMS: u64 = 4;
const TXNS: u64 = 16;
const INITIAL: Value = 100;

fn pi(i: u64) -> PhysicalItemId {
    PhysicalItemId::new(LogicalItemId(i), SITE)
}

fn build_qm() -> QueueManager {
    let mut qm = QueueManager::new(SITE);
    for i in 0..ITEMS {
        qm.add_item(pi(i), INITIAL, EnforcementMode::SemiLock);
    }
    qm
}

/// One scripted transaction: the shape is fixed up front, the follow-up
/// phase (release / demote+release / abort / PA timestamp update) is
/// decided from the replies the reference engine produced.
struct Script {
    txn: TxnId,
    method: CcMethod,
    /// `(item, mode)` pairs, each accessed exactly once.
    accesses: Vec<(PhysicalItemId, AccessMode)>,
    ts: u64,
    /// T/O only: demote before releasing.
    demote: bool,
    /// Abort instead of releasing (voluntary abort path).
    abort: bool,
    /// Next access index to issue; `accesses.len()` = access phase done.
    issued: usize,
    /// Follow-up messages (filled when the access phase completes).
    followup: Vec<RequestMsg>,
    /// Next follow-up index to issue.
    followup_issued: usize,
    /// Largest PA backoff timestamp observed for this transaction.
    backoff_ts: Option<Timestamp>,
    /// A T/O reject was observed for this transaction.
    rejected: bool,
}

impl Script {
    fn done(&self) -> bool {
        self.issued == self.accesses.len()
            && !self.followup.is_empty()
            && self.followup_issued == self.followup.len()
    }

    fn write_value(&self, item: PhysicalItemId) -> Value {
        (self.txn.0 * 10 + item.logical.0) as Value
    }

    /// Build the follow-up phase once every access has been issued.
    fn plan_followup(&mut self) {
        debug_assert!(self.followup.is_empty());
        if self.rejected || self.abort {
            for &(item, _) in &self.accesses {
                self.followup.push(RequestMsg::Abort {
                    txn: self.txn,
                    item,
                });
            }
            return;
        }
        if let Some(new_ts) = self.backoff_ts {
            // The PA backoff round: broadcast the final timestamp first.
            for &(item, _) in &self.accesses {
                self.followup.push(RequestMsg::UpdatedTs {
                    txn: self.txn,
                    item,
                    new_ts,
                });
            }
        }
        if self.demote && self.method == CcMethod::TimestampOrdering {
            for &(item, mode) in &self.accesses {
                self.followup.push(RequestMsg::Demote {
                    txn: self.txn,
                    item,
                    write_value: (mode == AccessMode::Write).then(|| self.write_value(item)),
                    commit_ts: Timestamp::ZERO,
                });
            }
        }
        for &(item, mode) in &self.accesses {
            self.followup.push(RequestMsg::Release {
                txn: self.txn,
                item,
                write_value: (mode == AccessMode::Write).then(|| self.write_value(item)),
                commit_ts: Timestamp::ZERO,
            });
        }
    }

    /// The next message of this script, if any.
    fn next_msg(&mut self) -> Option<RequestMsg> {
        if self.issued < self.accesses.len() {
            let (item, mode) = self.accesses[self.issued];
            self.issued += 1;
            return Some(RequestMsg::Access {
                txn: self.txn,
                item,
                mode,
                method: self.method,
                ts: TsTuple::new(Timestamp(self.ts), 10),
            });
        }
        if self.followup.is_empty() {
            self.plan_followup();
        }
        if self.followup_issued < self.followup.len() {
            let msg = self.followup[self.followup_issued];
            self.followup_issued += 1;
            return Some(msg);
        }
        None
    }
}

fn make_scripts(rng: &mut SimRng) -> Vec<Script> {
    (1..=TXNS)
        .map(|id| {
            let method = CcMethod::ALL[rng.next_index(3)];
            let mut accesses = Vec::new();
            for i in 0..ITEMS {
                if rng.next_below(4) < 3 {
                    let mode = if rng.next_below(2) == 0 {
                        AccessMode::Read
                    } else {
                        AccessMode::Write
                    };
                    accesses.push((pi(i), mode));
                }
            }
            if accesses.is_empty() {
                accesses.push((pi(id % ITEMS), AccessMode::Write));
            }
            Script {
                txn: TxnId(id),
                method,
                accesses,
                // Deliberately colliding timestamps: rejects, backoffs and
                // queued waits are all reachable.
                ts: 1 + rng.next_below(40),
                demote: rng.next_below(2) == 0,
                abort: rng.next_below(8) == 0,
                issued: 0,
                followup: Vec::new(),
                followup_issued: 0,
                backoff_ts: None,
                rejected: false,
            }
        })
        .collect()
}

/// Build the interleaved stream, driving the reference engine per message
/// (its replies steer PA backoff rounds and T/O reject-aborts). Returns
/// the stream plus the reference replies/events.
fn reference_run(seed: u64) -> (Vec<RequestMsg>, Vec<ReplyMsg>, Vec<QmEvent>, QueueManager) {
    let mut rng = SimRng::new(seed);
    let mut scripts = make_scripts(&mut rng);
    let mut qm = build_qm();
    let mut msgs = Vec::new();
    let mut replies = Vec::new();
    let mut events = Vec::new();
    while scripts.iter().any(|s| !s.done()) {
        let pick = rng.next_index(scripts.len());
        // Round-robin from a random start so every live script advances.
        let Some((idx, msg)) = (0..scripts.len()).find_map(|off| {
            let idx = (pick + off) % scripts.len();
            scripts[idx].next_msg().map(|m| (idx, m))
        }) else {
            break;
        };
        let out = qm.handle(SITE, &msg);
        for reply in &out.replies {
            match reply {
                ReplyMsg::Backoff { txn, new_ts, .. } if *txn == scripts[idx].txn => {
                    let prev = scripts[idx].backoff_ts.unwrap_or(Timestamp::ZERO);
                    scripts[idx].backoff_ts = Some(prev.max(*new_ts));
                }
                ReplyMsg::Reject { txn, .. } if *txn == scripts[idx].txn => {
                    scripts[idx].rejected = true;
                }
                _ => {}
            }
        }
        msgs.push(msg);
        replies.extend(out.replies);
        events.extend(out.events);
    }
    (msgs, replies, events, qm)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 150,
        ..ProptestConfig::default()
    })]

    /// The lockstep property: any chunking of the stream through
    /// `handle_batch` with one reused sink is byte-identical to the
    /// per-message loop — replies, events, item values, wait edges and
    /// waiting sets all agree.
    #[test]
    fn handle_batch_is_byte_identical_to_per_message_handle(
        (seed, chunk) in (0u64..1 << 48, 1usize..=16)
    ) {
        let (msgs, replies_ref, events_ref, qm_ref) = reference_run(seed);
        prop_assert!(!msgs.is_empty());

        let mut qm = build_qm();
        let mut sink = QmSink::new();
        let mut replies = Vec::new();
        let mut events = Vec::new();
        for batch in msgs.chunks(chunk) {
            sink.clear();
            qm.handle_batch(SITE, batch.iter(), &mut sink);
            replies.extend(sink.replies.iter().cloned());
            events.extend(sink.events.iter().cloned());
        }

        prop_assert_eq!(&replies, &replies_ref, "replies diverge (seed {seed:#x}, chunk {chunk})");
        prop_assert_eq!(&events, &events_ref, "events diverge (seed {seed:#x}, chunk {chunk})");
        for i in 0..ITEMS {
            prop_assert_eq!(
                qm.value_of(pi(i)), qm_ref.value_of(pi(i)),
                "item {i} value diverges (seed {seed:#x}, chunk {chunk})"
            );
        }
        prop_assert_eq!(qm.wait_edges(), qm_ref.wait_edges());
        prop_assert_eq!(qm.waiting_txns(), qm_ref.waiting_txns());
    }

    /// Sink reuse across batches leaves no residue: running the same
    /// stream twice through the same sink (cleared between runs) yields
    /// the same output both times.
    #[test]
    fn reused_sink_carries_no_state_between_streams(seed in 0u64..1 << 48) {
        let (msgs, ..) = reference_run(seed);
        let mut sink = QmSink::new();
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut qm = build_qm();
            sink.clear();
            qm.handle_batch(SITE, msgs.iter(), &mut sink);
            runs.push((sink.replies.clone(), sink.events.clone()));
        }
        prop_assert_eq!(&runs[0], &runs[1]);
    }
}

/// The concurrent half (satellite): the runtime's shards now push every
/// drained batch through `handle_batch`; a genuinely concurrent
/// mixed-method run over wide read-modify-write transactions must stay
/// conflict-serializable under the oracle.
#[test]
fn batched_engine_concurrent_run_is_serializable() {
    use runtime::{Database, RuntimeConfig, TxnError, TxnSpec};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const DB_ITEMS: u64 = 24;
    const CLIENTS: u64 = 6;
    const TXNS_PER_CLIENT: u64 = 40;
    const WIDTH: u64 = 8;

    let db = Database::open(RuntimeConfig {
        num_shards: 4,
        num_items: DB_ITEMS,
        initial_value: INITIAL,
        deadlock_scan_interval: std::time::Duration::from_millis(2),
        ..RuntimeConfig::default()
    })
    .expect("valid config");

    let committed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let db = db.clone();
            let committed = Arc::clone(&committed);
            let mut rng = SimRng::new(0xBA7C_4ED0).fork(t);
            std::thread::spawn(move || {
                for _ in 0..TXNS_PER_CLIENT {
                    let method = CcMethod::ALL[rng.next_index(3)];
                    // A wide transaction: WIDTH distinct items,
                    // read-modify-write (the exp9 gate-cell shape).
                    let base = rng.next_below(DB_ITEMS);
                    let items: Vec<LogicalItemId> = (0..WIDTH)
                        .map(|k| LogicalItemId((base + k) % DB_ITEMS))
                        .collect();
                    let spec = TxnSpec::new().writes(items.iter().copied()).method(method);
                    match db.run_transaction(&spec, |reads| {
                        // Rotate value mass around the ring: total conserved.
                        items
                            .iter()
                            .zip(items.iter().cycle().skip(1))
                            .map(|(a, b)| (*a, reads[b]))
                            .collect()
                    }) {
                        Ok(_) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TxnError::TooManyRestarts { .. }) => {}
                        Err(other) => panic!("unexpected transaction error: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client panicked");
    }

    // Conservation audit before shutdown.
    let audit = TxnSpec::new().reads((0..DB_ITEMS).map(LogicalItemId));
    let receipt = db
        .run_transaction(&audit, |_| vec![])
        .expect("audit commits");
    assert_eq!(
        receipt.reads.values().sum::<i64>(),
        DB_ITEMS as i64 * INITIAL,
        "wide read-modify-writes conserve the total"
    );

    let report = db.shutdown().expect("first shutdown wins");
    assert!(committed.load(Ordering::Relaxed) > 0, "work actually ran");
    let order = report
        .serializable()
        .expect("batched-engine run must be conflict-serializable");
    assert!(order.len() as u64 >= committed.load(Ordering::Relaxed));
}
