//! Standalone Basic Timestamp Ordering (paper, Section 3.3).
//!
//! Every data item keeps the largest timestamp of a granted read (`R-TS`) and
//! of a granted write (`W-TS`). A read with timestamp `ts` is accepted iff
//! `ts > W-TS`; a write iff `ts > W-TS` and `ts > R-TS`. Anything else is
//! rejected and the issuing transaction restarts with a fresh (larger)
//! timestamp. Accepted operations immediately advance the thresholds, which
//! automatically yields condition E2 (the serialization order is the
//! timestamp order) while E1 is enforced by the rejections.

use std::collections::BTreeMap;

use dbmodel::{AccessMode, LogicalItemId, Timestamp, TxnId};

/// The decision for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToDecision {
    /// The operation is accepted and (conceptually) implemented.
    Accepted,
    /// The operation arrived out of timestamp order; the transaction must
    /// restart with a larger timestamp.
    Rejected,
}

#[derive(Debug, Clone, Copy, Default)]
struct ItemTs {
    r_ts: Timestamp,
    w_ts: Timestamp,
}

/// A Basic T/O scheduler over logical items.
#[derive(Debug, Clone, Default)]
pub struct BasicTimestampOrdering {
    items: BTreeMap<LogicalItemId, ItemTs>,
    accepted: u64,
    rejected: u64,
}

impl BasicTimestampOrdering {
    /// Create an empty scheduler.
    pub fn new() -> Self {
        BasicTimestampOrdering::default()
    }

    /// Submit one operation of transaction `txn` (identified only by its
    /// timestamp, as Basic T/O requires nothing else).
    pub fn submit(
        &mut self,
        _txn: TxnId,
        ts: Timestamp,
        item: LogicalItemId,
        mode: AccessMode,
    ) -> ToDecision {
        let entry = self.items.entry(item).or_default();
        let ok = match mode {
            AccessMode::Read => ts > entry.w_ts,
            AccessMode::Write => ts > entry.w_ts && ts > entry.r_ts,
        };
        if ok {
            match mode {
                AccessMode::Read => entry.r_ts = entry.r_ts.max(ts),
                AccessMode::Write => entry.w_ts = entry.w_ts.max(ts),
            }
            self.accepted += 1;
            ToDecision::Accepted
        } else {
            self.rejected += 1;
            ToDecision::Rejected
        }
    }

    /// Submit every operation of a transaction atomically: if any operation
    /// would be rejected, nothing is applied and `Rejected` is returned.
    /// This models the paper's transaction model where all requests are sent
    /// before execution and a single rejection restarts the transaction.
    pub fn submit_transaction(
        &mut self,
        txn: TxnId,
        ts: Timestamp,
        reads: &[LogicalItemId],
        writes: &[LogicalItemId],
    ) -> ToDecision {
        // Dry-run first.
        let acceptable = reads.iter().all(|&i| {
            let e = self.items.get(&i).copied().unwrap_or_default();
            ts > e.w_ts
        }) && writes.iter().all(|&i| {
            let e = self.items.get(&i).copied().unwrap_or_default();
            ts > e.w_ts && ts > e.r_ts
        });
        if !acceptable {
            self.rejected += 1;
            return ToDecision::Rejected;
        }
        for &i in reads {
            self.submit(txn, ts, i, AccessMode::Read);
        }
        for &i in writes {
            self.submit(txn, ts, i, AccessMode::Write);
        }
        ToDecision::Accepted
    }

    /// The current `R-TS` of an item.
    pub fn r_ts(&self, item: LogicalItemId) -> Timestamp {
        self.items.get(&item).copied().unwrap_or_default().r_ts
    }

    /// The current `W-TS` of an item.
    pub fn w_ts(&self, item: LogicalItemId) -> Timestamp {
        self.items.get(&item).copied().unwrap_or_default().w_ts
    }

    /// Number of accepted operations.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of rejected operations (or transactions via
    /// [`BasicTimestampOrdering::submit_transaction`]).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The observed rejection probability.
    pub fn rejection_rate(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(i: u64) -> LogicalItemId {
        LogicalItemId(i)
    }
    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn ts(v: u64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn in_order_operations_are_accepted() {
        let mut to = BasicTimestampOrdering::new();
        assert_eq!(
            to.submit(t(1), ts(1), li(1), AccessMode::Read),
            ToDecision::Accepted
        );
        assert_eq!(
            to.submit(t(2), ts(2), li(1), AccessMode::Write),
            ToDecision::Accepted
        );
        assert_eq!(
            to.submit(t(3), ts(3), li(1), AccessMode::Read),
            ToDecision::Accepted
        );
        assert_eq!(to.rejected(), 0);
        assert_eq!(to.r_ts(li(1)), ts(3));
        assert_eq!(to.w_ts(li(1)), ts(2));
    }

    #[test]
    fn late_read_is_rejected_after_newer_write() {
        let mut to = BasicTimestampOrdering::new();
        to.submit(t(2), ts(20), li(1), AccessMode::Write);
        assert_eq!(
            to.submit(t(1), ts(10), li(1), AccessMode::Read),
            ToDecision::Rejected
        );
        // A late write after a newer read is also rejected.
        to.submit(t(3), ts(30), li(2), AccessMode::Read);
        assert_eq!(
            to.submit(t(1), ts(10), li(2), AccessMode::Write),
            ToDecision::Rejected
        );
        assert_eq!(to.rejected(), 2);
        assert!(to.rejection_rate() > 0.0);
    }

    #[test]
    fn late_read_after_newer_read_is_fine() {
        let mut to = BasicTimestampOrdering::new();
        to.submit(t(2), ts(20), li(1), AccessMode::Read);
        assert_eq!(
            to.submit(t(1), ts(10), li(1), AccessMode::Read),
            ToDecision::Accepted
        );
        assert_eq!(to.r_ts(li(1)), ts(20), "R-TS keeps the max");
    }

    #[test]
    fn transaction_submission_is_all_or_nothing() {
        let mut to = BasicTimestampOrdering::new();
        to.submit(t(9), ts(50), li(2), AccessMode::Write);
        // Transaction at ts 40 reads item 1 (fine) and writes item 2 (too late):
        // nothing must be applied.
        let d = to.submit_transaction(t(1), ts(40), &[li(1)], &[li(2)]);
        assert_eq!(d, ToDecision::Rejected);
        assert_eq!(
            to.r_ts(li(1)),
            Timestamp::ZERO,
            "read not applied on rejection"
        );
        // Retried with a larger timestamp it succeeds.
        let d = to.submit_transaction(t(1), ts(60), &[li(1)], &[li(2)]);
        assert_eq!(d, ToDecision::Accepted);
        assert_eq!(to.r_ts(li(1)), ts(60));
        assert_eq!(to.w_ts(li(2)), ts(60));
    }

    #[test]
    fn equal_timestamp_is_rejected() {
        // Strict inequality: a second operation with the same timestamp on a
        // written item is out of order.
        let mut to = BasicTimestampOrdering::new();
        to.submit(t(1), ts(5), li(1), AccessMode::Write);
        assert_eq!(
            to.submit(t(2), ts(5), li(1), AccessMode::Read),
            ToDecision::Rejected
        );
    }

    #[test]
    fn rejection_rate_counts_both_paths() {
        let mut to = BasicTimestampOrdering::new();
        to.submit(t(1), ts(10), li(1), AccessMode::Write);
        to.submit(t(2), ts(5), li(1), AccessMode::Read); // rejected
        to.submit_transaction(t(3), ts(3), &[li(1)], &[]); // rejected
        to.submit_transaction(t(4), ts(30), &[li(1)], &[]); // accepted
        assert_eq!(to.accepted(), 2);
        assert_eq!(to.rejected(), 2);
        assert!((to.rejection_rate() - 0.5).abs() < 1e-9);
    }
}
