//! Standalone static two-phase locking.
//!
//! Requests are served first-come-first-served per item; a request is granted
//! when no conflicting lock is held by another transaction. Waiting requests
//! queue in arrival order. Deadlocks are detected on a wait-for graph and
//! broken by aborting the youngest transaction in the cycle.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dbmodel::{LogicalItemId, TxnId};

/// Shared (read) or exclusive (write) lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode2pl {
    /// Shared lock (multiple readers allowed).
    Shared,
    /// Exclusive lock (single writer).
    Exclusive,
}

impl LockMode2pl {
    fn conflicts_with(self, other: LockMode2pl) -> bool {
        matches!(self, LockMode2pl::Exclusive) || matches!(other, LockMode2pl::Exclusive)
    }
}

/// The outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockRequestOutcome {
    /// The lock was granted immediately.
    Granted,
    /// The request is queued behind conflicting holders/waiters.
    Waiting,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    txn: TxnId,
    mode: LockMode2pl,
}

#[derive(Debug, Clone, Default)]
struct ItemLocks {
    holders: BTreeMap<TxnId, LockMode2pl>,
    waiters: VecDeque<Waiter>,
}

impl ItemLocks {
    fn can_grant(&self, txn: TxnId, mode: LockMode2pl) -> bool {
        self.holders
            .iter()
            .all(|(&h, &m)| h == txn || !m.conflicts_with(mode))
    }
}

/// A centralised (per-site or whole-system) 2PL lock manager.
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    items: BTreeMap<LogicalItemId, ItemLocks>,
    // item sets per transaction, for release_all.
    txn_items: BTreeMap<TxnId, BTreeSet<LogicalItemId>>,
}

impl LockManager {
    /// Create an empty lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Request a lock. FCFS: if anyone is already waiting on the item, a new
    /// conflicting request waits behind them even if it is compatible with
    /// the current holders (no barging past the queue for writers; readers
    /// may join current readers only when no writer waits ahead of them).
    pub fn request(
        &mut self,
        txn: TxnId,
        item: LogicalItemId,
        mode: LockMode2pl,
    ) -> LockRequestOutcome {
        let entry = self.items.entry(item).or_default();
        // Re-entrant requests: upgrade shared -> exclusive is modelled as a
        // fresh exclusive request; same-mode repeats are no-ops.
        if let Some(&held) = entry.holders.get(&txn) {
            if held == mode || held == LockMode2pl::Exclusive {
                return LockRequestOutcome::Granted;
            }
        }
        let blocked_by_waiters = entry
            .waiters
            .iter()
            .any(|w| w.txn != txn && (w.mode.conflicts_with(mode)));
        if !blocked_by_waiters && entry.can_grant(txn, mode) {
            entry.holders.insert(txn, mode);
            self.txn_items.entry(txn).or_default().insert(item);
            LockRequestOutcome::Granted
        } else {
            entry.waiters.push_back(Waiter { txn, mode });
            self.txn_items.entry(txn).or_default().insert(item);
            LockRequestOutcome::Waiting
        }
    }

    /// Release every lock (and cancel every wait) of `txn`, returning the
    /// transactions that acquired locks as a result.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        let items = self.txn_items.remove(&txn).unwrap_or_default();
        let mut newly_granted = Vec::new();
        for item in items {
            if let Some(entry) = self.items.get_mut(&item) {
                entry.holders.remove(&txn);
                entry.waiters.retain(|w| w.txn != txn);
                newly_granted.extend(Self::promote(entry, item, &mut self.txn_items));
            }
        }
        newly_granted.sort_unstable();
        newly_granted.dedup();
        newly_granted
    }

    fn promote(
        entry: &mut ItemLocks,
        item: LogicalItemId,
        txn_items: &mut BTreeMap<TxnId, BTreeSet<LogicalItemId>>,
    ) -> Vec<TxnId> {
        let mut granted = Vec::new();
        while let Some(&front) = entry.waiters.front() {
            if entry.can_grant(front.txn, front.mode) {
                entry.waiters.pop_front();
                entry.holders.insert(front.txn, front.mode);
                txn_items.entry(front.txn).or_default().insert(item);
                granted.push(front.txn);
                // After granting an exclusive lock nothing else can follow.
                if front.mode == LockMode2pl::Exclusive {
                    break;
                }
            } else {
                break;
            }
        }
        granted
    }

    /// True if `txn` currently holds a lock on `item`.
    pub fn holds(&self, txn: TxnId, item: LogicalItemId) -> bool {
        self.items
            .get(&item)
            .is_some_and(|e| e.holders.contains_key(&txn))
    }

    /// True if `txn` is waiting for any lock.
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.items
            .values()
            .any(|e| e.waiters.iter().any(|w| w.txn == txn))
    }

    /// The wait-for edges `(waiter, holder-or-earlier-waiter)` of the current
    /// state.
    pub fn wait_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for entry in self.items.values() {
            for (i, w) in entry.waiters.iter().enumerate() {
                for (&holder, &hmode) in &entry.holders {
                    if holder != w.txn && hmode.conflicts_with(w.mode) {
                        edges.push((w.txn, holder));
                    }
                }
                for earlier in entry.waiters.iter().take(i) {
                    if earlier.txn != w.txn && earlier.mode.conflicts_with(w.mode) {
                        edges.push((w.txn, earlier.txn));
                    }
                }
            }
        }
        edges
    }

    /// Detect deadlocks and return one victim per cycle (the youngest, i.e.
    /// largest-id, transaction). The caller is responsible for calling
    /// [`LockManager::release_all`] on the victims.
    pub fn find_deadlock_victims(&self) -> Vec<TxnId> {
        // Cycle detection by DFS over the wait-for edges.
        let mut adj: BTreeMap<TxnId, BTreeSet<TxnId>> = BTreeMap::new();
        for (a, b) in self.wait_edges() {
            adj.entry(a).or_default().insert(b);
        }
        let nodes: Vec<TxnId> = adj
            .iter()
            .flat_map(|(&a, bs)| std::iter::once(a).chain(bs.iter().copied()))
            .collect();
        let mut victims = Vec::new();
        let mut processed: BTreeSet<TxnId> = BTreeSet::new();
        for &start in &nodes {
            if processed.contains(&start) {
                continue;
            }
            // DFS from start looking for a cycle containing start.
            let mut stack = vec![(
                start,
                adj.get(&start).cloned().unwrap_or_default().into_iter(),
            )];
            let mut path = vec![start];
            let mut on_path: BTreeSet<TxnId> = BTreeSet::from([start]);
            let mut visited: BTreeSet<TxnId> = BTreeSet::from([start]);
            let mut found: Option<Vec<TxnId>> = None;
            'dfs: while let Some((_, iter)) = stack.last_mut() {
                if let Some(next) = iter.next() {
                    if on_path.contains(&next) {
                        // Cycle found: slice path from next.
                        let pos = path.iter().position(|&t| t == next).unwrap();
                        found = Some(path[pos..].to_vec());
                        break 'dfs;
                    }
                    if visited.insert(next) {
                        on_path.insert(next);
                        path.push(next);
                        stack.push((
                            next,
                            adj.get(&next).cloned().unwrap_or_default().into_iter(),
                        ));
                    }
                } else {
                    let (node, _) = stack.pop().unwrap();
                    on_path.remove(&node);
                    path.pop();
                }
            }
            processed.extend(visited);
            if let Some(cycle) = found {
                if let Some(&victim) = cycle.iter().max() {
                    victims.push(victim);
                }
            }
        }
        victims.sort_unstable();
        victims.dedup();
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(i: u64) -> LogicalItemId {
        LogicalItemId(i)
    }
    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn shared_locks_coexist_exclusive_waits() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(t(1), li(1), LockMode2pl::Shared),
            LockRequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(2), li(1), LockMode2pl::Shared),
            LockRequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(3), li(1), LockMode2pl::Exclusive),
            LockRequestOutcome::Waiting
        );
        assert!(lm.holds(t(1), li(1)));
        assert!(lm.is_waiting(t(3)));
        assert!(lm.release_all(t(1)).is_empty());
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![t(3)]);
        assert!(lm.holds(t(3), li(1)));
    }

    #[test]
    fn fcfs_readers_do_not_barge_past_waiting_writer() {
        let mut lm = LockManager::new();
        lm.request(t(1), li(1), LockMode2pl::Shared);
        lm.request(t(2), li(1), LockMode2pl::Exclusive); // waits
                                                         // A later reader must queue behind the writer, not join t1.
        assert_eq!(
            lm.request(t(3), li(1), LockMode2pl::Shared),
            LockRequestOutcome::Waiting
        );
        let granted = lm.release_all(t(1));
        assert_eq!(granted, vec![t(2)]);
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![t(3)]);
    }

    #[test]
    fn reentrant_requests_are_granted() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(t(1), li(1), LockMode2pl::Exclusive),
            LockRequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(1), li(1), LockMode2pl::Shared),
            LockRequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(1), li(1), LockMode2pl::Exclusive),
            LockRequestOutcome::Granted
        );
    }

    #[test]
    fn classic_two_transaction_deadlock_is_detected() {
        let mut lm = LockManager::new();
        lm.request(t(1), li(1), LockMode2pl::Exclusive);
        lm.request(t(2), li(2), LockMode2pl::Exclusive);
        lm.request(t(1), li(2), LockMode2pl::Exclusive);
        lm.request(t(2), li(1), LockMode2pl::Exclusive);
        let victims = lm.find_deadlock_victims();
        assert_eq!(victims, vec![t(2)], "youngest transaction is the victim");
        // Breaking the deadlock lets t1 proceed.
        let granted = lm.release_all(t(2));
        assert!(granted.contains(&t(1)));
        assert!(lm.find_deadlock_victims().is_empty());
    }

    #[test]
    fn no_false_deadlocks_on_plain_contention() {
        let mut lm = LockManager::new();
        lm.request(t(1), li(1), LockMode2pl::Exclusive);
        lm.request(t(2), li(1), LockMode2pl::Exclusive);
        lm.request(t(3), li(1), LockMode2pl::Exclusive);
        assert!(lm.find_deadlock_victims().is_empty());
    }

    #[test]
    fn three_way_deadlock_resolved_by_single_victim() {
        let mut lm = LockManager::new();
        lm.request(t(1), li(1), LockMode2pl::Exclusive);
        lm.request(t(2), li(2), LockMode2pl::Exclusive);
        lm.request(t(3), li(3), LockMode2pl::Exclusive);
        lm.request(t(1), li(2), LockMode2pl::Exclusive);
        lm.request(t(2), li(3), LockMode2pl::Exclusive);
        lm.request(t(3), li(1), LockMode2pl::Exclusive);
        let victims = lm.find_deadlock_victims();
        assert_eq!(victims.len(), 1);
        lm.release_all(victims[0]);
        assert!(lm.find_deadlock_victims().is_empty());
    }

    #[test]
    fn release_of_waiting_transaction_removes_it_from_queue() {
        let mut lm = LockManager::new();
        lm.request(t(1), li(1), LockMode2pl::Exclusive);
        lm.request(t(2), li(1), LockMode2pl::Exclusive);
        lm.request(t(3), li(1), LockMode2pl::Exclusive);
        // t2 gives up while waiting.
        lm.release_all(t(2));
        let granted = lm.release_all(t(1));
        assert_eq!(granted, vec![t(3)]);
    }

    #[test]
    fn wait_edges_reflect_conflicts_only() {
        let mut lm = LockManager::new();
        lm.request(t(1), li(1), LockMode2pl::Shared);
        lm.request(t(2), li(1), LockMode2pl::Exclusive);
        lm.request(t(3), li(1), LockMode2pl::Shared);
        let edges = lm.wait_edges();
        assert!(edges.contains(&(t(2), t(1))));
        assert!(
            edges.contains(&(t(3), t(2))),
            "reader waits behind the queued writer"
        );
        assert!(
            !edges.contains(&(t(3), t(1))),
            "shared locks do not conflict"
        );
    }
}
