//! Standalone Precedence Agreement (paper, Section 3.4).
//!
//! One [`PaQueueManager`] manages a single data item's queue. Transactions
//! carry a timestamp tuple `(TS, INT)`. A request that cannot be accepted at
//! its timestamp is *backed off*: the queue proposes the smallest
//! `TS' = TS + k·INT` acceptable locally and marks the entry blocked; the
//! issuer collects proposals from every queue it touches, takes the maximum,
//! and broadcasts the final timestamp with [`PaQueueManager::update_ts`].
//! No request is ever rejected, so PA is restart-free; grants are issued in
//! timestamp order subject to the release of previously granted conflicting
//! requests, so it is also deadlock-free (Corollary 1).

use std::collections::BTreeMap;

use dbmodel::{AccessMode, CcMethod, LogicalItemId, SiteId, Timestamp, TsTuple, TxnId};
use pam::precedence::Precedence;
use pam::queue::{DataQueue, EntryStatus, QueueEntry};

/// The immediate decision for one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaDecision {
    /// The request is accepted at its own timestamp.
    Accepted,
    /// The request must back off; the payload is this queue's proposed
    /// timestamp `TS'`.
    BackedOff(Timestamp),
}

/// The Precedence Agreement queue manager for a single data item.
#[derive(Debug, Clone)]
pub struct PaQueueManager {
    item: LogicalItemId,
    queue: DataQueue,
    r_ts: Timestamp,
    w_ts: Timestamp,
    /// Granted but not yet released requests.
    outstanding: BTreeMap<TxnId, AccessMode>,
    backoffs: u64,
}

impl PaQueueManager {
    /// Create the queue manager for one item.
    pub fn new(item: LogicalItemId) -> Self {
        PaQueueManager {
            item,
            queue: DataQueue::new(),
            r_ts: Timestamp::ZERO,
            w_ts: Timestamp::ZERO,
            outstanding: BTreeMap::new(),
            backoffs: 0,
        }
    }

    /// The item this queue serves.
    pub fn item(&self) -> LogicalItemId {
        self.item
    }

    /// Number of backoff proposals issued so far.
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// Current `R-TS` / `W-TS` thresholds.
    pub fn thresholds(&self) -> (Timestamp, Timestamp) {
        (self.r_ts, self.w_ts)
    }

    /// Submit a request.
    pub fn submit(
        &mut self,
        txn: TxnId,
        site: SiteId,
        ts: TsTuple,
        mode: AccessMode,
    ) -> PaDecision {
        let acceptable = match mode {
            AccessMode::Read => ts.ts > self.w_ts,
            AccessMode::Write => ts.ts > self.w_ts && ts.ts > self.r_ts,
        };
        if acceptable {
            self.queue.insert(QueueEntry {
                txn,
                mode,
                method: CcMethod::PrecedenceAgreement,
                precedence: Precedence::timestamped(ts.ts, site, txn),
                status: EntryStatus::Accepted,
                granted: false,
            });
            PaDecision::Accepted
        } else {
            let floor = match mode {
                AccessMode::Read => self.w_ts,
                AccessMode::Write => self.w_ts.max(self.r_ts),
            };
            let proposal = ts.ts.min_backoff_above(ts.interval, floor);
            self.queue.insert(QueueEntry {
                txn,
                mode,
                method: CcMethod::PrecedenceAgreement,
                precedence: Precedence::timestamped(proposal, site, txn),
                status: EntryStatus::Blocked,
                granted: false,
            });
            self.backoffs += 1;
            PaDecision::BackedOff(proposal)
        }
    }

    /// Deliver the issuer's final timestamp for a previously blocked (or
    /// accepted) request.
    pub fn update_ts(&mut self, txn: TxnId, site: SiteId, new_ts: Timestamp) {
        self.queue
            .reprioritise(txn, Precedence::timestamped(new_ts, site, txn));
    }

    /// Grant every request that is currently allowed to proceed, in
    /// timestamp order, and return the granted transactions.
    ///
    /// The rules are the paper's step (e): a read at the head is granted when
    /// every previously granted *write* has been released; a write at the
    /// head is granted when every previously granted request has been
    /// released.
    pub fn poll_grants(&mut self) -> Vec<TxnId> {
        let mut granted = Vec::new();
        while let Some(head) = self.queue.head() {
            if head.status == EntryStatus::Blocked {
                break;
            }
            let txn = head.txn;
            let mode = head.mode;
            let ts = head.precedence.ts;
            let allowed = match mode {
                AccessMode::Read => self
                    .outstanding
                    .iter()
                    .all(|(&other, &m)| other == txn || m != AccessMode::Write),
                AccessMode::Write => self.outstanding.keys().all(|&other| other == txn),
            };
            if !allowed {
                break;
            }
            self.queue.mark_granted(txn);
            self.outstanding.insert(txn, mode);
            match mode {
                AccessMode::Read => self.r_ts = self.r_ts.max(ts),
                AccessMode::Write => self.w_ts = self.w_ts.max(ts),
            }
            granted.push(txn);
        }
        granted
    }

    /// Release the lock held by `txn` (after execution).
    pub fn release(&mut self, txn: TxnId) {
        self.outstanding.remove(&txn);
        self.queue.remove(txn);
    }

    /// Number of requests still queued (granted or waiting).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li() -> LogicalItemId {
        LogicalItemId(1)
    }
    fn t(i: u64) -> TxnId {
        TxnId(i)
    }
    fn tup(ts: u64, int: u64) -> TsTuple {
        TsTuple::new(Timestamp(ts), int)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }

    #[test]
    fn in_order_requests_are_accepted_and_granted_fifo() {
        let mut q = PaQueueManager::new(li());
        assert_eq!(
            q.submit(t(1), s(0), tup(10, 5), AccessMode::Write),
            PaDecision::Accepted
        );
        assert_eq!(
            q.submit(t(2), s(1), tup(20, 5), AccessMode::Write),
            PaDecision::Accepted
        );
        assert_eq!(q.poll_grants(), vec![t(1)]);
        assert!(
            q.poll_grants().is_empty(),
            "second writer waits for the release"
        );
        q.release(t(1));
        assert_eq!(q.poll_grants(), vec![t(2)]);
    }

    #[test]
    fn out_of_order_request_backs_off_not_rejects() {
        let mut q = PaQueueManager::new(li());
        q.submit(t(1), s(0), tup(50, 5), AccessMode::Write);
        q.poll_grants();
        q.release(t(1));
        // ts 30, INT 8: smallest 30+8k above 50 is 54.
        match q.submit(t(2), s(1), tup(30, 8), AccessMode::Read) {
            PaDecision::BackedOff(ts) => assert_eq!(ts, Timestamp(54)),
            other => panic!("expected backoff, got {other:?}"),
        }
        assert_eq!(q.backoffs(), 1);
        // Blocked entries are not granted until the final timestamp arrives.
        assert!(q.poll_grants().is_empty());
        q.update_ts(t(2), s(1), Timestamp(60));
        assert_eq!(q.poll_grants(), vec![t(2)]);
    }

    #[test]
    fn readers_share_but_wait_for_writers() {
        let mut q = PaQueueManager::new(li());
        q.submit(t(1), s(0), tup(10, 5), AccessMode::Read);
        q.submit(t(2), s(1), tup(20, 5), AccessMode::Read);
        assert_eq!(q.poll_grants(), vec![t(1), t(2)]);
        q.submit(t(3), s(2), tup(30, 5), AccessMode::Write);
        assert!(q.poll_grants().is_empty());
        q.release(t(1));
        assert!(q.poll_grants().is_empty());
        q.release(t(2));
        assert_eq!(q.poll_grants(), vec![t(3)]);
    }

    #[test]
    fn write_threshold_includes_reads() {
        let mut q = PaQueueManager::new(li());
        q.submit(t(1), s(0), tup(40, 5), AccessMode::Read);
        q.poll_grants();
        q.release(t(1));
        // A write at ts 35 conflicts with R-TS = 40 and must back off above 40.
        match q.submit(t(2), s(1), tup(35, 10), AccessMode::Write) {
            PaDecision::BackedOff(ts) => assert_eq!(ts, Timestamp(45)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_queue_negotiation_uses_max_proposal() {
        // Two queues; the issuer collects both proposals and broadcasts the max.
        let mut qa = PaQueueManager::new(LogicalItemId(1));
        let mut qb = PaQueueManager::new(LogicalItemId(2));
        // Seed thresholds.
        qa.submit(t(1), s(0), tup(100, 1), AccessMode::Write);
        qa.poll_grants();
        qa.release(t(1));
        qb.submit(t(2), s(0), tup(200, 1), AccessMode::Write);
        qb.poll_grants();
        qb.release(t(2));
        // Transaction 3 at ts 50 accesses both.
        let pa = qa.submit(t(3), s(1), tup(50, 7), AccessMode::Write);
        let pb = qb.submit(t(3), s(1), tup(50, 7), AccessMode::Write);
        let (PaDecision::BackedOff(a), PaDecision::BackedOff(b)) = (pa, pb) else {
            panic!("both queues must back the request off");
        };
        let final_ts = a.max(b);
        assert!(final_ts > Timestamp(200));
        qa.update_ts(t(3), s(1), final_ts);
        qb.update_ts(t(3), s(1), final_ts);
        assert_eq!(qa.poll_grants(), vec![t(3)]);
        assert_eq!(qb.poll_grants(), vec![t(3)]);
        // PA never restarts: the transaction proceeded despite arriving late.
    }

    #[test]
    fn thresholds_track_grants() {
        let mut q = PaQueueManager::new(li());
        q.submit(t(1), s(0), tup(10, 1), AccessMode::Read);
        q.submit(t(2), s(1), tup(20, 1), AccessMode::Write);
        q.poll_grants(); // grants the read only
        assert_eq!(q.thresholds(), (Timestamp(10), Timestamp::ZERO));
        q.release(t(1));
        q.poll_grants();
        assert_eq!(q.thresholds(), (Timestamp(10), Timestamp(20)));
        assert_eq!(q.queue_len(), 1);
    }
}
