//! # protocols — standalone reference implementations of the three
//! candidate concurrency-control algorithms
//!
//! The unified system in `unified-cc` runs 2PL, T/O and PA side by side.
//! This crate provides each algorithm *on its own*, in the form the paper's
//! Section 3 describes them, as small synchronous engines:
//!
//! * [`lock2pl`] — static two-phase locking: FCFS queues, shared/exclusive
//!   locks, a wait-for graph and deadlock detection with youngest-victim
//!   abort;
//! * [`basic_to`] — Basic Timestamp Ordering: per-item read/write timestamps
//!   and reject-on-out-of-order arrival;
//! * [`pa`] — the Precedence Agreement queue manager of Section 3.4, with
//!   timestamp backoff instead of rejection.
//!
//! They serve three purposes: (1) they are the baselines the paper's
//! evaluation compares against, (2) they cross-validate the unified engine —
//! running the unified system with a single-method workload must produce the
//! same accept/reject/backoff decisions these engines produce, and (3) they
//! are directly embeddable lock managers for applications that want exactly
//! one protocol (see the `examples` package).

pub mod basic_to;
pub mod lock2pl;
pub mod pa;

pub use basic_to::{BasicTimestampOrdering, ToDecision};
pub use lock2pl::{LockManager, LockMode2pl, LockRequestOutcome};
pub use pa::{PaDecision, PaQueueManager};
