//! Online statistics accumulators for simulation metrics.
//!
//! Three small building blocks:
//!
//! * [`Counter`] — a monotone event counter.
//! * [`RunningStat`] — Welford-style online mean / variance / min / max.
//! * [`Histogram`] — fixed-bucket histogram with configurable bucket width,
//!   used for latency (system-time) distributions and percentile reporting.

/// A monotone counter of events.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy)]
pub struct RunningStat {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStat {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStat {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        RunningStat {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if nothing has been recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width-bucket histogram over non-negative observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    stat: RunningStat,
}

impl Histogram {
    /// Create a histogram with `buckets` buckets of width `bucket_width`;
    /// observations beyond the last bucket are pooled in an overflow bucket.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            stat: RunningStat::new(),
        }
    }

    /// Record one observation (negative values are clamped to zero).
    pub fn record(&mut self, x: f64) {
        let x = x.max(0.0);
        self.stat.record(x);
        let idx = (x / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.stat.count()
    }

    /// Mean of all observations.
    pub fn mean(&self) -> f64 {
        self.stat.mean()
    }

    /// Approximate quantile (`q` in `[0, 1]`), computed from bucket midpoints.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as f64 + 0.5) * self.bucket_width;
            }
        }
        // Target falls in the overflow bucket; report the max observed value.
        self.stat.max()
    }

    /// Count of observations beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merge another histogram into this one. Panics unless both were
    /// built with the same bucket width and bucket count (merging
    /// differently shaped histograms would silently mis-bucket).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "histogram merge requires identical bucket widths"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram merge requires identical bucket counts"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.stat.merge(&other.stat);
    }

    /// Access the underlying running statistics.
    pub fn stat(&self) -> &RunningStat {
        &self.stat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.incr();
        c.add(5);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn running_stat_mean_and_variance() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 4.0 * 8 / 7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn running_stat_empty_is_zero() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn running_stat_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut all = RunningStat::new();
        for &x in &data {
            all.record(x);
        }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStat::new();
        a.record(1.0);
        a.record(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningStat::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = RunningStat::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 10.0); // 0.0 .. 99.9
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!((p50 - 50.0).abs() < 2.0, "p50 = {p50}");
        assert!((p99 - 99.0).abs() < 2.0, "p99 = {p99}");
    }

    #[test]
    fn histogram_overflow_and_negative_clamp() {
        let mut h = Histogram::new(1.0, 10);
        h.record(-5.0);
        h.record(3.0);
        h.record(100.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), 0.5); // first non-empty bucket midpoint
        assert_eq!(h.quantile(1.0), 100.0); // overflow reports observed max
    }

    #[test]
    fn histogram_merge_matches_sequential_recording() {
        let mut all = Histogram::new(1.0, 50);
        let mut a = Histogram::new(1.0, 50);
        let mut b = Histogram::new(1.0, 50);
        for i in 0..300 {
            let x = (i as f64 * 0.7) % 60.0; // exercises the overflow bucket
            all.record(x);
            if i % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.overflow(), all.overflow());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Histogram::new(2.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }
}
