//! # simkit — a small deterministic discrete-event simulation engine
//!
//! This crate provides the simulation substrate used by the unified
//! concurrency-control reproduction:
//!
//! * a virtual [`time::SimTime`] clock measured in microseconds,
//! * a deterministic [`event::EventQueue`] with stable tie-breaking,
//! * seeded random-number helpers and inverse-CDF samplers for the
//!   distributions the workload generator needs ([`dist`]),
//! * small online statistics accumulators ([`stats`]).
//!
//! The engine is intentionally single-threaded and fully deterministic:
//! given the same seed and configuration, every experiment in the paper
//! reproduction replays the exact same schedule, which is what makes the
//! serializability oracle and the property-based tests meaningful.
//!
//! ```
//! use simkit::event::{EventQueue, Scheduled};
//! use simkit::time::SimTime;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_micros(20), "second");
//! q.schedule(SimTime::from_micros(10), "first");
//! let Scheduled { at, payload } = q.pop().unwrap();
//! assert_eq!(at, SimTime::from_micros(10));
//! assert_eq!(payload, "first");
//! ```

pub mod dist;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Distribution, Exponential, Fixed, Uniform, Zipfian};
pub use event::{EventQueue, Scheduled};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, RunningStat};
pub use time::{Duration, SimTime};
