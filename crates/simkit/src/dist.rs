//! Sampling distributions used by the workload generator and network model.
//!
//! Only the distributions the paper's evaluation axes require are provided:
//! exponential inter-arrival times (Poisson arrival process), uniform and
//! Zipfian data-item selection (hot-spot workloads), and fixed values for
//! deterministic delays. Everything is implemented via inverse-CDF /
//! rejection sampling on top of [`SimRng`](crate::rng::SimRng) so the crate
//! does not depend on any external distribution library.

use crate::rng::SimRng;

/// A sampling distribution over `f64`.
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution mean, used by analytic components (e.g. the STL
    /// estimator) that need expected values rather than samples.
    fn mean(&self) -> f64;
}

/// A degenerate distribution that always returns the same value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fixed(pub f64);

impl Distribution for Fixed {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// A continuous uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Create a uniform distribution. Panics if `high < low` or either bound
    /// is not finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite(),
            "uniform bounds must be finite"
        );
        assert!(high >= low, "uniform requires high >= low");
        Uniform { low, high }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.low + (self.high - self.low) * rng.next_f64()
    }
    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }
}

/// An exponential distribution with the given rate (events per unit time).
///
/// Sampling inter-arrival gaps from `Exponential::with_rate(lambda)` produces
/// a Poisson arrival process of rate `lambda`, which is the open-workload
/// arrival model the paper's Section 5 sweeps over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential distribution from its rate parameter λ > 0.
    pub fn with_rate(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive"
        );
        Exponential { rate }
    }

    /// Create an exponential distribution from its mean (1/λ).
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        Exponential { rate: 1.0 / mean }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0).
        let u = 1.0 - rng.next_f64();
        -u.ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// A Zipfian distribution over the integers `0..n`, returned as `f64`
/// item indices. Used for skewed (hot-spot) data-access workloads.
///
/// `theta = 0` degenerates to uniform; larger `theta` is more skewed.
/// Sampling uses the precomputed-CDF inverse-transform method, which is exact
/// and fast for the catalogue sizes used in the experiments (≤ ~100k items).
#[derive(Debug, Clone)]
pub struct Zipfian {
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Create a Zipfian distribution over `0..n` with skew parameter `theta >= 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty support");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "zipfian skew must be >= 0"
        );
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift on the last bucket.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipfian { cdf: weights }
    }

    /// Draw an item index in `[0, n)`.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

impl Distribution for Zipfian {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_index(rng) as f64
    }
    fn mean(&self) -> f64 {
        // E[X] under the CDF representation: sum over k of (1 - F(k)).
        let n = self.cdf.len();
        let mut mean = 0.0;
        for k in 0..n {
            let p_k = if k == 0 {
                self.cdf[0]
            } else {
                self.cdf[k] - self.cdf[k - 1]
            };
            mean += k as f64 * p_k;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean<D: Distribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn fixed_always_returns_value() {
        let d = Fixed(3.25);
        let mut rng = SimRng::new(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.25);
        }
        assert_eq!(d.mean(), 3.25);
    }

    #[test]
    fn uniform_samples_within_bounds_and_mean_matches() {
        let d = Uniform::new(2.0, 6.0);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&v));
        }
        assert!((sample_mean(&d, 100_000, 2) - 4.0).abs() < 0.05);
        assert_eq!(d.mean(), 4.0);
    }

    #[test]
    #[should_panic(expected = "high >= low")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(5.0, 1.0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let d = Exponential::with_rate(0.5);
        assert_eq!(d.mean(), 2.0);
        let m = sample_mean(&d, 200_000, 3);
        assert!((m - 2.0).abs() < 0.05, "sample mean {m}");
        let d2 = Exponential::with_mean(4.0);
        assert!((sample_mean(&d2, 200_000, 4) - 4.0).abs() < 0.1);
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::with_rate(3.0);
        let mut rng = SimRng::new(6);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::with_rate(0.0);
    }

    #[test]
    fn zipfian_theta_zero_is_uniformish() {
        let d = Zipfian::new(10, 0.0);
        let mut rng = SimRng::new(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[d.sample_index(&mut rng)] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / 100_000.0;
            assert!((freq - 0.1).abs() < 0.01, "freq {freq}");
        }
    }

    #[test]
    fn zipfian_skew_prefers_small_indices() {
        let d = Zipfian::new(100, 1.0);
        let mut rng = SimRng::new(8);
        let mut count0 = 0;
        let mut count99 = 0;
        for _ in 0..100_000 {
            match d.sample_index(&mut rng) {
                0 => count0 += 1,
                99 => count99 += 1,
                _ => {}
            }
        }
        assert!(count0 > 10 * count99.max(1), "0: {count0}, 99: {count99}");
    }

    #[test]
    fn zipfian_indices_in_range() {
        let d = Zipfian::new(17, 0.8);
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            assert!(d.sample_index(&mut rng) < 17);
        }
    }

    #[test]
    fn zipfian_mean_is_consistent_with_samples() {
        let d = Zipfian::new(50, 0.9);
        let analytic = d.mean();
        let empirical = sample_mean(&d, 200_000, 10);
        assert!(
            (analytic - empirical).abs() < 0.5,
            "{analytic} vs {empirical}"
        );
    }
}
