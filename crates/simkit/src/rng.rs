//! Seedable random number generation for the simulator.
//!
//! [`SimRng`] wraps a small, fast, seedable generator (xoshiro256**-style,
//! implemented locally so the simulation does not depend on the exact stream
//! of any external crate version) and exposes exactly the primitives the
//! workload generator and distributions need. Splitting off independent
//! sub-streams with [`SimRng::fork`] keeps components (arrival process,
//! transaction shape, network delays) decoupled: adding a draw in one
//! component does not perturb the randomness seen by the others.

/// A deterministic, seedable pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent generator for a named sub-component.
    ///
    /// The derived stream depends on both this generator's seed material and
    /// the `stream` label, so distinct components get uncorrelated streams
    /// that are stable across runs.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xA24BAED4963EE407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire-style rejection-free-enough approach with widening multiply;
        // bias is negligible for the bounds used here but we reject to be exact.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform usize in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Choose `k` distinct indices uniformly at random from `[0, n)`.
    ///
    /// Uses a partial Fisher-Yates shuffle; `k` is clamped to `n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Shuffle a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        for i in (1..n).rev() {
            let j = self.next_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn forked_streams_are_stable_and_distinct() {
        let root = SimRng::new(7);
        let mut x1 = root.fork(1);
        let mut x2 = root.fork(1);
        let mut y = root.fork(2);
        assert_eq!(x1.next_u64(), x2.next_u64());
        assert_ne!(x1.next_u64(), y.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_distinct_yields_unique_indices() {
        let mut r = SimRng::new(5);
        for _ in 0..100 {
            let sample = r.sample_distinct(20, 8);
            assert_eq!(sample.len(), 8);
            let mut sorted = sample.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8);
            assert!(sorted.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_distinct_clamps_to_population() {
        let mut r = SimRng::new(5);
        let sample = r.sample_distinct(3, 10);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn bernoulli_frequency_tracks_probability() {
        let mut r = SimRng::new(9);
        let hits = (0..100_000).filter(|_| r.next_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
