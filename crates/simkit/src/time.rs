//! Simulated time.
//!
//! All protocol and simulator code measures time in virtual microseconds.
//! [`SimTime`] is a point on the simulation timeline, [`Duration`] is the
//! distance between two points. Both are thin wrappers over `u64` so that
//! they are `Copy`, totally ordered, hashable, and cheap to store in event
//! queue entries and metrics.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct a time point from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct a time point from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct a time point from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Construct a duration from fractional seconds, rounding to the nearest
    /// microsecond and saturating on overflow / negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        let us = (secs * 1e6).round();
        if us >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(us as u64)
        }
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_micros(2_000_000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3_000));
        assert_eq!(Duration::from_secs(2), Duration::from_micros(2_000_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::from_micros(100);
        let d = Duration::from_micros(40);
        assert_eq!(a + d, SimTime::from_micros(140));
        assert_eq!((a + d) - a, d);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        assert_eq!(a - b, Duration::ZERO);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_micros(10));
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_micros(500_000));
        assert_eq!(Duration::from_secs_f64(1e300), Duration::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
        assert_eq!(format!("{:?}", Duration::from_micros(5)), "5us");
    }

    #[test]
    fn saturating_mul_caps_at_max() {
        let d = Duration::from_micros(u64::MAX / 2 + 1);
        assert_eq!(d.saturating_mul(3), Duration::MAX);
        assert_eq!(
            Duration::from_micros(7).saturating_mul(3),
            Duration::from_micros(21)
        );
    }
}
