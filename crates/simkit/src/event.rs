//! Deterministic event queue.
//!
//! The queue orders scheduled entries by `(time, sequence-number)` where the
//! sequence number is assigned in insertion order. Two events scheduled for
//! the same instant therefore always pop in the order they were scheduled,
//! independent of the payload type, which keeps whole-simulation replays
//! bit-for-bit deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event that has been scheduled on an [`EventQueue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The instant at which the event fires.
    pub at: SimTime,
    /// The caller-supplied payload.
    pub payload: E,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the most recently popped
    /// event (or zero if nothing has been popped yet).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling an event in the past is clamped to the current clock so the
    /// simulation time never runs backwards.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest pending event, advancing the clock to
    /// its timestamp.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        Some(Scheduled {
            at: entry.at,
            payload: entry.payload,
        })
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove every pending event, leaving the clock unchanged.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_and_never_regresses() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(50), "a");
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(50));
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_micros(10), "late");
        let s = q.pop().unwrap();
        assert_eq!(s.at, SimTime::from_micros(50));
        assert_eq!(q.now(), SimTime::from_micros(50));
    }

    #[test]
    fn peek_and_len_reflect_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(7), ());
        q.schedule(SimTime::from_micros(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1u32);
        let first = q.pop().unwrap();
        assert_eq!(first.payload, 1);
        q.schedule(first.at + Duration::from_micros(5), 2u32);
        q.schedule(first.at + Duration::from_micros(1), 3u32);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert!(q.pop().is_none());
    }
}
