//! Per-physical-item implementation logs.
//!
//! The paper models an execution as "a set of logs. There is one log
//! associated with each physical data item. The log indicates the order in
//! which physical operations are implemented on that data item." (Section 2.)
//!
//! Queue managers append to an [`ItemLog`] whenever an operation is
//! *implemented* (in the unified scheme: a 2PL/PA lock released, or a T/O
//! lock turned into a semi-lock or released). The [`LogSet`] collects the
//! logs of all items and is the input to the serializability oracle in the
//! `sercheck` crate.

use std::collections::BTreeMap;

use crate::ids::{PhysicalItemId, Timestamp, TxnId};
use crate::op::AccessMode;

/// One implemented physical operation, as recorded in an item's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplementedOp {
    /// The transaction whose operation was implemented.
    pub txn: TxnId,
    /// Read or write.
    pub mode: AccessMode,
    /// Position in the item's log (0 = first implemented).
    pub seq: u64,
    /// For writes: the global commit timestamp the write was stamped with
    /// (`None` on the unstamped simulator path). For snapshot reads: the
    /// commit timestamp of the version the read actually served.
    pub commit_ts: Option<Timestamp>,
    /// True when the entry was recorded by the MVCC snapshot-read plane.
    /// Snapshot entries are ordered against writers by `commit_ts`, not by
    /// log position (they never enter a queue, so their position in the
    /// log says nothing about the serialization order).
    pub snapshot: bool,
}

/// The implementation log of one physical data item.
#[derive(Debug, Clone, Default)]
pub struct ItemLog {
    entries: Vec<ImplementedOp>,
}

impl ItemLog {
    /// Create an empty log.
    pub fn new() -> Self {
        ItemLog::default()
    }

    /// Append an implemented operation and return its sequence number.
    pub fn append(&mut self, txn: TxnId, mode: AccessMode) -> u64 {
        self.append_full(txn, mode, None, false)
    }

    /// Append an implemented operation carrying its commit-timestamp
    /// stamp and snapshot-plane flag (see [`ImplementedOp`]).
    pub fn append_full(
        &mut self,
        txn: TxnId,
        mode: AccessMode,
        commit_ts: Option<Timestamp>,
        snapshot: bool,
    ) -> u64 {
        let seq = self.entries.len() as u64;
        self.entries.push(ImplementedOp {
            txn,
            mode,
            seq,
            commit_ts,
            snapshot,
        });
        seq
    }

    /// All entries in implementation order.
    pub fn entries(&self) -> &[ImplementedOp] {
        &self.entries
    }

    /// Number of implemented operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been implemented on this item.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pairs `(earlier, later)` of *conflicting* operations in this log, in
    /// implementation order. These are exactly the edges contributed by this
    /// item to the conflict (serialization) graph. Snapshot-plane entries
    /// are excluded: their log position carries no ordering information —
    /// the oracle orders them against writers by `commit_ts` instead.
    pub fn conflict_pairs(&self) -> Vec<(ImplementedOp, ImplementedOp)> {
        let mut pairs = Vec::new();
        for i in 0..self.entries.len() {
            for j in (i + 1)..self.entries.len() {
                let a = self.entries[i];
                let b = self.entries[j];
                if a.snapshot || b.snapshot {
                    continue;
                }
                if a.txn != b.txn && a.mode.conflicts_with(b.mode) {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Remove every entry belonging to `txn`. Used when an aborted
    /// transaction's partial effects must be expunged before restart.
    pub fn purge_txn(&mut self, txn: TxnId) {
        self.entries.retain(|e| e.txn != txn);
        for (i, e) in self.entries.iter_mut().enumerate() {
            e.seq = i as u64;
        }
    }
}

/// The set of implementation logs of all physical items in the system.
#[derive(Debug, Clone, Default)]
pub struct LogSet {
    logs: BTreeMap<PhysicalItemId, ItemLog>,
}

impl LogSet {
    /// Create an empty log set.
    pub fn new() -> Self {
        LogSet::default()
    }

    /// Record that `txn` implemented an operation with the given mode on
    /// `item`.
    pub fn record(&mut self, item: PhysicalItemId, txn: TxnId, mode: AccessMode) -> u64 {
        self.logs.entry(item).or_default().append(txn, mode)
    }

    /// Record an implemented operation carrying its commit-timestamp stamp
    /// and snapshot-plane flag (see [`ImplementedOp`]).
    pub fn record_full(
        &mut self,
        item: PhysicalItemId,
        txn: TxnId,
        mode: AccessMode,
        commit_ts: Option<Timestamp>,
        snapshot: bool,
    ) -> u64 {
        self.logs
            .entry(item)
            .or_default()
            .append_full(txn, mode, commit_ts, snapshot)
    }

    /// The log of one item, if any operation has been implemented on it.
    pub fn log(&self, item: PhysicalItemId) -> Option<&ItemLog> {
        self.logs.get(&item)
    }

    /// Iterate over `(item, log)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PhysicalItemId, &ItemLog)> + '_ {
        self.logs.iter().map(|(&k, v)| (k, v))
    }

    /// Total number of implemented operations across all items.
    pub fn total_ops(&self) -> usize {
        self.logs.values().map(|l| l.len()).sum()
    }

    /// Distinct transactions appearing anywhere in the logs.
    pub fn transactions(&self) -> Vec<TxnId> {
        let mut txns: Vec<TxnId> = self
            .logs
            .values()
            .flat_map(|l| l.entries().iter().map(|e| e.txn))
            .collect();
        txns.sort_unstable();
        txns.dedup();
        txns
    }

    /// Remove every entry of `txn` from every log.
    pub fn purge_txn(&mut self, txn: TxnId) {
        for log in self.logs.values_mut() {
            log.purge_txn(txn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LogicalItemId, SiteId};

    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    #[test]
    fn append_assigns_increasing_seq() {
        let mut log = ItemLog::new();
        assert_eq!(log.append(TxnId(1), AccessMode::Read), 0);
        assert_eq!(log.append(TxnId(2), AccessMode::Write), 1);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn conflict_pairs_only_cross_txn_with_a_write() {
        let mut log = ItemLog::new();
        log.append(TxnId(1), AccessMode::Read); // seq 0
        log.append(TxnId(2), AccessMode::Read); // seq 1 — no conflict with 0
        log.append(TxnId(3), AccessMode::Write); // seq 2 — conflicts with 0 and 1
        log.append(TxnId(3), AccessMode::Read); // seq 3 — same txn as 2, conflicts with nothing new from 3's view
        let pairs = log.conflict_pairs();
        let as_txns: Vec<(u64, u64)> = pairs.iter().map(|(a, b)| (a.txn.0, b.txn.0)).collect();
        // Only r1(t1)→w(t3) and r(t2)→w(t3) conflict; read/read pairs and
        // same-transaction pairs contribute nothing.
        assert_eq!(as_txns, vec![(1, 3), (2, 3)]);
    }

    #[test]
    fn snapshot_entries_are_excluded_from_position_conflicts() {
        use crate::ids::Timestamp;
        let mut log = ItemLog::new();
        log.append_full(TxnId(1), AccessMode::Write, Some(Timestamp(3)), false);
        log.append_full(TxnId(2), AccessMode::Read, Some(Timestamp(3)), true);
        log.append(TxnId(3), AccessMode::Write);
        let as_txns: Vec<(u64, u64)> = log
            .conflict_pairs()
            .iter()
            .map(|(a, b)| (a.txn.0, b.txn.0))
            .collect();
        // The snapshot read's position contributes nothing; only the two
        // position-ordered writers conflict.
        assert_eq!(as_txns, vec![(1, 3)]);
        assert!(log.entries()[1].snapshot);
        assert_eq!(log.entries()[1].commit_ts, Some(Timestamp(3)));
        assert_eq!(log.entries()[2].commit_ts, None);
    }

    #[test]
    fn purge_txn_removes_and_reseqs() {
        let mut log = ItemLog::new();
        log.append(TxnId(1), AccessMode::Write);
        log.append(TxnId(2), AccessMode::Write);
        log.append(TxnId(1), AccessMode::Read);
        log.purge_txn(TxnId(1));
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].txn, TxnId(2));
        assert_eq!(log.entries()[0].seq, 0);
    }

    #[test]
    fn logset_records_and_lists_transactions() {
        let mut set = LogSet::new();
        set.record(pi(1, 0), TxnId(5), AccessMode::Write);
        set.record(pi(1, 0), TxnId(3), AccessMode::Read);
        set.record(pi(2, 1), TxnId(5), AccessMode::Read);
        assert_eq!(set.total_ops(), 3);
        assert_eq!(set.transactions(), vec![TxnId(3), TxnId(5)]);
        assert_eq!(set.log(pi(1, 0)).unwrap().len(), 2);
        assert!(set.log(pi(9, 9)).is_none());
    }

    #[test]
    fn logset_purge_spans_items() {
        let mut set = LogSet::new();
        set.record(pi(1, 0), TxnId(5), AccessMode::Write);
        set.record(pi(2, 0), TxnId(5), AccessMode::Write);
        set.record(pi(2, 0), TxnId(6), AccessMode::Write);
        set.purge_txn(TxnId(5));
        assert_eq!(set.total_ops(), 1);
        assert_eq!(set.transactions(), vec![TxnId(6)]);
    }
}
