//! # dbmodel — the distributed database model from the paper's Section 2
//!
//! This crate defines the data model every other crate builds on:
//!
//! * identifier newtypes for sites, transactions, logical and physical data
//!   items ([`ids`]),
//! * logical/physical read-write operations and conflict predicates ([`op`]),
//! * the three-phase transaction model (read phase, local computing phase,
//!   write phase) and per-transaction concurrency-control choice ([`txn`]),
//! * the replication catalog mapping logical items to their physical copies
//!   across sites ([`catalog`]),
//! * a per-site in-memory store of physical data items ([`store`]), and
//! * per-physical-item implementation logs — the "logs" of the paper's
//!   execution model, from which the serializability oracle reconstructs the
//!   conflict graph ([`log`]).
//!
//! Nothing in this crate knows about any particular concurrency-control
//! protocol; it is the substrate that 2PL, T/O, PA and the unified scheme all
//! share.

pub mod catalog;
pub mod ids;
pub mod log;
pub mod op;
pub mod store;
pub mod txn;

pub use catalog::{Catalog, CatalogError, ReplicationPolicy};
pub use ids::{LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId};
pub use log::{ImplementedOp, ItemLog, LogSet};
pub use op::{AccessMode, LogicalOp, PhysicalOp};
pub use store::{SiteStore, StoreError, Value};
pub use txn::{CcMethod, Transaction, TransactionBuilder, TxnPhase};
