//! Logical and physical operations and their conflict predicates.
//!
//! A transaction is a sequence of *logical* read/write operations on logical
//! data items; the system translates each logical operation into *physical*
//! operations on the physical copies (read-one/write-all in this
//! reproduction, see [`crate::catalog`]). Two operations conflict when they
//! access the same item and at least one of them writes (paper, Section 2).

use crate::ids::{LogicalItemId, PhysicalItemId, TxnId};

/// Whether an operation reads or writes its data item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

impl AccessMode {
    /// True if at least one of the two modes is a write — i.e. the modes
    /// conflict when applied to the same data item.
    pub fn conflicts_with(self, other: AccessMode) -> bool {
        matches!(self, AccessMode::Write) || matches!(other, AccessMode::Write)
    }

    /// True if this is a write.
    pub fn is_write(self) -> bool {
        matches!(self, AccessMode::Write)
    }

    /// True if this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, AccessMode::Read)
    }
}

/// A logical operation issued by a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogicalOp {
    /// The transaction issuing the operation.
    pub txn: TxnId,
    /// The logical data item accessed.
    pub item: LogicalItemId,
    /// Read or write.
    pub mode: AccessMode,
}

impl LogicalOp {
    /// A logical read.
    pub fn read(txn: TxnId, item: LogicalItemId) -> Self {
        LogicalOp {
            txn,
            item,
            mode: AccessMode::Read,
        }
    }

    /// A logical write.
    pub fn write(txn: TxnId, item: LogicalItemId) -> Self {
        LogicalOp {
            txn,
            item,
            mode: AccessMode::Write,
        }
    }

    /// Two logical operations conflict when they come from distinct
    /// transactions, access the same logical item, and at least one writes.
    pub fn conflicts_with(&self, other: &LogicalOp) -> bool {
        self.txn != other.txn && self.item == other.item && self.mode.conflicts_with(other.mode)
    }
}

/// A physical operation `r(Dij)` / `w(Dij)` on one physical copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysicalOp {
    /// The transaction issuing the operation.
    pub txn: TxnId,
    /// The physical copy accessed.
    pub item: PhysicalItemId,
    /// Read or write.
    pub mode: AccessMode,
}

impl PhysicalOp {
    /// A physical read.
    pub fn read(txn: TxnId, item: PhysicalItemId) -> Self {
        PhysicalOp {
            txn,
            item,
            mode: AccessMode::Read,
        }
    }

    /// A physical write.
    pub fn write(txn: TxnId, item: PhysicalItemId) -> Self {
        PhysicalOp {
            txn,
            item,
            mode: AccessMode::Write,
        }
    }

    /// Two physical operations conflict when they come from distinct
    /// transactions, access the same physical copy, and at least one writes.
    pub fn conflicts_with(&self, other: &PhysicalOp) -> bool {
        self.txn != other.txn && self.item == other.item && self.mode.conflicts_with(other.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;

    fn li(i: u64) -> LogicalItemId {
        LogicalItemId(i)
    }
    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    #[test]
    fn mode_conflicts() {
        use AccessMode::*;
        assert!(!Read.conflicts_with(Read));
        assert!(Read.conflicts_with(Write));
        assert!(Write.conflicts_with(Read));
        assert!(Write.conflicts_with(Write));
        assert!(Write.is_write() && !Write.is_read());
        assert!(Read.is_read() && !Read.is_write());
    }

    #[test]
    fn logical_conflicts_require_same_item_distinct_txn_and_a_write() {
        let r1 = LogicalOp::read(TxnId(1), li(7));
        let w2 = LogicalOp::write(TxnId(2), li(7));
        let w2_other_item = LogicalOp::write(TxnId(2), li(8));
        let r2 = LogicalOp::read(TxnId(2), li(7));
        let w1 = LogicalOp::write(TxnId(1), li(7));

        assert!(r1.conflicts_with(&w2));
        assert!(w2.conflicts_with(&r1));
        assert!(!r1.conflicts_with(&w2_other_item));
        assert!(!r1.conflicts_with(&r2));
        assert!(
            !r1.conflicts_with(&w1),
            "same transaction never conflicts with itself"
        );
    }

    #[test]
    fn physical_conflicts_distinguish_copies() {
        let w_a = PhysicalOp::write(TxnId(1), pi(7, 0));
        let w_b = PhysicalOp::write(TxnId(2), pi(7, 1));
        let w_c = PhysicalOp::write(TxnId(2), pi(7, 0));
        assert!(
            !w_a.conflicts_with(&w_b),
            "different copies do not conflict physically"
        );
        assert!(w_a.conflicts_with(&w_c));
    }
}
