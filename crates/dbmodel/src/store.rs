//! Per-site in-memory storage of physical data items.
//!
//! The store is deliberately simple — a map from physical item to a
//! [`Value`] plus a write-version counter — because the concurrency-control
//! protocols above it are what this reproduction studies. The version counter
//! lets tests and examples observe lost updates or out-of-order writes
//! directly at the storage level, independent of the serializability oracle.

use std::collections::BTreeMap;

use crate::ids::{PhysicalItemId, SiteId, TxnId};

/// The value stored in a physical data item.
///
/// Values are 64-bit integers; that is sufficient for every workload in the
/// reproduction (account balances, stock counts, counters) while keeping the
/// store trivially cloneable for snapshot-based assertions in tests.
pub type Value = i64;

/// Errors reported by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The physical item is not stored at this site.
    UnknownItem(PhysicalItemId),
    /// The physical item belongs to a different site than this store serves.
    WrongSite {
        /// The site this store serves.
        store_site: SiteId,
        /// The item that was addressed to it.
        item: PhysicalItemId,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownItem(item) => write!(f, "item {item} not stored here"),
            StoreError::WrongSite { store_site, item } => {
                write!(f, "item {item} addressed to store of site {store_site}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A record for one physical item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Record {
    value: Value,
    version: u64,
    last_writer: Option<TxnId>,
}

/// The storage of one site: every physical copy the site holds.
#[derive(Debug, Clone)]
pub struct SiteStore {
    site: SiteId,
    records: BTreeMap<PhysicalItemId, Record>,
}

impl SiteStore {
    /// Create an empty store for `site`.
    pub fn new(site: SiteId) -> Self {
        SiteStore {
            site,
            records: BTreeMap::new(),
        }
    }

    /// The site this store serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Number of physical items stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Install a physical item with an initial value. Overwrites any existing
    /// record and resets its version to zero.
    pub fn install(&mut self, item: PhysicalItemId, value: Value) -> Result<(), StoreError> {
        self.check_site(item)?;
        self.records.insert(
            item,
            Record {
                value,
                version: 0,
                last_writer: None,
            },
        );
        Ok(())
    }

    /// Read the current value of an item.
    pub fn read(&self, item: PhysicalItemId) -> Result<Value, StoreError> {
        self.check_site(item)?;
        self.records
            .get(&item)
            .map(|r| r.value)
            .ok_or(StoreError::UnknownItem(item))
    }

    /// Write a new value on behalf of `writer`, bumping the version counter.
    pub fn write(
        &mut self,
        item: PhysicalItemId,
        value: Value,
        writer: TxnId,
    ) -> Result<(), StoreError> {
        self.check_site(item)?;
        let rec = self
            .records
            .get_mut(&item)
            .ok_or(StoreError::UnknownItem(item))?;
        rec.value = value;
        rec.version += 1;
        rec.last_writer = Some(writer);
        Ok(())
    }

    /// The number of committed writes applied to the item so far.
    pub fn version(&self, item: PhysicalItemId) -> Result<u64, StoreError> {
        self.check_site(item)?;
        self.records
            .get(&item)
            .map(|r| r.version)
            .ok_or(StoreError::UnknownItem(item))
    }

    /// The transaction that last wrote the item, if any write has occurred.
    pub fn last_writer(&self, item: PhysicalItemId) -> Result<Option<TxnId>, StoreError> {
        self.check_site(item)?;
        self.records
            .get(&item)
            .map(|r| r.last_writer)
            .ok_or(StoreError::UnknownItem(item))
    }

    /// Iterate over `(item, value)` pairs in item order.
    pub fn iter(&self) -> impl Iterator<Item = (PhysicalItemId, Value)> + '_ {
        self.records.iter().map(|(&k, r)| (k, r.value))
    }

    fn check_site(&self, item: PhysicalItemId) -> Result<(), StoreError> {
        if item.site != self.site {
            Err(StoreError::WrongSite {
                store_site: self.site,
                item,
            })
        } else {
            Ok(())
        }
    }
}

/// Build one store per site and install every physical copy from the catalog
/// with the given initial value.
pub fn stores_from_catalog(
    catalog: &crate::catalog::Catalog,
    initial: Value,
) -> BTreeMap<SiteId, SiteStore> {
    let mut stores: BTreeMap<SiteId, SiteStore> = catalog
        .sites()
        .iter()
        .map(|&s| (s, SiteStore::new(s)))
        .collect();
    for item in catalog.all_physical_items() {
        if let Some(store) = stores.get_mut(&item.site) {
            store
                .install(item, initial)
                .expect("catalog item installed at its own site");
        }
    }
    stores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ReplicationPolicy};
    use crate::ids::LogicalItemId;

    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    #[test]
    fn install_read_write_roundtrip() {
        let mut store = SiteStore::new(SiteId(0));
        store.install(pi(1, 0), 100).unwrap();
        assert_eq!(store.read(pi(1, 0)).unwrap(), 100);
        assert_eq!(store.version(pi(1, 0)).unwrap(), 0);
        store.write(pi(1, 0), 250, TxnId(7)).unwrap();
        assert_eq!(store.read(pi(1, 0)).unwrap(), 250);
        assert_eq!(store.version(pi(1, 0)).unwrap(), 1);
        assert_eq!(store.last_writer(pi(1, 0)).unwrap(), Some(TxnId(7)));
    }

    #[test]
    fn unknown_item_errors() {
        let mut store = SiteStore::new(SiteId(0));
        assert_eq!(
            store.read(pi(5, 0)).unwrap_err(),
            StoreError::UnknownItem(pi(5, 0))
        );
        assert!(store.write(pi(5, 0), 1, TxnId(1)).is_err());
        assert!(store.version(pi(5, 0)).is_err());
    }

    #[test]
    fn wrong_site_is_rejected() {
        let mut store = SiteStore::new(SiteId(0));
        let err = store.install(pi(1, 3), 0).unwrap_err();
        assert!(matches!(err, StoreError::WrongSite { .. }));
        assert!(store.read(pi(1, 3)).is_err());
    }

    #[test]
    fn reinstall_resets_version() {
        let mut store = SiteStore::new(SiteId(0));
        store.install(pi(1, 0), 1).unwrap();
        store.write(pi(1, 0), 2, TxnId(1)).unwrap();
        store.install(pi(1, 0), 9).unwrap();
        assert_eq!(store.version(pi(1, 0)).unwrap(), 0);
        assert_eq!(store.read(pi(1, 0)).unwrap(), 9);
        assert_eq!(store.last_writer(pi(1, 0)).unwrap(), None);
    }

    #[test]
    fn stores_from_catalog_installs_all_copies() {
        let catalog = Catalog::generate(3, 4, ReplicationPolicy::FullReplication);
        let stores = stores_from_catalog(&catalog, 42);
        assert_eq!(stores.len(), 3);
        for (&site, store) in &stores {
            assert_eq!(store.site(), site);
            assert_eq!(store.len(), 4);
            for (item, value) in store.iter() {
                assert_eq!(item.site, site);
                assert_eq!(value, 42);
            }
        }
    }

    #[test]
    fn empty_store_reports_empty() {
        let store = SiteStore::new(SiteId(1));
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
    }
}
