//! Per-site in-memory storage of physical data items.
//!
//! The store is deliberately simple — a record per physical item holding a
//! [`Value`] plus a write-version counter — because the concurrency-control
//! protocols above it are what this reproduction studies. The version counter
//! lets tests and examples observe lost updates or out-of-order writes
//! directly at the storage level, independent of the serializability oracle.
//!
//! ## The dense item index
//!
//! Records live in a dense `Vec` sorted by item id; the
//! `PhysicalItemId → slot` resolution is a direct-mapped table indexed by
//! the logical item id (catalog-generated ids are small and contiguous),
//! with a sorted spill vector as the correctness net for ids past the
//! direct-map bound — the same scheme the `QueueManager` slot table uses.
//! Resolving an item is an array load instead of a `BTreeMap` pointer
//! chase on the simulator's hot read/write path.

use std::collections::BTreeMap;

use crate::ids::{PhysicalItemId, SiteId, TxnId};

/// The value stored in a physical data item.
///
/// Values are 64-bit integers; that is sufficient for every workload in the
/// reproduction (account balances, stock counts, counters) while keeping the
/// store trivially cloneable for snapshot-based assertions in tests.
pub type Value = i64;

/// Logical item ids below this bound resolve through the direct-mapped
/// table; ids at or above it fall back to the sorted spill vector. Same
/// bound as the `QueueManager` slot table: it caps the direct map at
/// 4 MiB per store even for adversarial id spaces, and catalog-generated
/// ids are contiguous from zero so they never spill.
const DENSE_LIMIT: u64 = 1 << 20;

/// Errors reported by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The physical item is not stored at this site.
    UnknownItem(PhysicalItemId),
    /// The physical item belongs to a different site than this store serves.
    WrongSite {
        /// The site this store serves.
        store_site: SiteId,
        /// The item that was addressed to it.
        item: PhysicalItemId,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownItem(item) => write!(f, "item {item} not stored here"),
            StoreError::WrongSite { store_site, item } => {
                write!(f, "item {item} addressed to store of site {store_site}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A record for one physical item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Record {
    item: PhysicalItemId,
    value: Value,
    version: u64,
    last_writer: Option<TxnId>,
}

/// The storage of one site: every physical copy the site holds.
#[derive(Debug, Clone)]
pub struct SiteStore {
    site: SiteId,
    /// Records, sorted by `PhysicalItemId` (so iteration order matches the
    /// seed's `BTreeMap` exactly).
    records: Vec<Record>,
    /// Direct map: `logical id → slot + 1` (`0` = no such item here).
    dense: Vec<u32>,
    /// Sorted `(logical id, slot)` pairs for ids `>= DENSE_LIMIT`.
    spill: Vec<(u64, u32)>,
}

impl SiteStore {
    /// Create an empty store for `site`.
    pub fn new(site: SiteId) -> Self {
        SiteStore {
            site,
            records: Vec::new(),
            dense: Vec::new(),
            spill: Vec::new(),
        }
    }

    /// The site this store serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Number of physical items stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Install a physical item with an initial value. Overwrites any existing
    /// record and resets its version to zero.
    pub fn install(&mut self, item: PhysicalItemId, value: Value) -> Result<(), StoreError> {
        self.check_site(item)?;
        let fresh = Record {
            item,
            value,
            version: 0,
            last_writer: None,
        };
        if let Some(slot) = self.slot_of(item) {
            self.records[slot] = fresh;
            return Ok(());
        }
        let pos = self.records.partition_point(|r| r.item < item);
        self.records.insert(pos, fresh);
        // Slots at or past the insertion point shifted right by one;
        // rebuild their id → slot entries. Install is construction-time
        // only, so the linear fix-up never sits on a hot path.
        for slot in pos..self.records.len() {
            self.set_slot(self.records[slot].item.logical.0, slot as u32);
        }
        Ok(())
    }

    /// Read the current value of an item.
    pub fn read(&self, item: PhysicalItemId) -> Result<Value, StoreError> {
        self.record(item).map(|r| r.value)
    }

    /// Write a new value on behalf of `writer`, bumping the version counter.
    pub fn write(
        &mut self,
        item: PhysicalItemId,
        value: Value,
        writer: TxnId,
    ) -> Result<(), StoreError> {
        self.check_site(item)?;
        let slot = self.slot_of(item).ok_or(StoreError::UnknownItem(item))?;
        let rec = &mut self.records[slot];
        rec.value = value;
        rec.version += 1;
        rec.last_writer = Some(writer);
        Ok(())
    }

    /// The number of committed writes applied to the item so far.
    pub fn version(&self, item: PhysicalItemId) -> Result<u64, StoreError> {
        self.record(item).map(|r| r.version)
    }

    /// The transaction that last wrote the item, if any write has occurred.
    pub fn last_writer(&self, item: PhysicalItemId) -> Result<Option<TxnId>, StoreError> {
        self.record(item).map(|r| r.last_writer)
    }

    /// Iterate over `(item, value)` pairs in item order.
    pub fn iter(&self) -> impl Iterator<Item = (PhysicalItemId, Value)> + '_ {
        self.records.iter().map(|r| (r.item, r.value))
    }

    fn record(&self, item: PhysicalItemId) -> Result<&Record, StoreError> {
        self.check_site(item)?;
        self.slot_of(item)
            .map(|slot| &self.records[slot])
            .ok_or(StoreError::UnknownItem(item))
    }

    /// Point the id → slot resolution of `logical` at `slot`
    /// (construction-time only; the hot path never calls this).
    fn set_slot(&mut self, logical: u64, slot: u32) {
        if logical < DENSE_LIMIT {
            let idx = logical as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            self.dense[idx] = slot + 1;
        } else {
            match self.spill.binary_search_by_key(&logical, |&(l, _)| l) {
                Ok(i) => self.spill[i].1 = slot,
                Err(i) => self.spill.insert(i, (logical, slot)),
            }
        }
    }

    /// Resolve an item id to its slot in the dense record table.
    #[inline]
    fn slot_of(&self, item: PhysicalItemId) -> Option<usize> {
        if item.site != self.site {
            return None;
        }
        let logical = item.logical.0;
        if logical < DENSE_LIMIT {
            match self.dense.get(logical as usize) {
                Some(&slot) if slot != 0 => Some(slot as usize - 1),
                _ => None,
            }
        } else {
            self.spill
                .binary_search_by_key(&logical, |&(l, _)| l)
                .ok()
                .map(|i| self.spill[i].1 as usize)
        }
    }

    fn check_site(&self, item: PhysicalItemId) -> Result<(), StoreError> {
        if item.site != self.site {
            Err(StoreError::WrongSite {
                store_site: self.site,
                item,
            })
        } else {
            Ok(())
        }
    }
}

/// Build one store per site and install every physical copy from the catalog
/// with the given initial value.
pub fn stores_from_catalog(
    catalog: &crate::catalog::Catalog,
    initial: Value,
) -> BTreeMap<SiteId, SiteStore> {
    let mut stores: BTreeMap<SiteId, SiteStore> = catalog
        .sites()
        .iter()
        .map(|&s| (s, SiteStore::new(s)))
        .collect();
    for item in catalog.all_physical_items() {
        if let Some(store) = stores.get_mut(&item.site) {
            store
                .install(item, initial)
                .expect("catalog item installed at its own site");
        }
    }
    stores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, ReplicationPolicy};
    use crate::ids::LogicalItemId;

    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    #[test]
    fn install_read_write_roundtrip() {
        let mut store = SiteStore::new(SiteId(0));
        store.install(pi(1, 0), 100).unwrap();
        assert_eq!(store.read(pi(1, 0)).unwrap(), 100);
        assert_eq!(store.version(pi(1, 0)).unwrap(), 0);
        store.write(pi(1, 0), 250, TxnId(7)).unwrap();
        assert_eq!(store.read(pi(1, 0)).unwrap(), 250);
        assert_eq!(store.version(pi(1, 0)).unwrap(), 1);
        assert_eq!(store.last_writer(pi(1, 0)).unwrap(), Some(TxnId(7)));
    }

    #[test]
    fn unknown_item_errors() {
        let mut store = SiteStore::new(SiteId(0));
        assert_eq!(
            store.read(pi(5, 0)).unwrap_err(),
            StoreError::UnknownItem(pi(5, 0))
        );
        assert!(store.write(pi(5, 0), 1, TxnId(1)).is_err());
        assert!(store.version(pi(5, 0)).is_err());
    }

    #[test]
    fn wrong_site_is_rejected() {
        let mut store = SiteStore::new(SiteId(0));
        let err = store.install(pi(1, 3), 0).unwrap_err();
        assert!(matches!(err, StoreError::WrongSite { .. }));
        assert!(store.read(pi(1, 3)).is_err());
    }

    #[test]
    fn reinstall_resets_version() {
        let mut store = SiteStore::new(SiteId(0));
        store.install(pi(1, 0), 1).unwrap();
        store.write(pi(1, 0), 2, TxnId(1)).unwrap();
        store.install(pi(1, 0), 9).unwrap();
        assert_eq!(store.version(pi(1, 0)).unwrap(), 0);
        assert_eq!(store.read(pi(1, 0)).unwrap(), 9);
        assert_eq!(store.last_writer(pi(1, 0)).unwrap(), None);
    }

    #[test]
    fn stores_from_catalog_installs_all_copies() {
        let catalog = Catalog::generate(3, 4, ReplicationPolicy::FullReplication);
        let stores = stores_from_catalog(&catalog, 42);
        assert_eq!(stores.len(), 3);
        for (&site, store) in &stores {
            assert_eq!(store.site(), site);
            assert_eq!(store.len(), 4);
            for (item, value) in store.iter() {
                assert_eq!(item.site, site);
                assert_eq!(value, 42);
            }
        }
    }

    #[test]
    fn empty_store_reports_empty() {
        let store = SiteStore::new(SiteId(1));
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn dense_index_resolves_sparse_and_spilled_ids() {
        let mut store = SiteStore::new(SiteId(0));
        // Sparse dense-range ids, installed out of order so later installs
        // shift earlier slots.
        store.install(pi(512, 0), 1).unwrap();
        store.install(pi(3, 0), 2).unwrap();
        // An id past the direct-map bound exercises the spill path.
        let big = DENSE_LIMIT + 17;
        store.install(pi(big, 0), 3).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.read(pi(3, 0)).unwrap(), 2);
        assert_eq!(store.read(pi(512, 0)).unwrap(), 1);
        assert_eq!(store.read(pi(big, 0)).unwrap(), 3);
        assert!(store.read(pi(4, 0)).is_err());
        // Iteration stays in item order despite out-of-order installs.
        let order: Vec<u64> = store.iter().map(|(i, _)| i.logical.0).collect();
        assert_eq!(order, vec![3, 512, big]);
        // Writes through the index land on the right record.
        store.write(pi(big, 0), 33, TxnId(9)).unwrap();
        assert_eq!(store.read(pi(big, 0)).unwrap(), 33);
        assert_eq!(store.read(pi(512, 0)).unwrap(), 1);
    }

    /// Equivalence net for the dense-index rewrite: drive the store and the
    /// seed's `BTreeMap` model through an identical pseudo-random command
    /// stream and compare every observable after every step.
    #[test]
    fn dense_index_matches_btreemap_model() {
        #[derive(Clone, Copy)]
        struct Model {
            value: Value,
            version: u64,
            last_writer: Option<TxnId>,
        }
        let mut store = SiteStore::new(SiteId(0));
        let mut model: BTreeMap<PhysicalItemId, Model> = BTreeMap::new();
        // Deterministic xorshift so the test needs no RNG dependency.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000u64 {
            let r = next();
            // Mix dense-range and spill-range ids.
            let logical = if r % 11 == 0 {
                DENSE_LIMIT + (r >> 8) % 16
            } else {
                (r >> 8) % 48
            };
            let item = pi(logical, 0);
            match r % 5 {
                0 => {
                    let v = (r >> 16) as i64 % 1000;
                    store.install(item, v).unwrap();
                    model.insert(
                        item,
                        Model {
                            value: v,
                            version: 0,
                            last_writer: None,
                        },
                    );
                }
                1 | 2 => {
                    let v = (r >> 16) as i64 % 1000;
                    let w = TxnId(step);
                    let got = store.write(item, v, w);
                    match model.get_mut(&item) {
                        Some(m) => {
                            got.unwrap();
                            m.value = v;
                            m.version += 1;
                            m.last_writer = Some(w);
                        }
                        None => assert_eq!(got.unwrap_err(), StoreError::UnknownItem(item)),
                    }
                }
                _ => match model.get(&item) {
                    Some(m) => {
                        assert_eq!(store.read(item).unwrap(), m.value);
                        assert_eq!(store.version(item).unwrap(), m.version);
                        assert_eq!(store.last_writer(item).unwrap(), m.last_writer);
                    }
                    None => {
                        assert_eq!(store.read(item).unwrap_err(), StoreError::UnknownItem(item))
                    }
                },
            }
            assert_eq!(store.len(), model.len());
        }
        // Full sweep: identical contents in identical order.
        let store_view: Vec<(PhysicalItemId, Value)> = store.iter().collect();
        let model_view: Vec<(PhysicalItemId, Value)> =
            model.iter().map(|(&k, m)| (k, m.value)).collect();
        assert_eq!(store_view, model_view);
    }
}
