//! Identifier newtypes and the timestamp tuple.
//!
//! The paper identifies transactions, sites, logical data items and physical
//! copies; each gets a `Copy` newtype so the rest of the codebase cannot mix
//! them up. [`Timestamp`] is the T/O and PA timestamp (a logical clock value),
//! and [`TsTuple`] is PA's `(TS, INT)` pair — the initial timestamp plus the
//! backoff interval used to compute `TS' = TS + k·INT`.

use std::fmt;

/// Identifier of a computer site in the distributed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a logical data item `Di`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalItemId(pub u64);

impl fmt::Display for LogicalItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Identifier of a physical copy `Dij`: logical item `Di` stored at site `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysicalItemId {
    /// The logical item this is a copy of.
    pub logical: LogicalItemId,
    /// The site holding this copy.
    pub site: SiteId,
}

impl PhysicalItemId {
    /// Convenience constructor.
    pub fn new(logical: LogicalItemId, site: SiteId) -> Self {
        PhysicalItemId { logical, site }
    }
}

impl fmt::Display for PhysicalItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}@S{}", self.logical.0, self.site.0)
    }
}

/// A logical-clock timestamp as used by T/O and PA.
///
/// Timestamps are drawn from the natural numbers (paper, Section 4.3); ties
/// between transactions are broken by the unified precedence order, never by
/// the timestamp alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The smallest timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The timestamp `self + k·interval`, saturating on overflow.
    pub fn backed_off(self, interval: u64, k: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(interval.saturating_mul(k)))
    }

    /// The smallest `TS' = self + k·interval` with `k ≥ 1` such that
    /// `TS' > floor`. This is PA's backoff computation at a data queue.
    ///
    /// `interval` must be non-zero; a zero interval is treated as 1 so the
    /// computation always terminates.
    pub fn min_backoff_above(self, interval: u64, floor: Timestamp) -> Timestamp {
        let interval = interval.max(1);
        if self.0.saturating_add(interval) > floor.0 {
            return Timestamp(self.0.saturating_add(interval));
        }
        // Need the smallest k with self + k*interval > floor, i.e.
        // k = floor((floor - self) / interval) + 1.
        let gap = floor.0 - self.0;
        let k = gap / interval + 1;
        self.backed_off(interval, k)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// PA's per-transaction timestamp tuple `(TS, INT)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TsTuple {
    /// The transaction's (possibly backed-off) timestamp.
    pub ts: Timestamp,
    /// The transaction's backoff interval `INT`.
    pub interval: u64,
}

impl TsTuple {
    /// Convenience constructor.
    pub fn new(ts: Timestamp, interval: u64) -> Self {
        TsTuple { ts, interval }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_compact() {
        assert_eq!(SiteId(3).to_string(), "S3");
        assert_eq!(TxnId(17).to_string(), "T17");
        assert_eq!(LogicalItemId(5).to_string(), "D5");
        assert_eq!(
            PhysicalItemId::new(LogicalItemId(5), SiteId(2)).to_string(),
            "D5@S2"
        );
        assert_eq!(Timestamp(9).to_string(), "ts9");
    }

    #[test]
    fn backed_off_multiplies_interval() {
        assert_eq!(Timestamp(10).backed_off(5, 3), Timestamp(25));
        assert_eq!(
            Timestamp(u64::MAX - 1).backed_off(10, 10),
            Timestamp(u64::MAX)
        );
    }

    #[test]
    fn min_backoff_goes_just_above_floor() {
        // self=10, INT=4: candidates 14, 18, 22, ...
        assert_eq!(
            Timestamp(10).min_backoff_above(4, Timestamp(12)),
            Timestamp(14)
        );
        assert_eq!(
            Timestamp(10).min_backoff_above(4, Timestamp(14)),
            Timestamp(18)
        );
        assert_eq!(
            Timestamp(10).min_backoff_above(4, Timestamp(21)),
            Timestamp(22)
        );
        // Already above the floor: still must move by at least one interval
        // (k ∈ N, k ≥ 1 — the request is being backed off, so it changes).
        assert_eq!(
            Timestamp(10).min_backoff_above(4, Timestamp(3)),
            Timestamp(14)
        );
    }

    #[test]
    fn min_backoff_handles_zero_interval() {
        assert_eq!(
            Timestamp(10).min_backoff_above(0, Timestamp(12)),
            Timestamp(13)
        );
    }

    #[test]
    fn min_backoff_result_exceeds_floor_property() {
        for start in [0u64, 1, 7, 100, 1000] {
            for interval in [1u64, 2, 5, 17] {
                for floor in [0u64, 3, 99, 100, 101, 5000] {
                    let got = Timestamp(start).min_backoff_above(interval, Timestamp(floor));
                    assert!(got.0 > floor, "start={start} int={interval} floor={floor}");
                    assert!(got.0 > start);
                    assert_eq!((got.0 - start) % interval, 0);
                }
            }
        }
    }

    #[test]
    fn physical_item_ordering_groups_by_logical_then_site() {
        let a = PhysicalItemId::new(LogicalItemId(1), SiteId(9));
        let b = PhysicalItemId::new(LogicalItemId(2), SiteId(0));
        assert!(a < b);
    }
}
