//! The transaction model.
//!
//! The paper's "legal transaction" has three phases: a read phase (copy data
//! from the database into the user's local memory), a local computing phase,
//! and a write phase (copy results back). Read and write sets are therefore
//! known when the transaction enters the system, which is also what lets the
//! request issuer send all requests to the data-queue managers up front — a
//! prerequisite for both T/O and PA as specified in Sections 3.3–3.4.
//!
//! Each transaction additionally carries the concurrency-control method it
//! runs under ([`CcMethod`]); in the unified system this is chosen per
//! transaction, either statically or by the STL-based selector.

use std::collections::BTreeSet;

use crate::ids::{LogicalItemId, SiteId, TxnId};
use crate::op::{AccessMode, LogicalOp};

/// The concurrency-control protocol a transaction runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CcMethod {
    /// Static two-phase locking (FCFS queues, read/write locks, deadlock
    /// detection with victim abort).
    TwoPhaseLocking,
    /// Basic timestamp ordering (reject-and-restart on out-of-order arrival).
    TimestampOrdering,
    /// Precedence agreement (timestamp backoff negotiation; deadlock- and
    /// restart-free).
    PrecedenceAgreement,
}

impl CcMethod {
    /// All three methods, in the order the paper introduces them.
    pub const ALL: [CcMethod; 3] = [
        CcMethod::TwoPhaseLocking,
        CcMethod::TimestampOrdering,
        CcMethod::PrecedenceAgreement,
    ];

    /// A short label used in reports and experiment output.
    pub fn label(self) -> &'static str {
        match self {
            CcMethod::TwoPhaseLocking => "2PL",
            CcMethod::TimestampOrdering => "T/O",
            CcMethod::PrecedenceAgreement => "PA",
        }
    }
}

impl std::fmt::Display for CcMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The phase a transaction is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnPhase {
    /// Waiting for / performing database reads.
    Read,
    /// Performing local computation on the data read.
    LocalCompute,
    /// Writing results back to the database.
    Write,
    /// All operations implemented and locks released.
    Finished,
}

/// A transaction: predeclared read and write sets plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Unique transaction identifier.
    pub id: TxnId,
    /// The site whose request issuer the transaction was submitted to.
    pub origin: SiteId,
    /// Concurrency-control method this transaction runs under.
    pub method: CcMethod,
    /// Logical items read (sorted, deduplicated).
    read_set: Vec<LogicalItemId>,
    /// Logical items written (sorted, deduplicated).
    write_set: Vec<LogicalItemId>,
}

impl Transaction {
    /// Start building a transaction.
    pub fn builder(id: TxnId, origin: SiteId) -> TransactionBuilder {
        TransactionBuilder {
            id,
            origin,
            method: CcMethod::TwoPhaseLocking,
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
        }
    }

    /// The logical items this transaction reads.
    pub fn read_set(&self) -> &[LogicalItemId] {
        &self.read_set
    }

    /// The logical items this transaction writes.
    pub fn write_set(&self) -> &[LogicalItemId] {
        &self.write_set
    }

    /// Number of read operations, the paper's `m(t)`.
    pub fn num_reads(&self) -> usize {
        self.read_set.len()
    }

    /// Number of write operations, the paper's `n(t)`.
    pub fn num_writes(&self) -> usize {
        self.write_set.len()
    }

    /// Total number of logical items accessed (the paper's transaction size
    /// `st` when read and write sets are disjoint).
    pub fn size(&self) -> usize {
        self.read_set.len() + self.write_set.len()
    }

    /// True when the transaction accesses no data at all.
    pub fn is_empty(&self) -> bool {
        self.read_set.is_empty() && self.write_set.is_empty()
    }

    /// All logical operations of the transaction: reads first, then writes,
    /// matching the three-phase execution order.
    pub fn logical_ops(&self) -> Vec<LogicalOp> {
        let mut ops = Vec::with_capacity(self.size());
        for &item in &self.read_set {
            ops.push(LogicalOp::read(self.id, item));
        }
        for &item in &self.write_set {
            ops.push(LogicalOp::write(self.id, item));
        }
        ops
    }

    /// The access mode this transaction uses for `item`, if it accesses it.
    /// An item in both sets is reported as a write (the stricter mode).
    pub fn mode_for(&self, item: LogicalItemId) -> Option<AccessMode> {
        if self.write_set.binary_search(&item).is_ok() {
            Some(AccessMode::Write)
        } else if self.read_set.binary_search(&item).is_ok() {
            Some(AccessMode::Read)
        } else {
            None
        }
    }

    /// Return a copy of this transaction running under a different method.
    pub fn with_method(&self, method: CcMethod) -> Transaction {
        Transaction {
            method,
            ..self.clone()
        }
    }
}

/// Builder for [`Transaction`]; deduplicates and sorts the item sets.
#[derive(Debug, Clone)]
pub struct TransactionBuilder {
    id: TxnId,
    origin: SiteId,
    method: CcMethod,
    reads: BTreeSet<LogicalItemId>,
    writes: BTreeSet<LogicalItemId>,
}

impl TransactionBuilder {
    /// Set the concurrency-control method (default: 2PL).
    pub fn method(mut self, method: CcMethod) -> Self {
        self.method = method;
        self
    }

    /// Add a logical item to the read set.
    pub fn read(mut self, item: LogicalItemId) -> Self {
        self.reads.insert(item);
        self
    }

    /// Add a logical item to the write set.
    pub fn write(mut self, item: LogicalItemId) -> Self {
        self.writes.insert(item);
        self
    }

    /// Add several items to the read set.
    pub fn reads<I: IntoIterator<Item = LogicalItemId>>(mut self, items: I) -> Self {
        self.reads.extend(items);
        self
    }

    /// Add several items to the write set.
    pub fn writes<I: IntoIterator<Item = LogicalItemId>>(mut self, items: I) -> Self {
        self.writes.extend(items);
        self
    }

    /// Finish building. An item present in both sets is kept only in the
    /// write set (a read-modify-write access needs only the write request in
    /// every protocol modelled here, since write locks subsume read locks and
    /// the write timestamp check subsumes the read check).
    pub fn build(self) -> Transaction {
        let write_set: Vec<LogicalItemId> = self.writes.iter().copied().collect();
        let read_set: Vec<LogicalItemId> = self
            .reads
            .iter()
            .copied()
            .filter(|i| !self.writes.contains(i))
            .collect();
        Transaction {
            id: self.id,
            origin: self.origin,
            method: self.method,
            read_set,
            write_set,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(i: u64) -> LogicalItemId {
        LogicalItemId(i)
    }

    #[test]
    fn builder_dedups_and_sorts() {
        let t = Transaction::builder(TxnId(1), SiteId(0))
            .read(li(5))
            .read(li(3))
            .read(li(5))
            .write(li(9))
            .write(li(2))
            .build();
        assert_eq!(t.read_set(), &[li(3), li(5)]);
        assert_eq!(t.write_set(), &[li(2), li(9)]);
        assert_eq!(t.num_reads(), 2);
        assert_eq!(t.num_writes(), 2);
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn read_write_overlap_becomes_write_only() {
        let t = Transaction::builder(TxnId(1), SiteId(0))
            .read(li(1))
            .read(li(2))
            .write(li(2))
            .build();
        assert_eq!(t.read_set(), &[li(1)]);
        assert_eq!(t.write_set(), &[li(2)]);
        assert_eq!(t.mode_for(li(2)), Some(AccessMode::Write));
    }

    #[test]
    fn logical_ops_lists_reads_then_writes() {
        let t = Transaction::builder(TxnId(7), SiteId(1))
            .read(li(1))
            .write(li(2))
            .build();
        let ops = t.logical_ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0], LogicalOp::read(TxnId(7), li(1)));
        assert_eq!(ops[1], LogicalOp::write(TxnId(7), li(2)));
    }

    #[test]
    fn mode_for_reports_access() {
        let t = Transaction::builder(TxnId(1), SiteId(0))
            .read(li(1))
            .write(li(2))
            .build();
        assert_eq!(t.mode_for(li(1)), Some(AccessMode::Read));
        assert_eq!(t.mode_for(li(2)), Some(AccessMode::Write));
        assert_eq!(t.mode_for(li(3)), None);
    }

    #[test]
    fn with_method_changes_only_method() {
        let t = Transaction::builder(TxnId(1), SiteId(0))
            .method(CcMethod::TimestampOrdering)
            .read(li(1))
            .build();
        let t2 = t.with_method(CcMethod::PrecedenceAgreement);
        assert_eq!(t2.method, CcMethod::PrecedenceAgreement);
        assert_eq!(t2.read_set(), t.read_set());
        assert_eq!(t2.id, t.id);
    }

    #[test]
    fn empty_transaction_is_flagged() {
        let t = Transaction::builder(TxnId(1), SiteId(0)).build();
        assert!(t.is_empty());
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn method_labels() {
        assert_eq!(CcMethod::TwoPhaseLocking.label(), "2PL");
        assert_eq!(CcMethod::TimestampOrdering.to_string(), "T/O");
        assert_eq!(CcMethod::PrecedenceAgreement.label(), "PA");
        assert_eq!(CcMethod::ALL.len(), 3);
    }
}
