//! The replication catalog: which sites hold a physical copy of each logical
//! data item, and how logical operations translate into physical ones.
//!
//! The paper allows each logical item to be "stored redundantly at different
//! computer sites"; to execute a transaction "the system first translates all
//! the logical operations into their corresponding physical operations" and
//! ships them to the holding sites. This reproduction uses the standard
//! read-one / write-all translation: a logical read accesses one chosen copy
//! (the copy at the reader's own site if it exists, otherwise the
//! lowest-numbered site holding one), and a logical write accesses every
//! copy.

use std::collections::BTreeMap;

use crate::ids::{LogicalItemId, PhysicalItemId, SiteId, TxnId};
use crate::op::{AccessMode, LogicalOp, PhysicalOp};

/// How copies are assigned to sites when a catalog is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicationPolicy {
    /// Every logical item has exactly one copy, placed round-robin.
    SingleCopy,
    /// Every logical item is replicated at every site.
    FullReplication,
    /// Every logical item has `k` copies, placed on consecutive sites starting
    /// from a round-robin offset.
    KCopies(usize),
}

/// Errors reported by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The logical item is not in the catalog.
    UnknownItem(LogicalItemId),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownItem(item) => write!(f, "unknown logical item {item}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The replication catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    copies: BTreeMap<LogicalItemId, Vec<SiteId>>,
    sites: Vec<SiteId>,
}

impl Catalog {
    /// Create an empty catalog over the given sites.
    pub fn new(sites: Vec<SiteId>) -> Self {
        Catalog {
            copies: BTreeMap::new(),
            sites,
        }
    }

    /// Generate a catalog with `num_items` logical items over `num_sites`
    /// sites using the given replication policy.
    pub fn generate(num_sites: u32, num_items: u64, policy: ReplicationPolicy) -> Self {
        assert!(num_sites > 0, "need at least one site");
        let sites: Vec<SiteId> = (0..num_sites).map(SiteId).collect();
        let mut catalog = Catalog::new(sites.clone());
        for i in 0..num_items {
            let item = LogicalItemId(i);
            let holders: Vec<SiteId> = match policy {
                ReplicationPolicy::SingleCopy => {
                    vec![sites[(i % num_sites as u64) as usize]]
                }
                ReplicationPolicy::FullReplication => sites.clone(),
                ReplicationPolicy::KCopies(k) => {
                    let k = k.clamp(1, num_sites as usize);
                    (0..k)
                        .map(|off| sites[((i + off as u64) % num_sites as u64) as usize])
                        .collect()
                }
            };
            catalog.add_item(item, holders);
        }
        catalog
    }

    /// Register a logical item and the sites holding its copies. Duplicate
    /// sites are collapsed; the holder list is kept sorted.
    pub fn add_item(&mut self, item: LogicalItemId, mut holders: Vec<SiteId>) {
        holders.sort_unstable();
        holders.dedup();
        for s in &holders {
            if !self.sites.contains(s) {
                self.sites.push(*s);
            }
        }
        self.sites.sort_unstable();
        self.copies.insert(item, holders);
    }

    /// All sites known to the catalog.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Number of logical items.
    pub fn num_items(&self) -> usize {
        self.copies.len()
    }

    /// All logical items in the catalog, in id order.
    pub fn items(&self) -> impl Iterator<Item = LogicalItemId> + '_ {
        self.copies.keys().copied()
    }

    /// The sites holding copies of `item`.
    pub fn holders(&self, item: LogicalItemId) -> Result<&[SiteId], CatalogError> {
        self.copies
            .get(&item)
            .map(|v| v.as_slice())
            .ok_or(CatalogError::UnknownItem(item))
    }

    /// All physical copies of `item`.
    pub fn physical_copies(
        &self,
        item: LogicalItemId,
    ) -> Result<Vec<PhysicalItemId>, CatalogError> {
        Ok(self
            .holders(item)?
            .iter()
            .map(|&s| PhysicalItemId::new(item, s))
            .collect())
    }

    /// Every physical item in the system (all copies of all items).
    pub fn all_physical_items(&self) -> Vec<PhysicalItemId> {
        self.copies
            .iter()
            .flat_map(|(&item, holders)| holders.iter().map(move |&s| PhysicalItemId::new(item, s)))
            .collect()
    }

    /// The copy a read issued from `reader_site` accesses under the
    /// read-one rule: the local copy if one exists, otherwise the copy at the
    /// lowest-numbered holding site.
    pub fn read_copy(
        &self,
        item: LogicalItemId,
        reader_site: SiteId,
    ) -> Result<PhysicalItemId, CatalogError> {
        let holders = self.holders(item)?;
        let site = if holders.contains(&reader_site) {
            reader_site
        } else {
            *holders.first().ok_or(CatalogError::UnknownItem(item))?
        };
        Ok(PhysicalItemId::new(item, site))
    }

    /// Translate one logical operation into physical operations
    /// (read-one / write-all).
    pub fn translate_op(
        &self,
        op: &LogicalOp,
        origin: SiteId,
    ) -> Result<Vec<PhysicalOp>, CatalogError> {
        match op.mode {
            AccessMode::Read => Ok(vec![PhysicalOp::read(
                op.txn,
                self.read_copy(op.item, origin)?,
            )]),
            AccessMode::Write => Ok(self
                .physical_copies(op.item)?
                .into_iter()
                .map(|p| PhysicalOp::write(op.txn, p))
                .collect()),
        }
    }

    /// Translate a whole transaction's logical operations (reads then writes)
    /// into physical operations.
    pub fn translate_txn(
        &self,
        txn: &crate::txn::Transaction,
    ) -> Result<Vec<PhysicalOp>, CatalogError> {
        let mut out = Vec::new();
        for op in txn.logical_ops() {
            out.extend(self.translate_op(&op, txn.origin)?);
        }
        Ok(out)
    }

    /// Helper used by workload generation and the STL estimator: which site a
    /// transaction id would naturally originate from under round-robin
    /// placement of users across sites.
    pub fn origin_for(&self, txn: TxnId) -> SiteId {
        let n = self.sites.len().max(1);
        self.sites[(txn.0 % n as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Transaction;

    fn li(i: u64) -> LogicalItemId {
        LogicalItemId(i)
    }

    #[test]
    fn generate_single_copy_places_round_robin() {
        let c = Catalog::generate(3, 6, ReplicationPolicy::SingleCopy);
        assert_eq!(c.num_items(), 6);
        assert_eq!(c.holders(li(0)).unwrap(), &[SiteId(0)]);
        assert_eq!(c.holders(li(1)).unwrap(), &[SiteId(1)]);
        assert_eq!(c.holders(li(5)).unwrap(), &[SiteId(2)]);
        assert_eq!(c.sites().len(), 3);
    }

    #[test]
    fn generate_full_replication_places_everywhere() {
        let c = Catalog::generate(4, 3, ReplicationPolicy::FullReplication);
        for i in 0..3 {
            assert_eq!(c.holders(li(i)).unwrap().len(), 4);
        }
        assert_eq!(c.all_physical_items().len(), 12);
    }

    #[test]
    fn generate_k_copies_clamps_and_wraps() {
        let c = Catalog::generate(3, 4, ReplicationPolicy::KCopies(2));
        for i in 0..4 {
            assert_eq!(c.holders(li(i)).unwrap().len(), 2, "item {i}");
        }
        // k larger than the number of sites clamps to all sites.
        let c2 = Catalog::generate(2, 1, ReplicationPolicy::KCopies(10));
        assert_eq!(c2.holders(li(0)).unwrap().len(), 2);
    }

    #[test]
    fn unknown_item_is_an_error() {
        let c = Catalog::generate(2, 2, ReplicationPolicy::SingleCopy);
        assert_eq!(
            c.holders(li(99)).unwrap_err(),
            CatalogError::UnknownItem(li(99))
        );
        assert!(c.read_copy(li(99), SiteId(0)).is_err());
    }

    #[test]
    fn read_copy_prefers_local_site() {
        let mut c = Catalog::new(vec![SiteId(0), SiteId(1), SiteId(2)]);
        c.add_item(li(1), vec![SiteId(1), SiteId(2)]);
        assert_eq!(
            c.read_copy(li(1), SiteId(2)).unwrap(),
            PhysicalItemId::new(li(1), SiteId(2))
        );
        assert_eq!(
            c.read_copy(li(1), SiteId(0)).unwrap(),
            PhysicalItemId::new(li(1), SiteId(1)),
            "falls back to lowest-numbered holder"
        );
    }

    #[test]
    fn translate_read_one_write_all() {
        let c = Catalog::generate(3, 3, ReplicationPolicy::FullReplication);
        let t = Transaction::builder(TxnId(9), SiteId(1))
            .read(li(0))
            .write(li(2))
            .build();
        let phys = c.translate_txn(&t).unwrap();
        let reads: Vec<_> = phys.iter().filter(|p| p.mode.is_read()).collect();
        let writes: Vec<_> = phys.iter().filter(|p| p.mode.is_write()).collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].item.site, SiteId(1), "read-one picks local copy");
        assert_eq!(writes.len(), 3, "write-all hits every copy");
    }

    #[test]
    fn add_item_dedups_holders_and_learns_sites() {
        let mut c = Catalog::new(vec![]);
        c.add_item(li(0), vec![SiteId(2), SiteId(0), SiteId(2)]);
        assert_eq!(c.holders(li(0)).unwrap(), &[SiteId(0), SiteId(2)]);
        assert_eq!(c.sites(), &[SiteId(0), SiteId(2)]);
    }

    #[test]
    fn origin_for_is_stable_round_robin() {
        let c = Catalog::generate(4, 1, ReplicationPolicy::SingleCopy);
        assert_eq!(c.origin_for(TxnId(0)), SiteId(0));
        assert_eq!(c.origin_for(TxnId(5)), SiteId(1));
        assert_eq!(c.origin_for(TxnId(7)), SiteId(3));
    }
}
