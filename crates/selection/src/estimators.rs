//! Closed-form per-protocol STL estimators (paper, Section 5.2).
//!
//! For a transaction `t` with `m(t)` reads and `n(t)` writes, the initial
//! throughput loss once it holds all of its locks is
//!
//! ```text
//! Λ_t = Σ_reads λ_w(D(r_i))  +  Σ_writes (λ_w(D(q_i)) + λ_r(D(q_i)))
//! ```
//!
//! (a read lock blocks writers of that item; a write lock blocks everyone).
//! The per-protocol estimators then combine `STL'` evaluations over the
//! measured lock-hold times with the measured abort / rejection / backoff
//! probabilities:
//!
//! * **2PL**  `STL_2PL = STL'(Λ_t, U_2PL) + P_A/(1−P_A) · STL'(Λ_t, U'_2PL)`
//!   (a deadlock victim wastes `U'_2PL` of blocking and then tries again);
//! * **T/O**  with `p_ok = (1−P_r)^m (1−P'_w)^n`:
//!   `STL_T/O = STL'(Λ_t, U_T/O) + (1−p_ok)/p_ok · STL'(Λ*_t, U'_T/O)`,
//!   where `Λ*_t` is the conditional loss given that at least one request was
//!   rejected, obtained from the balance equation in the paper;
//! * **PA**   with `p_ok = (1−P_B)^m (1−P'_B)^n`:
//!   `STL_PA = STL'(Λ_t, U_PA) + (1−p_ok) · STL'(Λ⁺_t, U'_PA)`
//!   (PA never restarts; a backoff only adds one extra negotiation period).

use crate::stl::StlModel;

/// The shape of the transaction being costed: the per-item throughputs of the
/// items it reads and writes (λ_r(j), λ_w(j) in grants per second).
#[derive(Debug, Clone, Default)]
pub struct TxnShape {
    /// `(λ_r(j), λ_w(j))` of each item in the read set.
    pub read_items: Vec<(f64, f64)>,
    /// `(λ_r(j), λ_w(j))` of each item in the write set.
    pub write_items: Vec<(f64, f64)>,
}

impl TxnShape {
    /// Number of read requests, `m(t)`.
    pub fn m(&self) -> usize {
        self.read_items.len()
    }

    /// Number of write requests, `n(t)`.
    pub fn n(&self) -> usize {
        self.write_items.len()
    }

    /// The unconditional initial loss Λ_t.
    pub fn lambda_t(&self) -> f64 {
        self.summary().lambda_t()
    }

    /// Collapse the shape to the four quantities the estimators consume.
    pub fn summary(&self) -> ShapeSummary {
        ShapeSummary::of(self)
    }
}

/// A [`TxnShape`] collapsed to the four numbers the estimators actually
/// depend on: the request counts `m(t)` / `n(t)` and the aggregate initial
/// losses of the read and write sets. Two shapes with equal summaries
/// produce bit-identical estimates under every protocol — the property the
/// selection cache's memoization keys rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeSummary {
    /// Number of read requests, `m(t)`.
    pub m: usize,
    /// Number of write requests, `n(t)`.
    pub n: usize,
    /// `Σ_reads λ_w(D(r_i))`: the loss a read lock on each item inflicts.
    pub read_loss: f64,
    /// `Σ_writes (λ_r(D(q_i)) + λ_w(D(q_i)))`: the loss from write locks.
    pub write_loss: f64,
}

impl ShapeSummary {
    /// Summarise a full shape.
    pub fn of(shape: &TxnShape) -> ShapeSummary {
        ShapeSummary {
            m: shape.read_items.len(),
            n: shape.write_items.len(),
            read_loss: shape.read_items.iter().map(|&(_, lw)| lw).sum(),
            write_loss: shape.write_items.iter().map(|&(lr, lw)| lr + lw).sum(),
        }
    }

    /// The unconditional initial loss Λ_t.
    pub fn lambda_t(&self) -> f64 {
        self.read_loss + self.write_loss
    }

    /// The expected per-request loss with each request weighted by its
    /// probability of being accepted: used in the Λ*/Λ⁺ balance equations.
    fn weighted_loss(&self, p_read_ok: f64, p_write_ok: f64) -> f64 {
        p_read_ok * self.read_loss + p_write_ok * self.write_loss
    }

    /// The conditional loss given that at least one request was denied:
    /// solves `weighted = (1 − p_ok)·Λ* + p_ok·Λ_t` for Λ*, clamped at ≥ 0.
    fn conditional_loss(&self, p_read_ok: f64, p_write_ok: f64) -> f64 {
        let p_ok = p_read_ok.powi(self.m as i32) * p_write_ok.powi(self.n as i32);
        if p_ok >= 1.0 - 1e-12 {
            return self.lambda_t();
        }
        let weighted = self.weighted_loss(p_read_ok, p_write_ok);
        ((weighted - p_ok * self.lambda_t()) / (1.0 - p_ok)).max(0.0)
    }
}

/// Measured parameters of one protocol, as collected by the metrics layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolParams {
    /// Mean lock-hold time of a request whose transaction was not aborted /
    /// not backed off (seconds): `U_2PL`, `U_T/O` or `U_PA`.
    pub u_ok: f64,
    /// Mean lock-hold (or blocking) time of a request whose transaction was
    /// aborted (2PL, T/O) or backed off (PA), in seconds.
    pub u_denied: f64,
    /// 2PL: probability that a transaction aborts due to deadlock (`P_A`).
    /// Unused by the other estimators.
    pub p_abort: f64,
    /// T/O: `P_r` (read rejection); PA: `P_B` (read backoff).
    pub p_read_denial: f64,
    /// T/O: `P'_w` (write rejection); PA: `P'_B` (write backoff).
    pub p_write_denial: f64,
}

impl Default for ProtocolParams {
    fn default() -> Self {
        ProtocolParams {
            u_ok: 0.0,
            u_denied: 0.0,
            p_abort: 0.0,
            p_read_denial: 0.0,
            p_write_denial: 0.0,
        }
    }
}

fn clamp_prob(p: f64) -> f64 {
    if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Estimated STL if the transaction runs under 2PL.
pub fn stl_2pl(model: &StlModel, shape: &TxnShape, params: &ProtocolParams) -> f64 {
    stl_2pl_summary(model, &shape.summary(), params)
}

/// [`stl_2pl`] on a pre-computed summary.
pub fn stl_2pl_summary(model: &StlModel, summary: &ShapeSummary, params: &ProtocolParams) -> f64 {
    let lambda_t = summary.lambda_t();
    let p_a = clamp_prob(params.p_abort);
    let base = model.stl_prime(lambda_t, params.u_ok);
    if p_a >= 1.0 - 1e-9 {
        // The transaction essentially never gets through: the loss is
        // unbounded in the model; report a very large value so 2PL is never
        // selected in this regime.
        return f64::MAX / 4.0;
    }
    base + p_a / (1.0 - p_a) * model.stl_prime(lambda_t, params.u_denied)
}

/// Estimated STL if the transaction runs under Basic T/O.
pub fn stl_to(model: &StlModel, shape: &TxnShape, params: &ProtocolParams) -> f64 {
    stl_to_summary(model, &shape.summary(), params)
}

/// [`stl_to`] on a pre-computed summary.
pub fn stl_to_summary(model: &StlModel, summary: &ShapeSummary, params: &ProtocolParams) -> f64 {
    let p_read_ok = 1.0 - clamp_prob(params.p_read_denial);
    let p_write_ok = 1.0 - clamp_prob(params.p_write_denial);
    let p_ok = p_read_ok.powi(summary.m as i32) * p_write_ok.powi(summary.n as i32);
    let lambda_t = summary.lambda_t();
    let base = model.stl_prime(lambda_t, params.u_ok);
    if p_ok <= 1e-9 {
        return f64::MAX / 4.0;
    }
    let lambda_star = summary.conditional_loss(p_read_ok, p_write_ok);
    base + (1.0 - p_ok) / p_ok * model.stl_prime(lambda_star, params.u_denied)
}

/// Estimated STL if the transaction runs under PA.
pub fn stl_pa(model: &StlModel, shape: &TxnShape, params: &ProtocolParams) -> f64 {
    stl_pa_summary(model, &shape.summary(), params)
}

/// [`stl_pa`] on a pre-computed summary.
pub fn stl_pa_summary(model: &StlModel, summary: &ShapeSummary, params: &ProtocolParams) -> f64 {
    let p_read_ok = 1.0 - clamp_prob(params.p_read_denial);
    let p_write_ok = 1.0 - clamp_prob(params.p_write_denial);
    let p_ok = p_read_ok.powi(summary.m as i32) * p_write_ok.powi(summary.n as i32);
    let lambda_t = summary.lambda_t();
    let lambda_plus = summary.conditional_loss(p_read_ok, p_write_ok);
    // PA never restarts: the base term is always paid, and with probability
    // (1 − p_ok) one extra backoff-negotiation period of loss is added.
    model.stl_prime(lambda_t, params.u_ok)
        + (1.0 - p_ok) * model.stl_prime(lambda_plus, params.u_denied)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> StlModel {
        StlModel {
            lambda_a: 120.0,
            lambda_r: 6.0,
            lambda_w: 4.0,
            q_r: 0.6,
            k: 4.0,
        }
    }

    fn shape(reads: usize, writes: usize) -> TxnShape {
        TxnShape {
            read_items: vec![(6.0, 4.0); reads],
            write_items: vec![(6.0, 4.0); writes],
        }
    }

    #[test]
    fn lambda_t_adds_read_and_write_losses() {
        let s = shape(2, 1);
        // reads: 2 × λ_w = 8; writes: 1 × (λ_r + λ_w) = 10.
        assert!((s.lambda_t() - 18.0).abs() < 1e-12);
        assert_eq!(s.m(), 2);
        assert_eq!(s.n(), 1);
    }

    #[test]
    fn conditional_loss_equals_unconditional_when_never_denied() {
        let s = shape(2, 2).summary();
        assert!((s.conditional_loss(1.0, 1.0) - s.lambda_t()).abs() < 1e-12);
    }

    #[test]
    fn conditional_loss_is_smaller_when_denials_remove_requests() {
        // With some requests denied, the conditional loss (locks actually
        // granted before the denial) is below the full Λ_t.
        let s = shape(3, 3).summary();
        let cond = s.conditional_loss(0.7, 0.7);
        assert!(cond < s.lambda_t());
        assert!(cond >= 0.0);
    }

    #[test]
    fn summary_collapses_shape_to_aggregate_losses() {
        let s = shape(2, 3);
        let sum = s.summary();
        assert_eq!(sum.m, 2);
        assert_eq!(sum.n, 3);
        // reads: 2 × λ_w = 8; writes: 3 × (λ_r + λ_w) = 30.
        assert!((sum.read_loss - 8.0).abs() < 1e-12);
        assert!((sum.write_loss - 30.0).abs() < 1e-12);
        assert_eq!(sum.lambda_t(), s.lambda_t());
    }

    #[test]
    fn summary_estimators_match_shape_estimators_bit_for_bit() {
        let m = model();
        let s = shape(3, 2);
        let sum = s.summary();
        let p = ProtocolParams {
            u_ok: 0.05,
            u_denied: 0.08,
            p_abort: 0.1,
            p_read_denial: 0.2,
            p_write_denial: 0.3,
        };
        assert_eq!(
            stl_2pl(&m, &s, &p).to_bits(),
            stl_2pl_summary(&m, &sum, &p).to_bits()
        );
        assert_eq!(
            stl_to(&m, &s, &p).to_bits(),
            stl_to_summary(&m, &sum, &p).to_bits()
        );
        assert_eq!(
            stl_pa(&m, &s, &p).to_bits(),
            stl_pa_summary(&m, &sum, &p).to_bits()
        );
    }

    #[test]
    fn stl_2pl_grows_with_abort_probability() {
        let m = model();
        let s = shape(2, 2);
        let p0 = ProtocolParams {
            u_ok: 0.05,
            u_denied: 0.08,
            p_abort: 0.0,
            ..Default::default()
        };
        let p_low = ProtocolParams {
            p_abort: 0.05,
            ..p0
        };
        let p_high = ProtocolParams { p_abort: 0.4, ..p0 };
        let v0 = stl_2pl(&m, &s, &p0);
        let v1 = stl_2pl(&m, &s, &p_low);
        let v2 = stl_2pl(&m, &s, &p_high);
        assert!(v0 < v1 && v1 < v2, "{v0} {v1} {v2}");
        // Certain deadlock ⇒ effectively infinite cost.
        let v3 = stl_2pl(&m, &s, &ProtocolParams { p_abort: 1.0, ..p0 });
        assert!(v3 > 1e100);
    }

    #[test]
    fn stl_to_grows_with_rejection_probability_and_txn_size() {
        let m = model();
        let base = ProtocolParams {
            u_ok: 0.05,
            u_denied: 0.05,
            p_read_denial: 0.1,
            p_write_denial: 0.1,
            ..Default::default()
        };
        let small = stl_to(&m, &shape(1, 1), &base);
        let large = stl_to(&m, &shape(4, 4), &base);
        assert!(
            large > 4.0 * small,
            "restart probability compounds with size: {small} vs {large}"
        );
        let low_rej = stl_to(
            &m,
            &shape(2, 2),
            &ProtocolParams {
                p_read_denial: 0.01,
                p_write_denial: 0.01,
                ..base
            },
        );
        let high_rej = stl_to(
            &m,
            &shape(2, 2),
            &ProtocolParams {
                p_read_denial: 0.4,
                p_write_denial: 0.4,
                ..base
            },
        );
        assert!(high_rej > low_rej);
        // Certain rejection ⇒ effectively infinite cost.
        let never = stl_to(
            &m,
            &shape(2, 2),
            &ProtocolParams {
                p_read_denial: 1.0,
                p_write_denial: 1.0,
                ..base
            },
        );
        assert!(never > 1e100);
    }

    #[test]
    fn stl_pa_pays_backoff_once_not_recursively() {
        let m = model();
        let params = ProtocolParams {
            u_ok: 0.05,
            u_denied: 0.05,
            p_read_denial: 0.5,
            p_write_denial: 0.5,
            ..Default::default()
        };
        let s = shape(3, 3);
        let pa = stl_pa(&m, &s, &params);
        let to = stl_to(&m, &s, &params);
        assert!(
            pa < to,
            "with equal denial probabilities PA (no restart) must cost less: {pa} vs {to}"
        );
        assert!(pa.is_finite());
    }

    #[test]
    fn zero_probabilities_make_all_three_equal_baseline() {
        // With no aborts/rejections/backoffs and identical hold times the
        // three estimators agree: they all reduce to STL'(Λ_t, U).
        let m = model();
        let s = shape(2, 1);
        let p = ProtocolParams {
            u_ok: 0.07,
            u_denied: 0.0,
            ..Default::default()
        };
        let a = stl_2pl(&m, &s, &p);
        let b = stl_to(&m, &s, &p);
        let c = stl_pa(&m, &s, &p);
        assert!((a - b).abs() < 1e-9);
        assert!((b - c).abs() < 1e-9);
    }

    #[test]
    fn longer_hold_times_cost_more_for_every_protocol() {
        let m = model();
        let s = shape(2, 2);
        let short = ProtocolParams {
            u_ok: 0.02,
            u_denied: 0.02,
            p_abort: 0.1,
            p_read_denial: 0.1,
            p_write_denial: 0.1,
        };
        let long = ProtocolParams {
            u_ok: 0.2,
            u_denied: 0.2,
            ..short
        };
        assert!(stl_2pl(&m, &s, &long) > stl_2pl(&m, &s, &short));
        assert!(stl_to(&m, &s, &long) > stl_to(&m, &s, &short));
        assert!(stl_pa(&m, &s, &long) > stl_pa(&m, &s, &short));
    }
}
