//! # selection — the System-Throughput-Loss (STL) model and the dynamic
//! concurrency-control selector (paper, Section 5)
//!
//! The paper rejects picking the protocol that minimises a transaction's own
//! system time (it is biased towards 2PL, which shortens its own latency by
//! degrading everyone else) and instead estimates, for each candidate
//! protocol, the **system throughput loss** the new transaction would inflict
//! while it holds its locks. The protocol with the smallest estimated STL is
//! chosen.
//!
//! * [`stl`] — the recursive `STL'(λ_loss, U)` function evaluated with the
//!   dynamic-programming scheme the paper suggests (level/τ grid), plus the
//!   `λ_block` / `λ_new` auxiliaries.
//! * [`estimators`] — the closed-form per-protocol estimators
//!   `STL_2PL`, `STL_T/O`, `STL_PA` built from measured parameters
//!   (abort/rejection/backoff probabilities, mean lock-hold times).
//! * [`selector`] — [`selector::StlSelector`], which pulls those parameters
//!   from a [`metrics::SimMetrics`] and picks the method for each incoming
//!   transaction, with a round-robin warm-up while estimates are still
//!   unreliable.
//! * [`cache`] — [`cache::CachedStlSelector`], the amortized variant: the
//!   model and parameters are frozen into an [`cache::EpochSnapshot`]
//!   refreshed every N commits (or on workload drift), and decisions are
//!   memoized per quantized transaction shape — provably identical to
//!   fresh STL′ evaluation within an epoch.

pub mod cache;
pub mod confluence;
pub mod estimators;
pub mod selector;
pub mod stl;

pub use cache::{
    CacheSettings, CacheStats, CachedStlSelector, EpochSnapshot, RoutedDecision, SelectionCache,
    ShapeKey, WorkloadSignal,
};
pub use confluence::{classify, is_read_only, Confluence, OpProfile, FAST_PATH_MAX_OPS};
pub use estimators::{
    stl_2pl, stl_2pl_summary, stl_pa, stl_pa_summary, stl_to, stl_to_summary, ProtocolParams,
    ShapeSummary, TxnShape,
};
pub use selector::{
    evaluate_decision, exploratory_decision, is_exploration_round, MethodParamSet,
    SelectionDecision, StlSelector,
};
pub use stl::StlModel;
