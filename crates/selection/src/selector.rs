//! The per-transaction dynamic selector.
//!
//! [`StlSelector`] pulls the STL model parameters and the per-protocol
//! statistics out of a [`SimMetrics`] collection, evaluates the three
//! estimators for the incoming transaction, and returns the method with the
//! smallest estimated system throughput loss.
//!
//! Two practical details the paper leaves open are handled explicitly:
//!
//! * **Warm-up** — while fewer than `warmup_commits` transactions have
//!   committed under a method, its statistics are too noisy to trust; the
//!   selector cycles through the three methods round-robin so every protocol
//!   keeps collecting fresh measurements (this also implements the paper's
//!   suggestion that parameters "be collected periodically").
//! * **Exploration** — after warm-up a small fraction (`explore_every`) of
//!   transactions is still assigned round-robin, so the estimates of
//!   currently-unselected protocols do not go stale.

use dbmodel::{Catalog, CcMethod, Transaction};
use metrics::SimMetrics;

use crate::estimators::{
    stl_2pl_summary, stl_pa_summary, stl_to_summary, ProtocolParams, ShapeSummary, TxnShape,
};
use crate::stl::StlModel;

/// The outcome of one selection, including the estimated costs (for
/// reporting and for the selection experiment E6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionDecision {
    /// The method chosen.
    pub method: CcMethod,
    /// Estimated STL under 2PL.
    pub stl_2pl: f64,
    /// Estimated STL under T/O.
    pub stl_to: f64,
    /// Estimated STL under PA.
    pub stl_pa: f64,
    /// True if the decision was a warm-up / exploration round-robin pick
    /// rather than a cost-based one.
    pub exploratory: bool,
}

/// The measured [`ProtocolParams`] of all three protocols, bundled so one
/// metrics read serves a whole selection (and, for the cached selector, a
/// whole epoch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodParamSet {
    /// Parameters measured for 2PL.
    pub p2pl: ProtocolParams,
    /// Parameters measured for Basic T/O.
    pub to: ProtocolParams,
    /// Parameters measured for PA.
    pub pa: ProtocolParams,
}

impl MethodParamSet {
    /// Measure the current parameters of every protocol.
    pub fn measure(metrics: &SimMetrics) -> MethodParamSet {
        MethodParamSet {
            p2pl: StlSelector::params_for(metrics, CcMethod::TwoPhaseLocking),
            to: StlSelector::params_for(metrics, CcMethod::TimestampOrdering),
            pa: StlSelector::params_for(metrics, CcMethod::PrecedenceAgreement),
        }
    }
}

/// True when the `counter`-th selection is an exploration round
/// (`explore_every` of 0 disables exploration).
pub fn is_exploration_round(counter: u64, explore_every: u64) -> bool {
    explore_every > 0 && counter.is_multiple_of(explore_every)
}

/// The exploratory (warm-up / exploration) decision for the `counter`-th
/// selection: round-robin over the three methods, costs unknown.
pub fn exploratory_decision(counter: u64) -> SelectionDecision {
    SelectionDecision {
        method: CcMethod::ALL[(counter % 3) as usize],
        stl_2pl: f64::NAN,
        stl_to: f64::NAN,
        stl_pa: f64::NAN,
        exploratory: true,
    }
}

/// Cost-evaluate the three protocols for one transaction summary and pick
/// the cheapest — the pure core shared by the fresh [`StlSelector`] and the
/// cached selector, so both produce bit-identical decisions from identical
/// inputs.
pub fn evaluate_decision(
    model: &StlModel,
    summary: &ShapeSummary,
    params: &MethodParamSet,
) -> SelectionDecision {
    let cost_2pl = stl_2pl_summary(model, summary, &params.p2pl);
    let cost_to = stl_to_summary(model, summary, &params.to);
    let cost_pa = stl_pa_summary(model, summary, &params.pa);

    let method = if cost_2pl <= cost_to && cost_2pl <= cost_pa {
        CcMethod::TwoPhaseLocking
    } else if cost_to <= cost_pa {
        CcMethod::TimestampOrdering
    } else {
        CcMethod::PrecedenceAgreement
    };
    SelectionDecision {
        method,
        stl_2pl: cost_2pl,
        stl_to: cost_to,
        stl_pa: cost_pa,
        exploratory: false,
    }
}

/// Dynamic concurrency-control selector based on the STL criterion.
#[derive(Debug, Clone)]
pub struct StlSelector {
    /// Commits per method required before its estimates are trusted.
    pub warmup_commits: u64,
    /// After warm-up, every `explore_every`-th transaction is assigned
    /// round-robin regardless of cost (0 disables exploration).
    pub explore_every: u64,
    counter: u64,
}

impl Default for StlSelector {
    fn default() -> Self {
        StlSelector {
            warmup_commits: 30,
            explore_every: 20,
            counter: 0,
        }
    }
}

impl StlSelector {
    /// Create a selector with the default warm-up and exploration settings.
    pub fn new() -> Self {
        StlSelector::default()
    }

    /// Create a selector with explicit warm-up / exploration settings.
    pub fn with_settings(warmup_commits: u64, explore_every: u64) -> Self {
        StlSelector {
            warmup_commits,
            explore_every,
            counter: 0,
        }
    }

    /// Choose the concurrency-control method for `txn`.
    pub fn select(
        &mut self,
        txn: &Transaction,
        catalog: &Catalog,
        metrics: &SimMetrics,
    ) -> SelectionDecision {
        self.counter += 1;
        if !Self::warmed_up(metrics, self.warmup_commits)
            || is_exploration_round(self.counter, self.explore_every)
        {
            return exploratory_decision(self.counter);
        }

        let model = Self::model_from_metrics(metrics);
        let summary = Self::shape_for(txn, catalog, metrics).summary();
        let params = MethodParamSet::measure(metrics);
        evaluate_decision(&model, &summary, &params)
    }

    /// True once every method has committed at least `warmup_commits`
    /// transactions, i.e. its measured parameters are trustworthy.
    pub fn warmed_up(metrics: &SimMetrics, warmup_commits: u64) -> bool {
        CcMethod::ALL
            .iter()
            .all(|&m| metrics.method(m).committed.get() >= warmup_commits)
    }

    /// Build the system-wide STL model from measured rates.
    pub fn model_from_metrics(metrics: &SimMetrics) -> StlModel {
        let commit_rate = metrics.commit_throughput();
        let k = if commit_rate > 0.0 {
            (metrics.system_throughput() / commit_rate).max(1.0)
        } else {
            1.0
        };
        StlModel {
            lambda_a: metrics.system_throughput(),
            lambda_r: metrics.avg_read_throughput(),
            lambda_w: metrics.avg_write_throughput(),
            q_r: metrics.read_fraction(),
            k,
        }
    }

    /// Build the per-item loss shape for a transaction (read-one at the
    /// origin site, write-all over the item's copies).
    pub fn shape_for(txn: &Transaction, catalog: &Catalog, metrics: &SimMetrics) -> TxnShape {
        let mut shape = TxnShape::default();
        for &item in txn.read_set() {
            if let Ok(copy) = catalog.read_copy(item, txn.origin) {
                shape.read_items.push((
                    metrics.read_throughput(copy),
                    metrics.write_throughput(copy),
                ));
            }
        }
        for &item in txn.write_set() {
            if let Ok(copies) = catalog.physical_copies(item) {
                let (mut lr, mut lw) = (0.0, 0.0);
                for copy in copies {
                    lr += metrics.read_throughput(copy);
                    lw += metrics.write_throughput(copy);
                }
                shape.write_items.push((lr, lw));
            }
        }
        shape
    }

    /// Extract the measured parameters of one protocol.
    pub fn params_for(metrics: &SimMetrics, method: CcMethod) -> ProtocolParams {
        let stats = metrics.method(method);
        let u_ok = stats.lock_time_ok.mean();
        let u_denied = if stats.lock_time_aborted.count() > 0 {
            stats.lock_time_aborted.mean()
        } else {
            u_ok
        };
        ProtocolParams {
            u_ok,
            u_denied,
            p_abort: stats.deadlock_abort_prob(),
            p_read_denial: stats.read_denial_prob(),
            p_write_denial: stats.write_denial_prob(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{AccessMode, LogicalItemId, PhysicalItemId, ReplicationPolicy, SiteId, TxnId};
    use metrics::TxnOutcome;
    use simkit::time::{Duration, SimTime};

    fn catalog() -> Catalog {
        Catalog::generate(2, 10, ReplicationPolicy::SingleCopy)
    }

    fn txn(id: u64, reads: &[u64], writes: &[u64]) -> Transaction {
        let mut b = Transaction::builder(TxnId(id), SiteId(0));
        for &r in reads {
            b = b.read(LogicalItemId(r));
        }
        for &w in writes {
            b = b.write(LogicalItemId(w));
        }
        b.build()
    }

    /// Populate metrics so that all three methods look warmed up, with the
    /// given per-method tuning.
    fn warmed_metrics(tune: impl Fn(CcMethod, &mut SimMetrics)) -> SimMetrics {
        let mut m = SimMetrics::new();
        m.set_time_span(SimTime::ZERO, SimTime::from_secs(100));
        for &method in &CcMethod::ALL {
            for _ in 0..50 {
                m.record_commit(method, Duration::from_millis(40));
                m.record_lock_hold(method, Duration::from_millis(30), false);
            }
            tune(method, &mut m);
        }
        for i in 0..10u64 {
            for _ in 0..200 {
                m.record_grant(
                    PhysicalItemId::new(LogicalItemId(i), SiteId((i % 2) as u32)),
                    if i % 3 == 0 {
                        AccessMode::Write
                    } else {
                        AccessMode::Read
                    },
                );
            }
        }
        m
    }

    #[test]
    fn warmup_cycles_round_robin() {
        let mut sel = StlSelector::with_settings(1000, 0);
        let metrics = SimMetrics::new();
        let cat = catalog();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..6 {
            let d = sel.select(&txn(i, &[1], &[2]), &cat, &metrics);
            assert!(d.exploratory);
            seen.insert(d.method);
        }
        assert_eq!(seen.len(), 3, "warm-up must exercise every method");
    }

    #[test]
    fn selects_away_from_deadlock_prone_2pl() {
        let metrics = warmed_metrics(|method, m| {
            if method == CcMethod::TwoPhaseLocking {
                for _ in 0..40 {
                    m.record_restart(method, TxnOutcome::DeadlockRestart);
                    m.record_lock_hold(method, Duration::from_millis(200), true);
                }
            }
        });
        let mut sel = StlSelector::with_settings(10, 0);
        let d = sel.select(&txn(1, &[1, 2], &[3]), &catalog(), &metrics);
        assert!(!d.exploratory);
        assert_ne!(d.method, CcMethod::TwoPhaseLocking);
        assert!(d.stl_2pl > d.stl_to.min(d.stl_pa));
    }

    #[test]
    fn selects_away_from_rejection_prone_to_for_large_txns() {
        let metrics = warmed_metrics(|method, m| {
            if method == CcMethod::TimestampOrdering {
                for _ in 0..60 {
                    m.record_request_outcome(method, AccessMode::Read, true);
                    m.record_request_outcome(method, AccessMode::Write, true);
                }
                for _ in 0..40 {
                    m.record_request_outcome(method, AccessMode::Read, false);
                    m.record_request_outcome(method, AccessMode::Write, false);
                }
                for _ in 0..30 {
                    m.record_restart(method, TxnOutcome::RejectedRestart);
                    m.record_lock_hold(method, Duration::from_millis(100), true);
                }
            }
        });
        let mut sel = StlSelector::with_settings(10, 0);
        let big = txn(1, &[1, 2, 3, 4], &[5, 6, 7, 8]);
        let d = sel.select(&big, &catalog(), &metrics);
        assert!(!d.exploratory);
        assert_ne!(d.method, CcMethod::TimestampOrdering);
        assert!(d.stl_to > d.stl_2pl.min(d.stl_pa));
    }

    #[test]
    fn exploration_interleaves_after_warmup() {
        let metrics = warmed_metrics(|_, _| {});
        let mut sel = StlSelector::with_settings(10, 4);
        let cat = catalog();
        let mut exploratory = 0;
        for i in 0..40 {
            let d = sel.select(&txn(i, &[1], &[2]), &cat, &metrics);
            if d.exploratory {
                exploratory += 1;
            }
        }
        assert_eq!(exploratory, 10, "every 4th decision explores");
    }

    #[test]
    fn model_from_metrics_reflects_rates() {
        let metrics = warmed_metrics(|_, _| {});
        let model = StlSelector::model_from_metrics(&metrics);
        assert!(model.lambda_a > 0.0);
        assert!(model.q_r > 0.0 && model.q_r < 1.0);
        assert!(model.k >= 1.0);
        let empty = SimMetrics::new();
        let model = StlSelector::model_from_metrics(&empty);
        assert_eq!(model.lambda_a, 0.0);
        assert_eq!(model.k, 1.0);
    }

    #[test]
    fn shape_uses_read_one_write_all() {
        let metrics = warmed_metrics(|_, _| {});
        let cat = catalog();
        let t = txn(1, &[0], &[1, 2]);
        let shape = StlSelector::shape_for(&t, &cat, &metrics);
        assert_eq!(shape.m(), 1);
        assert_eq!(shape.n(), 2);
        assert!(shape.lambda_t() > 0.0);
    }

    #[test]
    fn params_fall_back_to_ok_time_when_no_aborts_measured() {
        let metrics = warmed_metrics(|_, _| {});
        let p = StlSelector::params_for(&metrics, CcMethod::PrecedenceAgreement);
        assert!(p.u_ok > 0.0);
        assert_eq!(p.u_ok, p.u_denied);
        assert_eq!(p.p_abort, 0.0);
    }
}
