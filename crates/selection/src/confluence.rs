//! Invariant-confluence classification: which transaction shapes may skip
//! queue-manager coordination entirely.
//!
//! Bailis et al.'s coordination-avoidance result (see PAPERS.md) proves
//! that operations whose effects are *invariant confluent* — any
//! interleaving of their per-item applications preserves the registered
//! invariants and admits a serial order — need no grants, no precedence
//! entries and no deadlock exposure. For this engine the provable shapes
//! are:
//!
//! * **commutative single-item increments/decrements** (`add` ops):
//!   `x += a; x += b` reaches the same state in either order;
//! * **disjoint-key blind writes** (`put` ops): last-writer-wins on an
//!   item nobody is coordinating over;
//! * **read-only transactions** over items with no in-flight writers.
//!
//! Classification is deliberately a *pure* function of the transaction's
//! [`OpProfile`] and its read/write-set sizes — never of the quantized
//! loss estimates that share the [`crate::ShapeKey`] grid. Every summary
//! that quantizes to the same key therefore classifies identically, so a
//! memoized routing decision can never flip a transaction onto a bypass
//! its fresh evaluation would refuse (the property-tested contract).
//!
//! The classifier only decides *eligibility*. The dynamic safety half —
//! "no in-flight writers", "nobody is coordinating over this key" — is
//! checked by the owning queue manager at apply time, which refuses the
//! bypass whenever a touched slot has queued or granted coordinated work.

/// Bit-set of the operation kinds one transaction performs. The raw `u8`
/// is embedded verbatim in the [`crate::ShapeKey`] memoization grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpProfile(u8);

impl OpProfile {
    /// Plain reads (the transaction's read set).
    pub const READS: OpProfile = OpProfile(1);
    /// Commutative increments/decrements (`add` ops).
    pub const ADDS: OpProfile = OpProfile(1 << 1);
    /// Blind absolute writes (`put` ops).
    pub const PUTS: OpProfile = OpProfile(1 << 2);
    /// Read-modify-write writes: items whose new value is computed from
    /// values observed under coordination. Never confluent.
    pub const RMW_WRITES: OpProfile = OpProfile(1 << 3);

    /// The profile of a transaction performing none of the known op kinds.
    pub const fn empty() -> OpProfile {
        OpProfile(0)
    }

    /// Union with another profile.
    #[must_use]
    pub const fn with(self, other: OpProfile) -> OpProfile {
        OpProfile(self.0 | other.0)
    }

    /// True when every bit of `other` is set in `self`.
    pub const fn contains(self, other: OpProfile) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when no op kind is recorded.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bit pattern (what the [`crate::ShapeKey`] stores).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Rebuild a profile from its raw bit pattern.
    pub const fn from_bits(raw: u8) -> OpProfile {
        OpProfile(raw)
    }
}

/// How a classified transaction is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confluence {
    /// Through the queue managers: grants, precedence, the full protocol.
    Coordinated,
    /// Around them: a single direct apply at the owning shard, subject to
    /// the queue manager's at-apply refusal check.
    ConfluentFastPath,
}

/// Largest read+write footprint eligible for the fast path. A bypass
/// apply holds the shard thread for the whole transaction; bounding the
/// footprint bounds the latency it can impose on queued coordinated work.
pub const FAST_PATH_MAX_OPS: usize = 16;

/// Classify a transaction shape: `profile` says which op kinds it
/// performs, `reads`/`writes` are its read- and write-set sizes.
///
/// Pure in `(profile, reads, writes)` by construction — the quantized
/// loss buckets a [`crate::ShapeKey`] carries play no part, so all
/// representatives of one key agree.
pub fn classify(profile: OpProfile, reads: usize, writes: usize) -> Confluence {
    if profile.is_empty() || profile.contains(OpProfile::RMW_WRITES) {
        return Confluence::Coordinated;
    }
    if reads + writes > FAST_PATH_MAX_OPS {
        return Confluence::Coordinated;
    }
    Confluence::ConfluentFastPath
}

/// True when the shape is a pure read-only transaction: it performs reads
/// and nothing else. Such a transaction can be served from the versioned
/// snapshot plane at the global read watermark without any coordination at
/// all — no grants, no wait edges, no restart exposure — because a
/// watermark read observes only fully committed state.
///
/// Pure in `(profile, reads, writes)` like [`classify`], and for the same
/// reason: every summary quantizing to one [`crate::ShapeKey`] must agree,
/// so a memoized snapshot routing can never disagree with a fresh one.
/// Unlike the fast path there is no footprint bound — a snapshot read
/// holds no locks and blocks nobody, so its size only costs itself.
pub fn is_read_only(profile: OpProfile, reads: usize, writes: usize) -> bool {
    profile == OpProfile::READS && writes == 0 && reads > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_shapes_are_confluent() {
        // Read-only, increment-only, blind-put-only, and their mixes.
        assert_eq!(
            classify(OpProfile::READS, 4, 0),
            Confluence::ConfluentFastPath
        );
        assert_eq!(
            classify(OpProfile::ADDS, 0, 2),
            Confluence::ConfluentFastPath
        );
        assert_eq!(
            classify(OpProfile::PUTS, 0, 3),
            Confluence::ConfluentFastPath
        );
        assert_eq!(
            classify(OpProfile::READS.with(OpProfile::ADDS), 2, 2),
            Confluence::ConfluentFastPath
        );
    }

    #[test]
    fn rmw_and_unknown_shapes_stay_coordinated() {
        assert_eq!(
            classify(OpProfile::RMW_WRITES, 0, 2),
            Confluence::Coordinated
        );
        assert_eq!(
            classify(OpProfile::READS.with(OpProfile::RMW_WRITES), 2, 1),
            Confluence::Coordinated,
            "one rmw write poisons the whole transaction"
        );
        assert_eq!(
            classify(OpProfile::empty(), 0, 0),
            Confluence::Coordinated,
            "an empty profile says nothing about the ops — stay safe"
        );
    }

    #[test]
    fn footprint_bound_is_enforced() {
        assert_eq!(
            classify(OpProfile::ADDS, 0, FAST_PATH_MAX_OPS),
            Confluence::ConfluentFastPath
        );
        assert_eq!(
            classify(OpProfile::ADDS, 1, FAST_PATH_MAX_OPS),
            Confluence::Coordinated
        );
    }

    #[test]
    fn read_only_classifier_requires_pure_reads() {
        assert!(is_read_only(OpProfile::READS, 1, 0));
        assert!(is_read_only(OpProfile::READS, 64, 0), "no footprint bound");
        assert!(
            !is_read_only(OpProfile::READS.with(OpProfile::ADDS), 2, 1),
            "any write op kind disqualifies"
        );
        assert!(
            !is_read_only(OpProfile::READS, 2, 1),
            "a write-set entry disqualifies"
        );
        assert!(
            !is_read_only(OpProfile::empty(), 0, 0),
            "empty shape says nothing"
        );
        assert!(
            !is_read_only(OpProfile::READS, 0, 0),
            "zero reads is not a read-only txn"
        );
        assert!(!is_read_only(OpProfile::PUTS, 0, 2));
    }

    #[test]
    fn profile_bits_round_trip() {
        let p = OpProfile::READS.with(OpProfile::PUTS);
        assert_eq!(OpProfile::from_bits(p.bits()), p);
        assert!(p.contains(OpProfile::READS));
        assert!(!p.contains(OpProfile::ADDS));
        assert!(OpProfile::empty().is_empty());
    }
}
