//! The recursive STL′ function (paper, Section 5.1).
//!
//! `STL'(λ_loss, U)` is the expected system throughput loss over a period of
//! `U` seconds that starts with a blocked throughput of `λ_loss` (locks per
//! second that cannot be granted because of the locks the transaction under
//! consideration holds). While the period runs, other requests keep acquiring
//! locks at rate `λ_A − λ_loss`; each such acquisition belongs to a
//! transaction that is itself blocked with probability
//! `1 − (1 − λ_loss/λ_A)^(K−1)` (one of its other `K−1` requests hits a
//! blocked item), in which case the newly locked item becomes unavailable too
//! and the loss rate rises by `λ_new = λ̄_w + (1 − Q_r)·λ̄_r` (a read lock
//! blocks writers, a write lock blocks everyone; averaged over the read
//! fraction).
//!
//! The recursion
//!
//! ```text
//! STL'(λ, U) = λ_A·U                                    if λ ≥ λ_A
//! STL'(λ, U) = e^(−β·U)·λ·U
//!            + ∫₀ᵁ β·e^(−β·x)·(λ·x + STL'(λ + λ_new, U − x)) dx
//! where β = (λ_A − λ)·(1 − (1 − λ/λ_A)^(K−1))
//! ```
//!
//! is evaluated bottom-up on a `(level, time)` grid — the dynamic-programming
//! evaluation the paper refers to — with linear interpolation in the time
//! dimension.

/// System-wide parameters of the STL model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StlModel {
    /// Total system throughput λ_A (lock grants per second over all queues).
    pub lambda_a: f64,
    /// Average per-queue read-lock throughput λ̄_r.
    pub lambda_r: f64,
    /// Average per-queue write-lock throughput λ̄_w.
    pub lambda_w: f64,
    /// Fraction of requests that are reads, Q_r.
    pub q_r: f64,
    /// Average number of requests per transaction, K.
    pub k: f64,
}

impl StlModel {
    /// The loss-rate increment λ_new added each time a blocked transaction
    /// acquires one more lock.
    pub fn lambda_new(&self) -> f64 {
        self.lambda_w + (1.0 - self.q_r) * self.lambda_r
    }

    /// The blocking rate β(λ_loss): the rate at which lock acquisitions by
    /// *blocked* transactions occur when the current loss is `lambda_loss`.
    pub fn lambda_block(&self, lambda_loss: f64) -> f64 {
        if self.lambda_a <= 0.0 {
            return 0.0;
        }
        let loss = lambda_loss.clamp(0.0, self.lambda_a);
        let p_blocked = 1.0 - (1.0 - loss / self.lambda_a).powf((self.k - 1.0).max(0.0));
        (self.lambda_a - loss) * p_blocked
    }

    /// Evaluate `STL'(λ_loss, U)` (throughput-loss · time, i.e. "lost lock
    /// grants") for a blocking period of `u` seconds.
    ///
    /// `u` and `lambda_loss` outside their meaningful ranges are clamped; the
    /// result is always in `[0, λ_A·U]`.
    pub fn stl_prime(&self, lambda_loss: f64, u: f64) -> f64 {
        const TIME_STEPS: usize = 48;
        const MAX_LEVELS: usize = 64;

        if !u.is_finite() || u <= 0.0 || self.lambda_a <= 0.0 {
            return 0.0;
        }
        let lambda_loss = lambda_loss.max(0.0);
        if lambda_loss >= self.lambda_a {
            return self.lambda_a * u;
        }
        let delta = self.lambda_new().max(1e-12);
        // Number of escalation levels before the loss saturates at λ_A.
        let levels = (((self.lambda_a - lambda_loss) / delta).ceil() as usize + 1).min(MAX_LEVELS);
        let dt = u / TIME_STEPS as f64;

        // f[level][i] = STL'(λ_loss + level·Δ, i·dt).
        // Top level (saturated): λ_A · t.
        let mut upper: Vec<f64> = (0..=TIME_STEPS)
            .map(|i| self.lambda_a * (i as f64 * dt))
            .collect();
        for level in (0..levels).rev() {
            let lambda = (lambda_loss + level as f64 * delta).min(self.lambda_a);
            if lambda >= self.lambda_a {
                upper = (0..=TIME_STEPS)
                    .map(|i| self.lambda_a * (i as f64 * dt))
                    .collect();
                continue;
            }
            let beta = self.lambda_block(lambda);
            let mut current = vec![0.0f64; TIME_STEPS + 1];
            // Escalation integral, trapezoid over the grid cells:
            // ∫₀ᵗ β e^{-βx} (λ x + f_upper(t − x)) dx. Evaluated naively this
            // is O(steps) per time point (O(steps²) per level); both pieces
            // admit exact O(1) per-step recurrences, making the whole grid
            // O(levels · steps):
            //   * the λx piece has no dependence on t beyond the upper
            //     limit — a running prefix sum `own` of its trapezoid;
            //   * the f_upper piece is a convolution against e^{-βx}; its
            //     trapezoid satisfies
            //       C_i = e^{-β·dt}·C_{i−1}
            //             + ½·dt·β·(upper[i] + e^{-β·dt}·upper[i−1]),
            //     which reproduces the summed trapezoid exactly (shift the
            //     summation index to see the identity).
            let decay = (-beta * dt).exp();
            let g1 = |x: f64| beta * (-beta * x).exp() * lambda * x;
            let mut own = 0.0f64;
            let mut conv = 0.0f64;
            for i in 1..=TIME_STEPS {
                let t = i as f64 * dt;
                // No-escalation term.
                let mut value = (-beta * t).exp() * lambda * t;
                if beta > 0.0 {
                    own += 0.5 * (g1((i - 1) as f64 * dt) + g1(t)) * dt;
                    conv = decay * conv + 0.5 * dt * beta * (upper[i] + decay * upper[i - 1]);
                    value += own + conv;
                }
                current[i] = value.min(self.lambda_a * t);
            }
            upper = current;
        }
        upper[TIME_STEPS]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> StlModel {
        StlModel {
            lambda_a: 100.0,
            lambda_r: 6.0,
            lambda_w: 4.0,
            q_r: 0.6,
            k: 4.0,
        }
    }

    #[test]
    fn lambda_new_mixes_read_and_write_losses() {
        let m = model();
        // λ_w + (1 − Q_r)·λ_r = 4 + 0.4·6 = 6.4.
        assert!((m.lambda_new() - 6.4).abs() < 1e-12);
    }

    #[test]
    fn lambda_block_is_zero_at_zero_and_at_saturation() {
        let m = model();
        assert_eq!(m.lambda_block(0.0), 0.0);
        assert!(m.lambda_block(m.lambda_a) < 1e-9);
        assert!(m.lambda_block(m.lambda_a * 2.0) < 1e-9, "clamped above λ_A");
        let mid = m.lambda_block(30.0);
        assert!(mid > 0.0 && mid < m.lambda_a);
    }

    #[test]
    fn stl_prime_zero_duration_is_zero() {
        let m = model();
        assert_eq!(m.stl_prime(10.0, 0.0), 0.0);
        assert_eq!(m.stl_prime(10.0, -5.0), 0.0);
        assert_eq!(m.stl_prime(10.0, f64::NAN), 0.0);
    }

    #[test]
    fn stl_prime_saturates_at_lambda_a_times_u() {
        let m = model();
        assert!((m.stl_prime(150.0, 2.0) - 200.0).abs() < 1e-9);
        assert!((m.stl_prime(100.0, 0.5) - 50.0).abs() < 1e-9);
        // Any value is bounded by λ_A·U.
        for loss in [1.0, 10.0, 50.0, 90.0] {
            for u in [0.01, 0.1, 1.0] {
                assert!(m.stl_prime(loss, u) <= m.lambda_a * u + 1e-9);
            }
        }
    }

    #[test]
    fn stl_prime_is_at_least_the_unescalated_loss() {
        // With escalation, loss can only grow beyond λ_loss · U... but the
        // recursion replaces, not adds, during escalated periods, so the true
        // lower bound is the no-escalation term; check monotonicity in λ_loss
        // and U instead, plus a loose lower bound of e^{-βU}·λ·U.
        let m = model();
        let loss = 20.0;
        let u = 0.5;
        let beta = m.lambda_block(loss);
        let lower = (-beta * u).exp() * loss * u;
        assert!(m.stl_prime(loss, u) >= lower - 1e-9);
    }

    #[test]
    fn stl_prime_monotone_in_loss_and_duration() {
        let m = model();
        let mut prev = 0.0;
        for loss in [0.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
            let v = m.stl_prime(loss, 0.2);
            assert!(v + 1e-9 >= prev, "monotone in λ_loss: {v} vs {prev}");
            prev = v;
        }
        let mut prev = 0.0;
        for u in [0.0, 0.05, 0.1, 0.2, 0.4, 0.8] {
            let v = m.stl_prime(15.0, u);
            assert!(v + 1e-9 >= prev, "monotone in U: {v} vs {prev}");
            prev = v;
        }
    }

    #[test]
    fn stl_prime_with_no_contention_is_roughly_linear() {
        // With K = 1 no other transaction is ever blocked (λ_block = 0), so
        // the loss is exactly λ_loss · U.
        let m = StlModel {
            lambda_a: 100.0,
            lambda_r: 5.0,
            lambda_w: 5.0,
            q_r: 0.5,
            k: 1.0,
        };
        let v = m.stl_prime(12.0, 0.3);
        assert!((v - 12.0 * 0.3).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn longer_holds_cause_superlinear_loss_under_contention() {
        // With contention (K large), doubling the hold time more than doubles
        // the loss because escalation compounds.
        let m = StlModel {
            lambda_a: 200.0,
            lambda_r: 10.0,
            lambda_w: 10.0,
            q_r: 0.5,
            k: 8.0,
        };
        let short = m.stl_prime(20.0, 0.2);
        let long = m.stl_prime(20.0, 0.4);
        assert!(
            long > 2.0 * short,
            "escalation should compound: {short} vs {long}"
        );
    }

    #[test]
    fn degenerate_system_throughput_yields_zero() {
        let m = StlModel {
            lambda_a: 0.0,
            lambda_r: 0.0,
            lambda_w: 0.0,
            q_r: 0.5,
            k: 2.0,
        };
        assert_eq!(m.stl_prime(5.0, 1.0), 0.0);
        assert_eq!(m.lambda_block(1.0), 0.0);
    }
}
