//! Cached adaptive selection: amortizing the STL′ dynamic-programming grid.
//!
//! A fresh [`StlSelector`] re-evaluates the full STL′ grid for every
//! selection — roughly milliseconds per transaction, a ~500× overhead
//! against static policies. This module makes adaptive concurrency control
//! pay for itself by splitting the selector into two very different
//! cadences:
//!
//! * **Epoch re-fit** (slow path, every `epoch_commits` commits or on
//!   drift): snapshot the [`StlModel`], the per-protocol
//!   [`MethodParamSet`] and the per-item rate table out of the live
//!   metrics into an [`EpochSnapshot`]. Within an epoch every decision is
//!   a pure function of the transaction's access sets.
//! * **Memoized decide** (fast path, every selection): collapse the
//!   transaction to its [`ShapeSummary`], quantize it into a [`ShapeKey`],
//!   and look the decision up in the [`SelectionCache`] grid. A miss runs
//!   [`evaluate_decision`] once and memoizes it; a hit is a hash lookup.
//!
//! Because [`evaluate_decision`] depends on the shape only through its
//! summary, memoization is *exact*: with quantization disabled the cached
//! selector returns bit-identical [`SelectionDecision`]s to a fresh
//! [`StlSelector`] evaluated against the same metrics, and with
//! quantization enabled it returns exactly the fresh decision of the
//! bucket's canonical representative — properties the test-suite checks
//! byte-for-byte.

use std::collections::{BTreeMap, HashMap};

use dbmodel::{Catalog, PhysicalItemId, Transaction};
use metrics::SimMetrics;

use crate::confluence::{classify, is_read_only, Confluence, OpProfile};
use crate::estimators::{ProtocolParams, ShapeSummary};
use crate::selector::{
    evaluate_decision, exploratory_decision, is_exploration_round, MethodParamSet,
    SelectionDecision, StlSelector,
};
use crate::stl::StlModel;

/// Tuning of the cached selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSettings {
    /// Commits between scheduled re-fits of the epoch snapshot. The model
    /// is refreshed once at least this many new commits have been observed
    /// since the last fit (minimum 1).
    pub epoch_commits: u64,
    /// Relative drift in the fitted model / protocol parameters (absolute
    /// drift for probabilities and conflict ratios) that forces an early
    /// re-fit. 0 disables drift-triggered refreshes.
    pub drift_threshold: f64,
    /// Selections between drift probes against the live metrics (the probe
    /// re-measures the cheap aggregates, not the STL′ grid). 0 disables
    /// probing; the workload-signal check still runs every selection.
    pub drift_check_every: u64,
    /// Width of the shape-quantization buckets, on a `ln(1+x)` scale:
    /// losses above ~1 lock/s share a bucket when within a relative
    /// factor of `1 + quant_rel` (e.g. 0.05 ⇒ ~5%), while losses below
    /// ~1 — where every protocol's estimated cost is negligible anyway —
    /// fall into absolute buckets about `quant_rel` wide. 0 keys the grid
    /// on exact bit patterns instead (no collapsing at all).
    pub quant_rel: f64,
    /// Decisions kept in the grid before it is flushed wholesale.
    pub max_entries: usize,
    /// Commits per method required before estimates are trusted
    /// (mirrors [`StlSelector::warmup_commits`]).
    pub warmup_commits: u64,
    /// After warm-up, every `explore_every`-th transaction is assigned
    /// round-robin (mirrors [`StlSelector::explore_every`]).
    pub explore_every: u64,
}

impl Default for CacheSettings {
    fn default() -> Self {
        CacheSettings {
            // Every refit flushes the decision grid, and each flushed
            // bucket costs one full STL′ evaluation (~ms) to repopulate;
            // at live-runtime commit rates 1024 commits is still a
            // sub-second epoch, and the drift checks below catch genuine
            // workload shifts between scheduled boundaries.
            epoch_commits: 1024,
            drift_threshold: 0.5,
            drift_check_every: 64,
            quant_rel: 0.05,
            max_entries: 8192,
            warmup_commits: 30,
            explore_every: 20,
        }
    }
}

impl CacheSettings {
    /// Check the settings for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.quant_rel.is_finite() || self.quant_rel < 0.0 {
            return Err("quant_rel must be a finite value >= 0".into());
        }
        if !self.drift_threshold.is_finite() || self.drift_threshold < 0.0 {
            return Err("drift_threshold must be a finite value >= 0".into());
        }
        if self.max_entries == 0 {
            return Err("max_entries must be at least 1".into());
        }
        Ok(())
    }
}

/// Live workload feedback the runtime folds into the epoch logic: per-shard
/// counters aggregated by the embedder. A change in the conflict ratio
/// (pre-scheduled grants over all grants) beyond the drift threshold
/// triggers an early re-fit even when the scheduled epoch boundary is far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadSignal {
    /// Lock grants issued (all shards).
    pub grants: u64,
    /// Conflicted (pre-scheduled) grants issued (all shards).
    pub conflicts: u64,
}

impl WorkloadSignal {
    /// Fraction of grants that were pre-scheduled (issued under conflict).
    pub fn conflict_ratio(&self) -> f64 {
        if self.grants == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.grants as f64
        }
    }

    /// The counter deltas accumulated since `earlier` (saturating, so a
    /// stale baseline never underflows).
    pub fn since(&self, earlier: WorkloadSignal) -> WorkloadSignal {
        WorkloadSignal {
            grants: self.grants.saturating_sub(earlier.grants),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
        }
    }
}

/// The quantized memoization key of one transaction shape: request counts
/// and the op-kind profile exactly, aggregate losses as bucket indices (or
/// raw bit patterns when quantization is disabled). Keeping the profile
/// and counts exact is what makes the routed confluence verdict pure
/// across every representative of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    m: u32,
    n: u32,
    profile: u8,
    /// Read fraction `m/(m+n)` quantized to sixteenths (0 for an empty
    /// shape). Derived from the exact counts above, so it splits no bucket
    /// they would share — it names the axis the snapshot-routing verdict
    /// lives on (`rf == 16` ⇔ pure reads) and keeps that verdict visibly a
    /// function of the key.
    rf: u8,
    read_loss: u64,
    write_loss: u64,
}

/// The read-fraction coordinate of a shape, in sixteenths.
fn read_fraction(m: usize, n: usize) -> u8 {
    match (m * 16).checked_div(m + n) {
        Some(rf) => rf as u8,
        None => 0,
    }
}

/// Bucket index of a non-negative loss on a `ln(1+x)` grid of pitch
/// `ln(1+g)`: relative `1+g` buckets for losses above ~1, absolute
/// ~`g`-wide buckets below (see [`CacheSettings::quant_rel`]).
fn bucket(x: f64, g: f64) -> u64 {
    let x = x.max(0.0);
    if x <= 0.0 {
        return 0;
    }
    if !x.is_finite() {
        return u64::MAX;
    }
    (x.ln_1p() / g.ln_1p()).floor() as u64 + 1
}

/// The canonical representative of a bucket: its geometric midpoint. Pure
/// in the bucket index, so hit and miss paths agree bit-for-bit.
fn representative(b: u64, g: f64) -> f64 {
    if b == 0 {
        return 0.0;
    }
    ((b as f64 - 0.5) * g.ln_1p()).exp_m1()
}

/// One memoized grid entry: the four-way verdict for a quantized shape —
/// which protocol to use if the transaction is coordinated, whether it may
/// skip coordination via the confluent fast path, and whether it is a pure
/// read-only shape eligible for the versioned snapshot plane.
#[derive(Debug, Clone, Copy)]
pub struct RoutedDecision {
    /// The STL-optimal protocol of the coordinated path (2PL / T/O / PA).
    pub decision: SelectionDecision,
    /// Whether the shape is provably invariant-confluent and may be
    /// routed around the queue managers (subject to the at-apply check).
    pub confluence: Confluence,
    /// Whether the shape is pure read-only and may be served from the
    /// item version chains at the global read watermark — the fourth
    /// method, with no coordination at all (subject to the shard's
    /// version-availability refusal, which falls back to `decision`).
    pub snapshot: bool,
}

/// The memoized decision grid: maps [`ShapeKey`]s to the
/// [`RoutedDecision`] of the key's canonical shape. Model and protocol
/// parameters are *not* part of the key — the owner must clear the grid
/// whenever they change (the epoch re-fit does exactly that). The
/// confluence half of an entry depends only on the key's exact fields
/// (profile and request counts), so a flush can never change it.
#[derive(Debug, Clone)]
pub struct SelectionCache {
    quant_rel: f64,
    max_entries: usize,
    grid: HashMap<ShapeKey, RoutedDecision>,
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl SelectionCache {
    /// A cache with the given relative quantization (0 = exact keys).
    pub fn new(quant_rel: f64, max_entries: usize) -> SelectionCache {
        SelectionCache {
            quant_rel,
            max_entries: max_entries.max(1),
            grid: HashMap::new(),
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// A cache keyed on exact bit patterns: memoization without any
    /// collapsing of nearby shapes.
    pub fn exact() -> SelectionCache {
        SelectionCache::new(0.0, CacheSettings::default().max_entries)
    }

    /// The memoization key of a summary (op profile unknown — keys built
    /// here never collide with profiled keys carrying a nonzero profile).
    pub fn key_for(&self, summary: &ShapeSummary) -> ShapeKey {
        self.key_with_profile(summary, OpProfile::empty())
    }

    /// The memoization key of a summary together with the transaction's
    /// op-kind profile (carried exactly, never quantized).
    pub fn key_with_profile(&self, summary: &ShapeSummary, profile: OpProfile) -> ShapeKey {
        let (read_loss, write_loss) = if self.quant_rel > 0.0 {
            (
                bucket(summary.read_loss, self.quant_rel),
                bucket(summary.write_loss, self.quant_rel),
            )
        } else {
            (
                summary.read_loss.max(0.0).to_bits(),
                summary.write_loss.max(0.0).to_bits(),
            )
        };
        ShapeKey {
            m: summary.m.min(u32::MAX as usize) as u32,
            n: summary.n.min(u32::MAX as usize) as u32,
            profile: profile.bits(),
            rf: read_fraction(summary.m, summary.n),
            read_loss,
            write_loss,
        }
    }

    /// The canonical summary a key stands for: the exact summary when
    /// quantization is off, the bucket midpoints otherwise. Decisions for a
    /// key are always computed on this representative.
    pub fn representative(&self, key: ShapeKey) -> ShapeSummary {
        let (read_loss, write_loss) = if self.quant_rel > 0.0 {
            (
                representative(key.read_loss, self.quant_rel),
                representative(key.write_loss, self.quant_rel),
            )
        } else {
            (
                f64::from_bits(key.read_loss),
                f64::from_bits(key.write_loss),
            )
        };
        ShapeSummary {
            m: key.m as usize,
            n: key.n as usize,
            read_loss,
            write_loss,
        }
    }

    /// Look the decision up, computing and memoizing it on a miss.
    pub fn decide(
        &mut self,
        model: &StlModel,
        params: &MethodParamSet,
        summary: &ShapeSummary,
    ) -> SelectionDecision {
        self.decide_routed(model, params, summary, OpProfile::empty())
            .decision
    }

    /// The four-way lookup: protocol *and* confluence routing in one hash
    /// probe. The confluence half is classified from the key's own exact
    /// fields, so hit and miss paths cannot disagree about it.
    pub fn decide_routed(
        &mut self,
        model: &StlModel,
        params: &MethodParamSet,
        summary: &ShapeSummary,
        profile: OpProfile,
    ) -> RoutedDecision {
        let key = self.key_with_profile(summary, profile);
        if let Some(routed) = self.grid.get(&key) {
            self.hits += 1;
            return *routed;
        }
        self.misses += 1;
        let routed = RoutedDecision {
            decision: evaluate_decision(model, &self.representative(key), params),
            confluence: classify(
                OpProfile::from_bits(key.profile),
                key.m as usize,
                key.n as usize,
            ),
            snapshot: is_read_only(
                OpProfile::from_bits(key.profile),
                key.m as usize,
                key.n as usize,
            ),
        };
        if self.grid.len() >= self.max_entries {
            self.grid.clear();
            self.flushes += 1;
        }
        self.grid.insert(key, routed);
        routed
    }

    /// Drop every memoized decision (the epoch re-fit path).
    pub fn clear(&mut self) {
        self.grid.clear();
    }

    /// Number of memoized decisions.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Grid hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Grid misses (full STL′ evaluations) since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Everything a selection depends on, frozen at one instant: the fitted
/// STL model, the measured per-protocol parameters, and the per-item rate
/// table the transaction shapes are built from. Decisions within an epoch
/// are provably identical to fresh STL′ evaluation against this snapshot.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Monotone epoch number (1 for the first fit).
    pub epoch: u64,
    /// Commits observed when the snapshot was fitted.
    pub fitted_at_commits: u64,
    /// Conflict ratio this epoch's drift checks compare against: the
    /// ratio observed over the window preceding the fit (the cumulative
    /// ratio for the very first fit).
    pub conflict_ratio: f64,
    /// The cumulative workload counters at fit time — the baseline the
    /// drift check subtracts so it always reasons about *recent* grants,
    /// not lifetime averages (which go inert as the run ages).
    pub signal_at_fit: WorkloadSignal,
    /// The fitted system-wide STL model.
    pub model: StlModel,
    /// The measured parameters of every protocol.
    pub params: MethodParamSet,
    rates: BTreeMap<PhysicalItemId, (f64, f64)>,
}

/// Grants that must accumulate since the fit before a conflict-ratio
/// drift verdict is trusted (a handful of conflicted grants in a row is
/// noise, not a regime change).
const DRIFT_MIN_GRANTS: u64 = 64;

impl EpochSnapshot {
    /// Fit a snapshot from the live metrics. `prev_signal` is the
    /// cumulative workload signal at the *previous* fit, used to derive
    /// the recent-window conflict ratio this epoch is compared against.
    pub fn fit(
        metrics: &SimMetrics,
        epoch: u64,
        signal: WorkloadSignal,
        prev_signal: Option<WorkloadSignal>,
    ) -> EpochSnapshot {
        let window = prev_signal
            .map(|prev| signal.since(prev))
            .filter(|w| w.grants > 0)
            .unwrap_or(signal);
        EpochSnapshot {
            epoch,
            fitted_at_commits: metrics.total_committed.get(),
            conflict_ratio: window.conflict_ratio(),
            signal_at_fit: signal,
            model: StlSelector::model_from_metrics(metrics),
            params: MethodParamSet::measure(metrics),
            rates: metrics.item_rates(),
        }
    }

    /// The `(λ_r, λ_w)` of one item at fit time (0 for items that had
    /// granted nothing — matching what the live metrics report).
    pub fn item_rate(&self, item: PhysicalItemId) -> (f64, f64) {
        self.rates.get(&item).copied().unwrap_or((0.0, 0.0))
    }

    /// Build the transaction's shape summary from the frozen rate table,
    /// mirroring [`StlSelector::shape_for`] (read-one at the origin site,
    /// write-all over the item's copies) aggregation step for step so the
    /// result is bit-identical to summarising the fresh shape at fit time.
    pub fn summary_for(&self, txn: &Transaction, catalog: &Catalog) -> ShapeSummary {
        let mut m = 0usize;
        let mut n = 0usize;
        let mut read_loss = 0.0f64;
        let mut write_loss = 0.0f64;
        for &item in txn.read_set() {
            if let Ok(copy) = catalog.read_copy(item, txn.origin) {
                m += 1;
                read_loss += self.item_rate(copy).1;
            }
        }
        for &item in txn.write_set() {
            if let Ok(copies) = catalog.physical_copies(item) {
                let (mut lr, mut lw) = (0.0, 0.0);
                for copy in copies {
                    let (r, w) = self.item_rate(copy);
                    lr += r;
                    lw += w;
                }
                n += 1;
                write_loss += lr + lw;
            }
        }
        ShapeSummary {
            m,
            n,
            read_loss,
            write_loss,
        }
    }

    /// True when the freshly measured model / protocol parameters have
    /// moved beyond `threshold` from the fitted ones: rates and hold times
    /// relatively, probabilities absolutely. Note the comparison is
    /// against lifetime metric aggregates, which respond ever more slowly
    /// as a run ages — the delta-based [`EpochSnapshot::signal_drifted`]
    /// check is the responsive trigger in long-lived runs, and windowed
    /// metrics are an open ROADMAP item.
    pub fn drifted_from(&self, metrics: &SimMetrics, threshold: f64) -> bool {
        if threshold <= 0.0 {
            return false;
        }
        let model = StlSelector::model_from_metrics(metrics);
        let params = MethodParamSet::measure(metrics);
        model_drift(&self.model, &model) > threshold
            || params_drift(&self.params.p2pl, &params.p2pl) > threshold
            || params_drift(&self.params.to, &params.to) > threshold
            || params_drift(&self.params.pa, &params.pa) > threshold
    }

    /// True when the conflict ratio of the grants issued *since this fit*
    /// has moved beyond `threshold` (absolute) from the ratio the epoch
    /// was fitted against. Comparing deltas rather than lifetime ratios
    /// keeps the trigger responsive in long-lived runs.
    pub fn signal_drifted(&self, signal: WorkloadSignal, threshold: f64) -> bool {
        if threshold <= 0.0 {
            return false;
        }
        let window = signal.since(self.signal_at_fit);
        window.grants >= DRIFT_MIN_GRANTS
            && (window.conflict_ratio() - self.conflict_ratio).abs() > threshold
    }
}

/// Relative distance between two non-negative quantities.
fn rel_drift(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale <= 1e-9 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

fn model_drift(a: &StlModel, b: &StlModel) -> f64 {
    rel_drift(a.lambda_a, b.lambda_a)
        .max(rel_drift(a.lambda_r, b.lambda_r))
        .max(rel_drift(a.lambda_w, b.lambda_w))
        .max(rel_drift(a.k, b.k))
        .max((a.q_r - b.q_r).abs())
}

fn params_drift(a: &ProtocolParams, b: &ProtocolParams) -> f64 {
    rel_drift(a.u_ok, b.u_ok)
        .max(rel_drift(a.u_denied, b.u_denied))
        .max((a.p_abort - b.p_abort).abs())
        .max((a.p_read_denial - b.p_read_denial).abs())
        .max((a.p_write_denial - b.p_write_denial).abs())
}

/// A point-in-time copy of the cached selector's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Selections answered from the memoized grid.
    pub hits: u64,
    /// Selections that ran the full STL′ evaluation.
    pub misses: u64,
    /// Epoch re-fits performed.
    pub refits: u64,
    /// Wholesale grid flushes forced by `max_entries`.
    pub flushes: u64,
    /// Decisions currently memoized.
    pub entries: u64,
    /// Current epoch number (0 before the first fit).
    pub epoch: u64,
}

impl CacheStats {
    /// Fraction of cost-based selections served from the grid.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Where a selection reads its metrics from: a borrowed live collection
/// (the simulator path), or a merge thunk evaluated at most once and only
/// when the selection actually needs metrics — warm-up, a drift probe, or
/// an epoch re-fit (the sharded runtime path, where "merge" folds the
/// per-thread metric stripes and is deliberately kept off the fast path).
enum MetricsSource<'a, F: FnOnce() -> SimMetrics> {
    Borrowed(&'a SimMetrics),
    Lazy {
        merge: Option<F>,
        merged: Option<SimMetrics>,
    },
}

impl<F: FnOnce() -> SimMetrics> MetricsSource<'_, F> {
    fn get(&mut self) -> &SimMetrics {
        match self {
            MetricsSource::Borrowed(m) => m,
            MetricsSource::Lazy { merge, merged } => {
                if merged.is_none() {
                    *merged = Some((merge.take().expect("merge thunk consumed twice"))());
                }
                merged.as_ref().expect("just filled")
            }
        }
    }
}

/// The `F` type for [`MetricsSource::Borrowed`], which never merges.
type NoMerge = fn() -> SimMetrics;

/// The drop-in cached variant of [`StlSelector`]: same warm-up and
/// exploration behaviour, same decisions, but the STL′ grid is evaluated
/// once per distinct (quantized) shape per epoch instead of once per
/// transaction.
#[derive(Debug, Clone)]
pub struct CachedStlSelector {
    /// The tuning this selector was built with.
    pub settings: CacheSettings,
    counter: u64,
    refits: u64,
    /// Latched once every method has enough commits. Warm-up is monotone
    /// in the (monotone) metrics, so latching it lets the fast path skip
    /// the metrics read entirely.
    warmed: bool,
    snapshot: Option<EpochSnapshot>,
    cache: SelectionCache,
}

impl Default for CachedStlSelector {
    fn default() -> Self {
        CachedStlSelector::with_settings(CacheSettings::default())
    }
}

impl CachedStlSelector {
    /// A cached selector with the default settings.
    pub fn new() -> CachedStlSelector {
        CachedStlSelector::default()
    }

    /// A cached selector with explicit settings.
    pub fn with_settings(settings: CacheSettings) -> CachedStlSelector {
        CachedStlSelector {
            settings,
            counter: 0,
            refits: 0,
            warmed: false,
            snapshot: None,
            cache: SelectionCache::new(settings.quant_rel, settings.max_entries),
        }
    }

    /// Choose the concurrency-control method for `txn` (no workload
    /// signal; epoch boundaries are driven by commits and drift probes).
    pub fn select(
        &mut self,
        txn: &Transaction,
        catalog: &Catalog,
        metrics: &SimMetrics,
    ) -> SelectionDecision {
        self.select_with_signal(txn, catalog, metrics, WorkloadSignal::default())
    }

    /// Choose the concurrency-control method for `txn`, folding the
    /// embedder's live workload counters into the epoch logic.
    pub fn select_with_signal(
        &mut self,
        txn: &Transaction,
        catalog: &Catalog,
        metrics: &SimMetrics,
        signal: WorkloadSignal,
    ) -> SelectionDecision {
        let commits = metrics.total_committed.get();
        self.select_core::<NoMerge>(
            txn,
            catalog,
            signal,
            commits,
            MetricsSource::Borrowed(metrics),
            OpProfile::empty(),
        )
        .decision
    }

    /// Choose the concurrency-control method for `txn` against *sharded*
    /// metrics: `commits` is the embedder's commit counter and `merge`
    /// folds its metric stripes into one collection. The thunk is invoked
    /// at most once, and only when the selection needs metrics — before
    /// warm-up completes, on a scheduled drift probe, or to fit a new
    /// epoch snapshot. The steady-state fast path (a grid hit within an
    /// epoch) never merges and never takes a metrics lock.
    pub fn select_sharded<F: FnOnce() -> SimMetrics>(
        &mut self,
        txn: &Transaction,
        catalog: &Catalog,
        signal: WorkloadSignal,
        commits: u64,
        merge: F,
    ) -> SelectionDecision {
        self.select_core(
            txn,
            catalog,
            signal,
            commits,
            MetricsSource::Lazy {
                merge: Some(merge),
                merged: None,
            },
            OpProfile::empty(),
        )
        .decision
    }

    /// The four-way variant of [`CachedStlSelector::select_sharded`]:
    /// alongside the 2PL / T/O / PA protocol choice, the returned
    /// [`RoutedDecision`] says whether the shape (described by `profile`)
    /// is invariant-confluent and may bypass coordination entirely. Both
    /// halves are memoized in the same [`ShapeKey`] grid — one hash
    /// lookup in steady state.
    pub fn select_routed_sharded<F: FnOnce() -> SimMetrics>(
        &mut self,
        txn: &Transaction,
        catalog: &Catalog,
        signal: WorkloadSignal,
        commits: u64,
        merge: F,
        profile: OpProfile,
    ) -> RoutedDecision {
        self.select_core(
            txn,
            catalog,
            signal,
            commits,
            MetricsSource::Lazy {
                merge: Some(merge),
                merged: None,
            },
            profile,
        )
    }

    fn select_core<F: FnOnce() -> SimMetrics>(
        &mut self,
        txn: &Transaction,
        catalog: &Catalog,
        signal: WorkloadSignal,
        commits: u64,
        mut source: MetricsSource<'_, F>,
        profile: OpProfile,
    ) -> RoutedDecision {
        // Confluence and snapshot eligibility are pure functions of the
        // profile and access-set sizes — independent of the fitted model,
        // so warm-up and exploration rounds route exactly like steady
        // state.
        let confluence = classify(profile, txn.read_set().len(), txn.write_set().len());
        let snapshot = is_read_only(profile, txn.read_set().len(), txn.write_set().len());
        self.counter += 1;
        if !self.warmed {
            // Exact, metrics-free pre-filter: fewer than `3 × warmup`
            // total commits means *some* method is still below its
            // warm-up bar, so the (possibly expensive, lazily merged)
            // per-method check can be skipped outright.
            if commits < self.settings.warmup_commits.saturating_mul(3)
                || !StlSelector::warmed_up(source.get(), self.settings.warmup_commits)
            {
                return RoutedDecision {
                    decision: exploratory_decision(self.counter),
                    confluence,
                    snapshot,
                };
            }
            self.warmed = true;
        }
        if is_exploration_round(self.counter, self.settings.explore_every) {
            return RoutedDecision {
                decision: exploratory_decision(self.counter),
                confluence,
                snapshot,
            };
        }

        if self.needs_refit(signal, commits, &mut source) {
            self.refit_now(source.get(), signal);
        }
        let snapshot = self
            .snapshot
            .as_ref()
            .expect("needs_refit guarantees a snapshot");
        let summary = snapshot.summary_for(txn, catalog);
        self.cache
            .decide_routed(&snapshot.model, &snapshot.params, &summary, profile)
    }

    fn needs_refit<F: FnOnce() -> SimMetrics>(
        &self,
        signal: WorkloadSignal,
        commits: u64,
        source: &mut MetricsSource<'_, F>,
    ) -> bool {
        let Some(snapshot) = &self.snapshot else {
            return true;
        };
        if commits.saturating_sub(snapshot.fitted_at_commits) >= self.settings.epoch_commits.max(1)
        {
            return true;
        }
        if snapshot.signal_drifted(signal, self.settings.drift_threshold) {
            return true;
        }
        self.settings.drift_check_every > 0
            && self.counter.is_multiple_of(self.settings.drift_check_every)
            && snapshot.drifted_from(source.get(), self.settings.drift_threshold)
    }

    /// Force an epoch re-fit from the live metrics, flushing the grid.
    pub fn refit_now(&mut self, metrics: &SimMetrics, signal: WorkloadSignal) {
        let prev = self.snapshot.as_ref();
        let epoch = prev.map_or(0, |s| s.epoch) + 1;
        let prev_signal = prev.map(|s| s.signal_at_fit);
        self.snapshot = Some(EpochSnapshot::fit(metrics, epoch, signal, prev_signal));
        self.cache.clear();
        self.refits += 1;
    }

    /// The current epoch snapshot, if one has been fitted.
    pub fn snapshot(&self) -> Option<&EpochSnapshot> {
        self.snapshot.as_ref()
    }

    /// A copy of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            refits: self.refits,
            flushes: self.cache.flushes,
            entries: self.cache.len() as u64,
            epoch: self.snapshot.as_ref().map_or(0, |s| s.epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{AccessMode, CcMethod, LogicalItemId, ReplicationPolicy, SiteId, TxnId};
    use simkit::time::{Duration, SimTime};

    fn catalog() -> Catalog {
        Catalog::generate(2, 12, ReplicationPolicy::SingleCopy)
    }

    fn txn(id: u64, reads: &[u64], writes: &[u64]) -> Transaction {
        let mut b = Transaction::builder(TxnId(id), SiteId(0));
        for &r in reads {
            b = b.read(LogicalItemId(r));
        }
        for &w in writes {
            b = b.write(LogicalItemId(w));
        }
        b.build()
    }

    /// Metrics with all methods warmed up and non-trivial item rates.
    fn warmed_metrics() -> SimMetrics {
        let mut m = SimMetrics::new();
        m.set_time_span(SimTime::ZERO, SimTime::from_secs(100));
        for &method in &CcMethod::ALL {
            for _ in 0..50 {
                m.record_commit(method, Duration::from_millis(40));
                m.record_lock_hold(method, Duration::from_millis(30), false);
            }
        }
        for i in 0..12u64 {
            for _ in 0..(100 + i * 37) {
                m.record_grant(
                    PhysicalItemId::new(LogicalItemId(i), SiteId((i % 2) as u32)),
                    if i % 3 == 0 {
                        AccessMode::Write
                    } else {
                        AccessMode::Read
                    },
                );
            }
        }
        m
    }

    fn bits(d: &SelectionDecision) -> (CcMethod, u64, u64, u64, bool) {
        (
            d.method,
            d.stl_2pl.to_bits(),
            d.stl_to.to_bits(),
            d.stl_pa.to_bits(),
            d.exploratory,
        )
    }

    #[test]
    fn exact_cache_matches_fresh_selector_bit_for_bit() {
        let metrics = warmed_metrics();
        let cat = catalog();
        let settings = CacheSettings {
            quant_rel: 0.0,
            explore_every: 7,
            warmup_commits: 10,
            ..CacheSettings::default()
        };
        let mut cached = CachedStlSelector::with_settings(settings);
        let mut fresh = StlSelector::with_settings(10, 7);
        for i in 0..40 {
            let t = txn(i, &[i % 12, (i + 3) % 12], &[(i + 1) % 12]);
            let a = cached.select(&t, &cat, &metrics);
            let b = fresh.select(&t, &cat, &metrics);
            assert_eq!(bits(&a), bits(&b), "selection {i} diverged");
        }
        let stats = cached.cache_stats();
        assert!(stats.hits > 0, "repeated shapes must hit: {stats:?}");
        assert_eq!(stats.refits, 1, "no drift, no extra commits: one epoch");
    }

    #[test]
    fn sharded_selection_matches_borrowed_and_merges_lazily() {
        let metrics = warmed_metrics();
        let cat = catalog();
        let settings = CacheSettings {
            quant_rel: 0.0,
            explore_every: 7,
            warmup_commits: 10,
            ..CacheSettings::default()
        };
        let mut borrowed = CachedStlSelector::with_settings(settings);
        let mut sharded = CachedStlSelector::with_settings(settings);
        let merges = std::cell::Cell::new(0u64);
        for i in 0..60 {
            let t = txn(i, &[i % 12, (i + 3) % 12], &[(i + 1) % 12]);
            let a = borrowed.select_with_signal(&t, &cat, &metrics, WorkloadSignal::default());
            let b = sharded.select_sharded(
                &t,
                &cat,
                WorkloadSignal::default(),
                metrics.total_committed.get(),
                || {
                    merges.set(merges.get() + 1);
                    metrics.clone()
                },
            );
            assert_eq!(bits(&a), bits(&b), "selection {i} diverged across sources");
        }
        // The merge thunk runs only when metrics are genuinely needed:
        // once for the warm-up check + first fit, then only on scheduled
        // drift probes — never on the grid-hit fast path.
        let probes = 60 / settings.drift_check_every;
        assert!(
            merges.get() <= 1 + probes,
            "{} merges for 60 selections (expected ≤ {})",
            merges.get(),
            1 + probes
        );
    }

    #[test]
    fn quantized_cache_hit_and_miss_paths_agree() {
        let metrics = warmed_metrics();
        let model = StlSelector::model_from_metrics(&metrics);
        let params = MethodParamSet::measure(&metrics);
        let mut cache = SelectionCache::new(0.05, 1024);
        let summary = ShapeSummary {
            m: 2,
            n: 1,
            read_loss: 13.37,
            write_loss: 4.2,
        };
        let miss = cache.decide(&model, &params, &summary);
        let hit = cache.decide(&model, &params, &summary);
        assert_eq!(bits(&miss), bits(&hit));
        // The decision is exactly the fresh evaluation of the bucket's
        // canonical representative.
        let rep = cache.representative(cache.key_for(&summary));
        let fresh = evaluate_decision(&model, &rep, &params);
        assert_eq!(bits(&miss), bits(&fresh));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn quantization_collapses_nearby_shapes_only() {
        let cache = SelectionCache::new(0.05, 1024);
        let base = ShapeSummary {
            m: 2,
            n: 1,
            read_loss: 100.0,
            write_loss: 50.0,
        };
        let nearby = ShapeSummary {
            read_loss: 101.0,
            ..base
        };
        let far = ShapeSummary {
            read_loss: 160.0,
            ..base
        };
        let other_m = ShapeSummary { m: 3, ..base };
        assert_eq!(cache.key_for(&base), cache.key_for(&nearby));
        assert_ne!(cache.key_for(&base), cache.key_for(&far));
        assert_ne!(cache.key_for(&base), cache.key_for(&other_m));
        // The representative sits inside its own bucket.
        let key = cache.key_for(&base);
        let rep = cache.representative(key);
        assert_eq!(cache.key_for(&rep), key);
    }

    #[test]
    fn routed_hit_and_miss_agree_and_key_on_profile() {
        let metrics = warmed_metrics();
        let model = StlSelector::model_from_metrics(&metrics);
        let params = MethodParamSet::measure(&metrics);
        let mut cache = SelectionCache::new(0.05, 1024);
        let summary = ShapeSummary {
            m: 1,
            n: 2,
            read_loss: 7.0,
            write_loss: 3.0,
        };
        let adds = OpProfile::ADDS;
        let rmw = OpProfile::RMW_WRITES;
        let miss = cache.decide_routed(&model, &params, &summary, adds);
        let hit = cache.decide_routed(&model, &params, &summary, adds);
        assert_eq!(miss.confluence, Confluence::ConfluentFastPath);
        assert_eq!(hit.confluence, miss.confluence);
        assert_eq!(bits(&hit.decision), bits(&miss.decision));
        // Same summary under an rmw profile is a different key with a
        // different routing verdict; the protocol decision is identical
        // (same representative summary).
        let coord = cache.decide_routed(&model, &params, &summary, rmw);
        assert_eq!(coord.confluence, Confluence::Coordinated);
        assert_eq!(bits(&coord.decision), bits(&miss.decision));
        assert_ne!(
            cache.key_with_profile(&summary, adds),
            cache.key_with_profile(&summary, rmw)
        );
        // The profile-free key is the empty profile's key.
        assert_eq!(
            cache.key_for(&summary),
            cache.key_with_profile(&summary, OpProfile::empty())
        );
    }

    #[test]
    fn routed_selection_classifies_through_warmup_and_steady_state() {
        let metrics = warmed_metrics();
        let cat = catalog();
        let mut cached = CachedStlSelector::with_settings(CacheSettings {
            warmup_commits: 10,
            explore_every: 3,
            quant_rel: 0.05,
            ..CacheSettings::default()
        });
        // 2 adds, no reads: confluent on every round — exploration and
        // cache hits alike (routing never depends on the fitted model).
        let t = txn(1, &[], &[2, 3]);
        for i in 0..30 {
            let routed = cached.select_routed_sharded(
                &t,
                &cat,
                WorkloadSignal::default(),
                metrics.total_committed.get(),
                || metrics.clone(),
                OpProfile::ADDS,
            );
            assert_eq!(
                routed.confluence,
                Confluence::ConfluentFastPath,
                "round {i} must route fast"
            );
        }
        let rmw = cached.select_routed_sharded(
            &t,
            &cat,
            WorkloadSignal::default(),
            metrics.total_committed.get(),
            || metrics.clone(),
            OpProfile::RMW_WRITES,
        );
        assert_eq!(rmw.confluence, Confluence::Coordinated);
        assert!(cached.cache_stats().hits > 0, "routed lookups must hit");
    }

    #[test]
    fn snapshot_verdict_is_pure_and_memoized_with_the_key() {
        let metrics = warmed_metrics();
        let model = StlSelector::model_from_metrics(&metrics);
        let params = MethodParamSet::measure(&metrics);
        let mut cache = SelectionCache::new(0.05, 1024);
        let read_only = ShapeSummary {
            m: 3,
            n: 0,
            read_loss: 2.0,
            write_loss: 0.0,
        };
        let miss = cache.decide_routed(&model, &params, &read_only, OpProfile::READS);
        let hit = cache.decide_routed(&model, &params, &read_only, OpProfile::READS);
        assert!(miss.snapshot, "pure reads route to the snapshot plane");
        assert_eq!(hit.snapshot, miss.snapshot, "hit and miss agree");
        // One write in the set — or a non-read op kind — kills eligibility.
        let mixed = ShapeSummary { n: 1, ..read_only };
        assert!(
            !cache
                .decide_routed(&model, &params, &mixed, OpProfile::READS)
                .snapshot
        );
        assert!(
            !cache
                .decide_routed(
                    &model,
                    &params,
                    &read_only,
                    OpProfile::READS.with(OpProfile::ADDS)
                )
                .snapshot
        );
        // The read-fraction coordinate separates pure-read keys from
        // mixed keys even before the loss buckets do.
        assert_ne!(
            cache.key_with_profile(&read_only, OpProfile::READS),
            cache.key_with_profile(&mixed, OpProfile::READS)
        );
    }

    #[test]
    fn snapshot_routing_holds_through_warmup_and_steady_state() {
        let metrics = warmed_metrics();
        let cat = catalog();
        let mut cached = CachedStlSelector::with_settings(CacheSettings {
            warmup_commits: 10,
            explore_every: 3,
            quant_rel: 0.05,
            ..CacheSettings::default()
        });
        let t = txn(1, &[2, 3, 4], &[]);
        for i in 0..30 {
            let routed = cached.select_routed_sharded(
                &t,
                &cat,
                WorkloadSignal::default(),
                metrics.total_committed.get(),
                || metrics.clone(),
                OpProfile::READS,
            );
            assert!(routed.snapshot, "round {i} must stay snapshot-eligible");
        }
        let writer = txn(2, &[2], &[3]);
        let routed = cached.select_routed_sharded(
            &writer,
            &cat,
            WorkloadSignal::default(),
            metrics.total_committed.get(),
            || metrics.clone(),
            OpProfile::READS.with(OpProfile::PUTS),
        );
        assert!(
            !routed.snapshot,
            "a writer never routes to the snapshot plane"
        );
    }

    #[test]
    fn exact_keys_separate_any_loss_difference() {
        let cache = SelectionCache::exact();
        let a = ShapeSummary {
            m: 1,
            n: 1,
            read_loss: 10.0,
            write_loss: 5.0,
        };
        let b = ShapeSummary {
            read_loss: 10.0 + 1e-12,
            ..a
        };
        assert_ne!(cache.key_for(&a), cache.key_for(&b));
        let rep = cache.representative(cache.key_for(&a));
        assert_eq!(rep.read_loss.to_bits(), a.read_loss.to_bits());
        assert_eq!(rep.write_loss.to_bits(), a.write_loss.to_bits());
    }

    #[test]
    fn epoch_boundary_refits_after_enough_commits() {
        let mut metrics = warmed_metrics();
        let cat = catalog();
        let mut cached = CachedStlSelector::with_settings(CacheSettings {
            epoch_commits: 10,
            warmup_commits: 10,
            explore_every: 0,
            drift_check_every: 0,
            ..CacheSettings::default()
        });
        let t = txn(1, &[1], &[2]);
        cached.select(&t, &cat, &metrics);
        assert_eq!(cached.cache_stats().epoch, 1);
        // Fewer than epoch_commits new commits: same epoch.
        for _ in 0..9 {
            metrics.record_commit(CcMethod::TwoPhaseLocking, Duration::from_millis(10));
        }
        cached.select(&t, &cat, &metrics);
        assert_eq!(cached.cache_stats().epoch, 1);
        // Crossing the boundary re-fits and flushes the grid.
        metrics.record_commit(CcMethod::TwoPhaseLocking, Duration::from_millis(10));
        cached.select(&t, &cat, &metrics);
        let stats = cached.cache_stats();
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.refits, 2);
    }

    #[test]
    fn conflict_ratio_drift_forces_early_refit() {
        let metrics = warmed_metrics();
        let cat = catalog();
        let mut cached = CachedStlSelector::with_settings(CacheSettings {
            epoch_commits: 1_000_000,
            drift_threshold: 0.2,
            drift_check_every: 0,
            warmup_commits: 10,
            explore_every: 0,
            ..CacheSettings::default()
        });
        let t = txn(1, &[1], &[2]);
        let calm = WorkloadSignal {
            grants: 10_000,
            conflicts: 100,
        };
        cached.select_with_signal(&t, &cat, &metrics, calm);
        cached.select_with_signal(&t, &cat, &metrics, calm);
        assert_eq!(cached.cache_stats().refits, 1);
        // The grants issued since the fit run at an 80% conflict ratio
        // against the 1% the epoch was fitted on: early re-fit — even
        // though the *cumulative* ratio (which lifetime counters would
        // compare) has barely moved off 1%.
        let stormy = WorkloadSignal {
            grants: 10_100,
            conflicts: 180,
        };
        assert!((stormy.conflict_ratio() - calm.conflict_ratio()).abs() < 0.2);
        cached.select_with_signal(&t, &cat, &metrics, stormy);
        assert_eq!(cached.cache_stats().refits, 2);
        // A trickle of new grants is never enough to drift (noise guard).
        let trickle = WorkloadSignal {
            grants: stormy.grants + 10,
            conflicts: stormy.conflicts + 10,
        };
        cached.select_with_signal(&t, &cat, &metrics, trickle);
        assert_eq!(cached.cache_stats().refits, 2);
    }

    #[test]
    fn params_drift_probe_refits_when_metrics_shift() {
        let mut metrics = warmed_metrics();
        let cat = catalog();
        let mut cached = CachedStlSelector::with_settings(CacheSettings {
            epoch_commits: 1_000_000,
            drift_threshold: 0.3,
            drift_check_every: 2,
            warmup_commits: 10,
            explore_every: 0,
            ..CacheSettings::default()
        });
        let t = txn(1, &[1], &[2]);
        cached.select(&t, &cat, &metrics);
        cached.select(&t, &cat, &metrics);
        assert_eq!(cached.cache_stats().refits, 1, "no drift yet");
        // 2PL turns deadlock-prone: p_abort moves from 0 to ~0.5.
        for _ in 0..150 {
            metrics.record_restart(
                CcMethod::TwoPhaseLocking,
                metrics::TxnOutcome::DeadlockRestart,
            );
            metrics.record_lock_hold(CcMethod::TwoPhaseLocking, Duration::from_millis(300), true);
        }
        // Next probe (counter multiple of 2) must notice.
        cached.select(&t, &cat, &metrics);
        cached.select(&t, &cat, &metrics);
        assert_eq!(cached.cache_stats().refits, 2, "probe caught the drift");
    }

    #[test]
    fn warmup_and_exploration_mirror_the_fresh_selector() {
        let cat = catalog();
        let cold = SimMetrics::new();
        let mut cached = CachedStlSelector::with_settings(CacheSettings {
            warmup_commits: 1000,
            explore_every: 0,
            ..CacheSettings::default()
        });
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..6 {
            let d = cached.select(&txn(i, &[1], &[2]), &cat, &cold);
            assert!(d.exploratory);
            seen.insert(d.method);
        }
        assert_eq!(seen.len(), 3, "warm-up must exercise every method");
        assert_eq!(cached.cache_stats().epoch, 0, "no fit during warm-up");
    }

    #[test]
    fn snapshot_summary_matches_fresh_shape_at_fit_time() {
        let metrics = warmed_metrics();
        let cat = catalog();
        let snapshot = EpochSnapshot::fit(&metrics, 1, WorkloadSignal::default(), None);
        for i in 0..12u64 {
            let t = txn(i, &[i % 12, (i + 5) % 12], &[(i + 1) % 12, (i + 7) % 12]);
            let frozen = snapshot.summary_for(&t, &cat);
            let fresh = StlSelector::shape_for(&t, &cat, &metrics).summary();
            assert_eq!(frozen.m, fresh.m);
            assert_eq!(frozen.n, fresh.n);
            assert_eq!(frozen.read_loss.to_bits(), fresh.read_loss.to_bits());
            assert_eq!(frozen.write_loss.to_bits(), fresh.write_loss.to_bits());
        }
    }

    #[test]
    fn full_grid_is_flushed_not_grown() {
        let metrics = warmed_metrics();
        let model = StlSelector::model_from_metrics(&metrics);
        let params = MethodParamSet::measure(&metrics);
        let mut cache = SelectionCache::new(0.0, 4);
        for i in 0..10 {
            let summary = ShapeSummary {
                m: 1,
                n: 1,
                read_loss: i as f64,
                write_loss: 1.0,
            };
            cache.decide(&model, &params, &summary);
        }
        assert!(cache.len() <= 4);
        assert!(cache.flushes > 0);
    }

    #[test]
    fn settings_validation_rejects_nonsense() {
        assert!(CacheSettings::default().validate().is_ok());
        assert!(CacheSettings {
            quant_rel: -0.1,
            ..CacheSettings::default()
        }
        .validate()
        .is_err());
        assert!(CacheSettings {
            drift_threshold: f64::NAN,
            ..CacheSettings::default()
        }
        .validate()
        .is_err());
        assert!(CacheSettings {
            max_entries: 0,
            ..CacheSettings::default()
        }
        .validate()
        .is_err());
    }
}
