//! Single-use reply channels for control-plane conversations.
//!
//! The runtime's diagnostics (wait-for edges, waiting transactions, log
//! snapshots) are request/response exchanges: the requester enqueues a
//! command carrying a reply slot, the shard fills it exactly once. A
//! oneshot is that slot — one mutex-guarded cell and a condvar, no
//! allocation churn beyond the single `Arc`, with the usual disconnect
//! semantics (a dropped sender wakes the receiver with an error instead
//! of leaving it blocked).

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a receive completed without a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The sender was dropped without sending.
    Disconnected,
    /// [`OneshotReceiver::recv_timeout`] gave up waiting.
    Timeout,
}

struct State<T> {
    value: Option<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The sending half; consumed by [`OneshotSender::send`].
pub struct OneshotSender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half.
pub struct OneshotReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a connected oneshot pair.
pub fn channel<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            value: None,
            closed: false,
        }),
        ready: Condvar::new(),
    });
    (
        OneshotSender {
            shared: Arc::clone(&shared),
        },
        OneshotReceiver { shared },
    )
}

impl<T> OneshotSender<T> {
    /// Deliver the reply, waking the receiver. Consumes the sender.
    pub fn send(self, value: T) {
        let mut state = self.shared.state.lock().expect("oneshot poisoned");
        state.value = Some(value);
        drop(state);
        self.shared.ready.notify_one();
        // The trailing Drop marks the channel closed, which is harmless:
        // the value is already in place and checked first by the receiver.
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("oneshot poisoned");
        state.closed = true;
        drop(state);
        self.shared.ready.notify_one();
    }
}

impl<T> OneshotReceiver<T> {
    /// Block until the reply arrives or the sender is dropped.
    pub fn recv(self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("oneshot poisoned");
        loop {
            if let Some(value) = state.value.take() {
                return Ok(value);
            }
            if state.closed {
                return Err(RecvError::Disconnected);
            }
            state = self.shared.ready.wait(state).expect("oneshot poisoned");
        }
    }

    /// Block until the reply arrives, the sender is dropped, or `timeout`
    /// elapses.
    pub fn recv_timeout(self, timeout: Duration) -> Result<T, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("oneshot poisoned");
        loop {
            if let Some(value) = state.value.take() {
                return Ok(value);
            }
            if state.closed {
                return Err(RecvError::Disconnected);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvError::Timeout);
            }
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(state, left)
                .expect("oneshot poisoned");
            state = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_across_threads() {
        let (tx, rx) = channel::<u64>();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(7);
        });
        assert_eq!(rx.recv(), Ok(7));
        sender.join().unwrap();
    }

    #[test]
    fn dropped_sender_disconnects() {
        let (tx, rx) = channel::<u64>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn timeout_fires_without_a_reply() {
        let (tx, rx) = channel::<u64>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvError::Timeout)
        );
        drop(tx);
    }

    #[test]
    fn reply_beats_timeout() {
        let (tx, rx) = channel::<&'static str>();
        tx.send("now");
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok("now"));
    }
}
