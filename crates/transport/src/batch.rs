//! A small-vector batch: the unit the send batcher hands to a shard.
//!
//! Protocol batches are almost always tiny (a transaction sends a handful
//! of messages per destination shard), so [`SmallBatch`] stores the first
//! [`INLINE_BATCH`] values inline — the whole batch travels through the
//! ring *inside its slot*, with no heap allocation on the client and, more
//! importantly, no cross-thread `free` on the shard. Larger batches spill
//! the remainder into a `Vec`.

/// Values stored inline before spilling to the heap.
pub const INLINE_BATCH: usize = 4;

/// A batch of values, inline up to [`INLINE_BATCH`], spilled beyond.
#[derive(Debug, Clone)]
pub struct SmallBatch<T> {
    inline: [Option<T>; INLINE_BATCH],
    len: usize,
    spill: Vec<T>,
}

impl<T> Default for SmallBatch<T> {
    fn default() -> Self {
        SmallBatch {
            inline: [None, None, None, None],
            len: 0,
            spill: Vec::new(),
        }
    }
}

impl<T> SmallBatch<T> {
    /// An empty batch.
    pub fn new() -> Self {
        SmallBatch::default()
    }

    /// Append a value, spilling to the heap past the inline capacity.
    pub fn push(&mut self, value: T) {
        if self.len < INLINE_BATCH {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Number of values in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the values in push order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline
            .iter()
            .take(self.len)
            .filter_map(Option::as_ref)
            .chain(self.spill.iter())
    }
}

impl<T> FromIterator<T> for SmallBatch<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut batch = SmallBatch::new();
        for value in iter {
            batch.push(value);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill_preserves_order() {
        let mut batch = SmallBatch::new();
        for i in 0..10 {
            batch.push(i);
        }
        assert_eq!(batch.len(), 10);
        assert!(!batch.is_empty());
        let seen: Vec<i32> = batch.iter().copied().collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn small_batches_never_touch_the_heap() {
        let batch: SmallBatch<u64> = (0..INLINE_BATCH as u64).collect();
        assert_eq!(batch.len(), INLINE_BATCH);
        assert_eq!(batch.spill.capacity(), 0, "no spill alloc at capacity");
    }

    #[test]
    fn empty_batch_iterates_nothing() {
        let batch: SmallBatch<String> = SmallBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.iter().count(), 0);
    }
}
