//! Reusable reply mailboxes and the generation-tagged slab registry.
//!
//! The reply half of the message plane. Where [`crate::ring`] carries
//! commands *towards* a single consumer (a shard), this module carries
//! events *back* to many waiting clients — and does it without the two
//! costs the naive design pays per transaction: allocating a fresh
//! channel for every incarnation, and resolving the recipient under a
//! global registry mutex.
//!
//! Three pieces:
//!
//! * **Mailboxes** — each [`Mailbox`] wraps one bounded MPSC ring
//!   (the same Vyukov sequence-stamped slots and park/unpark handshake
//!   as [`crate::ring`]) owned by one consumer thread at a time.
//!   Mailboxes live in a slab and are *reused*: acquiring one pops a
//!   free slot off a lock-free freelist (or lazily grows the slab by a
//!   chunk), dropping it pushes the slot back. No channel is ever
//!   allocated per registration.
//! * **The slab registry** — [`MailboxRegistry`] maps a live `u64` key
//!   (the runtime uses the transaction id) to its mailbox slot through a
//!   fixed-size array of packed atomic entries: register is one CAS,
//!   [`MailboxRegistry::deliver`] is one load plus a verified push,
//!   deregister is one CAS. No lock is taken on any of them. Two live
//!   keys that collide on the same bucket (ids a multiple of the index
//!   size apart) spill into a mutex-guarded overflow map — a
//!   correctness net that stays empty in practice and is skipped
//!   entirely (one atomic load) while it is.
//! * **The generation tag** — slots are reused by later transactions,
//!   and a delivery can race the slot's rebinding: the producer resolves
//!   key → slot, the old registration is torn down, a new one binds the
//!   same slot, and only then does the producer's push land. To keep the
//!   simulator's "a stale reply for an aborted incarnation is dropped"
//!   rule under that race, every event travels through the mailbox
//!   *tagged with the key it was addressed to*, and the consumer
//!   discards any event whose tag is not the key it is currently
//!   waiting on. Keys must never be reused (the runtime's transaction
//!   ids are a monotone counter), which makes the key its own perfect
//!   incarnation tag. Registering a new key also sweeps the mailbox of
//!   leftovers from the previous incarnation, bounding occupancy to one
//!   incarnation's traffic plus in-flight races.
//!
//! [`MailboxOptions::tag_check`] exists solely so the race-test suite
//! can *disable* the tag machinery (no consumer filtering, no sweep on
//! register) and demonstrate that the races it guards against are real:
//! with the tag off, a delayed delivery for an earlier key observably
//! surfaces in a later incarnation sharing the slot.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

use crate::ring::{self, RingReceiver, RingSender, TrySendError};

/// One lazily initialised slab chunk of mailbox slots.
type SlotChunk<E> = OnceLock<Box<[Slot<E>]>>;

/// Slots per lazily initialised slab chunk.
const CHUNK: usize = 64;

/// A free index bucket. Packed entries put the key's low 48 bits in the
/// high bits and the slot in the low 16, so no valid entry is all-ones
/// (slots are capped below `0xFFFF`).
const EMPTY: u64 = u64::MAX;

/// Key bits kept in an index entry for verification. Two distinct keys
/// collide only if they differ by a multiple of 2^48 — unreachable for
/// keys drawn from a counter.
const KEY_MASK: u64 = (1 << 48) - 1;

/// Hard cap on slab slots (16-bit slot field, all-ones reserved so a
/// packed entry can never equal [`EMPTY`]).
const MAX_SLOTS: usize = (1 << 16) - 1;

/// Freelist "no head" sentinel.
const NO_SLOT: u64 = u32::MAX as u64;

fn pack(key: u64, slot: u32) -> u64 {
    ((key & KEY_MASK) << 16) | slot as u64
}

fn entry_matches(entry: u64, key: u64) -> bool {
    entry != EMPTY && (entry >> 16) == (key & KEY_MASK)
}

fn entry_slot(entry: u64) -> u32 {
    (entry & 0xFFFF) as u32
}

/// Tuning knobs for a [`MailboxRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct MailboxOptions {
    /// Buckets in the lock-free key index (rounded up to a power of
    /// two). Two *live* keys landing in one bucket spill to the overflow
    /// map; with keys from a counter that needs them `index_capacity`
    /// apart and both still live.
    pub index_capacity: usize,
    /// Bounded capacity of each mailbox ring. Must exceed the events one
    /// incarnation can have outstanding while its consumer is not
    /// draining (for the runtime: replies to every in-flight request),
    /// or producers briefly spin on the full mailbox.
    pub mailbox_capacity: usize,
    /// Maximum concurrently acquired mailboxes. The slab grows towards
    /// this in chunks of 64; acquiring past it waits for a release.
    pub max_clients: usize,
    /// The stale-event guard (see the module docs). `false` is a
    /// test-only mutation switch that disables consumer-side tag
    /// filtering *and* the sweep-on-register, modelling a registry
    /// without incarnation tags.
    pub tag_check: bool,
}

impl Default for MailboxOptions {
    fn default() -> Self {
        MailboxOptions {
            index_capacity: 4096,
            mailbox_capacity: 256,
            max_clients: 4096,
            tag_check: true,
        }
    }
}

/// One slab slot: a ring whose sender side is shared by every producer
/// and whose receiver side is held by the current [`Mailbox`] owner (and
/// parked here between owners).
struct Slot<E> {
    tx: RingSender<(u64, E)>,
    rx: Mutex<Option<RingReceiver<(u64, E)>>>,
    /// The key currently bound to this slot (0 = unbound). Producers
    /// re-check it before spinning on a full ring so deliveries to a
    /// dead registration are dropped, never waited on.
    bound: AtomicU64,
    /// Caller-defined registration metadata (the runtime stores the
    /// concurrency-control method for the deadlock detector).
    meta: AtomicU64,
    /// Freelist link (slot index, [`NO_SLOT`] terminated).
    next_free: AtomicU64,
}

struct Shared<E> {
    /// The lock-free key index: packed `(key₄₈, slot₁₆)` entries.
    index: Box<[AtomicU64]>,
    index_mask: usize,
    /// Correctness net for live bucket collisions.
    overflow: Mutex<HashMap<u64, u32>>,
    /// Lets `lookup` skip the overflow mutex with one load while the map
    /// is empty (the overwhelmingly common case).
    overflow_len: AtomicUsize,
    /// The slab, grown lazily chunk by chunk (readers index initialised
    /// chunks without any lock).
    chunks: Box<[SlotChunk<E>]>,
    /// Slots handed out so far (high-water mark; freed slots recycle
    /// through the freelist, not this counter).
    allocated: AtomicUsize,
    max_slots: usize,
    /// Treiber stack of free slot indices: `(version₃₂ | index₃₂)`, the
    /// version incremented on every successful swing to defeat ABA.
    free_head: AtomicU64,
    /// Live registrations.
    live: AtomicUsize,
    /// Stale events discarded by consumers (tag mismatches plus
    /// sweep-on-register leftovers) — the observable count of the
    /// drop-stale-replies rule firing.
    stale_dropped: AtomicU64,
    mailbox_capacity: usize,
    tag_check: bool,
}

impl<E> Shared<E> {
    fn slot(&self, idx: u32) -> &Slot<E> {
        let chunk = self.chunks[idx as usize / CHUNK]
            .get()
            .expect("slot chunk initialised before use");
        &chunk[idx as usize % CHUNK]
    }

    fn freelist_push(&self, idx: u32) {
        loop {
            let head = self.free_head.load(Ordering::SeqCst);
            self.slot(idx)
                .next_free
                .store(head & 0xFFFF_FFFF, Ordering::SeqCst);
            let next = ((head >> 32).wrapping_add(1)) << 32 | idx as u64;
            if self
                .free_head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    fn freelist_pop(&self) -> Option<u32> {
        loop {
            let head = self.free_head.load(Ordering::SeqCst);
            let idx = head & 0xFFFF_FFFF;
            if idx == NO_SLOT {
                return None;
            }
            let next = self.slot(idx as u32).next_free.load(Ordering::SeqCst);
            let new = ((head >> 32).wrapping_add(1)) << 32 | next;
            if self
                .free_head
                .compare_exchange(head, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(idx as u32);
            }
        }
    }

    /// Resolve a key to its slot: one bucket load on the fast path, the
    /// overflow map only while it is provably non-empty.
    fn lookup(&self, key: u64) -> Option<u32> {
        let entry = self.index[(key as usize) & self.index_mask].load(Ordering::SeqCst);
        if entry_matches(entry, key) {
            return Some(entry_slot(entry));
        }
        if self.overflow_len.load(Ordering::SeqCst) > 0 {
            return self
                .overflow
                .lock()
                .expect("overflow map poisoned")
                .get(&key)
                .copied();
        }
        None
    }

    fn deregister(&self, key: u64) {
        let bucket = &self.index[(key as usize) & self.index_mask];
        let entry = bucket.load(Ordering::SeqCst);
        let slot = if entry_matches(entry, key) {
            // CAS, not a store: a concurrent register for a colliding key
            // must not be clobbered. (It cannot swing to another entry
            // for *our* key — keys are never reused.) Losing the CAS
            // means a racing deregister of the same key already removed
            // it — only the winner unbinds and decrements `live`.
            bucket
                .compare_exchange(entry, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
                .ok()
                .map(|_| entry_slot(entry))
        } else if self.overflow_len.load(Ordering::SeqCst) > 0 {
            let removed = self
                .overflow
                .lock()
                .expect("overflow map poisoned")
                .remove(&key);
            if removed.is_some() {
                self.overflow_len.fetch_sub(1, Ordering::SeqCst);
            }
            removed
        } else {
            None
        };
        if let Some(slot) = slot {
            let _ =
                self.slot(slot)
                    .bound
                    .compare_exchange(key, 0, Ordering::SeqCst, Ordering::SeqCst);
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The shared reply registry: a slab of reusable mailboxes plus the
/// lock-free key index routing deliveries to them. Cheap to share via
/// the handles it hands out; see the module docs for the design.
pub struct MailboxRegistry<E> {
    shared: Arc<Shared<E>>,
}

impl<E: Send> Default for MailboxRegistry<E> {
    fn default() -> Self {
        MailboxRegistry::new()
    }
}

impl<E: Send> MailboxRegistry<E> {
    /// A registry with [`MailboxOptions::default`].
    pub fn new() -> Self {
        MailboxRegistry::with_options(MailboxOptions::default())
    }

    /// A registry with explicit tuning.
    pub fn with_options(opts: MailboxOptions) -> Self {
        let index_cap = opts.index_capacity.next_power_of_two().max(64);
        let max_slots = opts.max_clients.clamp(1, MAX_SLOTS);
        let shared = Arc::new(Shared {
            index: (0..index_cap).map(|_| AtomicU64::new(EMPTY)).collect(),
            index_mask: index_cap - 1,
            overflow: Mutex::new(HashMap::new()),
            overflow_len: AtomicUsize::new(0),
            chunks: (0..max_slots.div_ceil(CHUNK))
                .map(|_| OnceLock::new())
                .collect(),
            allocated: AtomicUsize::new(0),
            max_slots,
            free_head: AtomicU64::new(NO_SLOT),
            live: AtomicUsize::new(0),
            stale_dropped: AtomicU64::new(0),
            mailbox_capacity: opts.mailbox_capacity.max(4),
            tag_check: opts.tag_check,
        });
        MailboxRegistry { shared }
    }

    /// Take a mailbox out of the slab: a freelist pop when one is free, a
    /// lazily initialised chunk slot otherwise. Blocks (yielding) only
    /// when `max_clients` mailboxes are simultaneously held.
    pub fn acquire(&self) -> Mailbox<E> {
        let shared = &self.shared;
        let slot = loop {
            if let Some(idx) = shared.freelist_pop() {
                break idx;
            }
            let n = shared.allocated.fetch_add(1, Ordering::SeqCst);
            if n < shared.max_slots {
                shared.chunks[n / CHUNK].get_or_init(|| {
                    (0..CHUNK)
                        .map(|_| {
                            let (tx, rx) = ring::channel(shared.mailbox_capacity);
                            Slot {
                                tx,
                                rx: Mutex::new(Some(rx)),
                                bound: AtomicU64::new(0),
                                meta: AtomicU64::new(0),
                                next_free: AtomicU64::new(NO_SLOT),
                            }
                        })
                        .collect()
                });
                break n as u32;
            }
            // Slab exhausted: hand the claim back and wait for a release.
            shared.allocated.fetch_sub(1, Ordering::SeqCst);
            thread::yield_now();
        };
        let rx = shared
            .slot(slot)
            .rx
            .lock()
            .expect("slot receiver poisoned")
            .take()
            .expect("a free slot parks its receiver");
        Mailbox {
            shared: Arc::clone(shared),
            slot,
            rx: Some(rx),
            pending: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// Bind `key` (nonzero, never reused) to `mailbox` with caller
    /// metadata. Sweeps the mailbox of the previous incarnation's
    /// leftovers first (unless the tag machinery is mutation-disabled).
    /// Must complete before any event addressed to `key` can be produced
    /// — the runtime registers before the incarnation's first request
    /// message leaves the client thread.
    pub fn register(&self, key: u64, meta: u64, mailbox: &mut Mailbox<E>) {
        debug_assert!(key != 0, "key 0 is the unbound sentinel");
        debug_assert!(
            Arc::ptr_eq(&self.shared, &mailbox.shared),
            "mailbox belongs to a different registry"
        );
        let shared = &self.shared;
        if shared.tag_check {
            mailbox.clear();
        }
        let slot = shared.slot(mailbox.slot);
        slot.meta.store(meta, Ordering::SeqCst);
        slot.bound.store(key, Ordering::SeqCst);
        let bucket = &shared.index[(key as usize) & shared.index_mask];
        debug_assert!(
            !entry_matches(bucket.load(Ordering::SeqCst), key),
            "key {key} registered while live"
        );
        let packed = pack(key, mailbox.slot);
        if bucket
            .compare_exchange(EMPTY, packed, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            // Bucket held by a live colliding key: the overflow map is
            // the slow home for this registration. The length counter is
            // raised first so a resolver that misses the bucket checks
            // the map from the moment the entry exists.
            shared.overflow_len.fetch_add(1, Ordering::SeqCst);
            let prev = shared
                .overflow
                .lock()
                .expect("overflow map poisoned")
                .insert(key, mailbox.slot);
            debug_assert!(prev.is_none(), "key {key} registered while live");
        }
        shared.live.fetch_add(1, Ordering::SeqCst);
    }

    /// Tear down `key`'s registration. Deliveries for it become no-ops;
    /// anything already in (or racing into) the mailbox is discarded by
    /// the consumer's tag filter.
    pub fn deregister(&self, key: u64) {
        self.shared.deregister(key);
    }

    /// Route an event to the mailbox `key` is bound to. Returns `false`
    /// — dropping the event — when the key is not live, which is exactly
    /// the simulator's stale-reply rule. A full mailbox with a live
    /// binding is waited out with yields (the consumer drains whole
    /// rings per wakeup, so the wait is bounded by one scheduling
    /// quantum in practice); a full mailbox whose binding died mid-wait
    /// drops the event instead.
    pub fn deliver(&self, key: u64, event: E) -> bool {
        let shared = &self.shared;
        let Some(slot_idx) = shared.lookup(key) else {
            return false;
        };
        let slot = shared.slot(slot_idx);
        let mut tagged = (key, event);
        loop {
            match slot.tx.try_send(tagged) {
                Ok(()) => return true,
                Err(TrySendError::Full(v)) => {
                    if slot.bound.load(Ordering::SeqCst) != key {
                        return false;
                    }
                    tagged = v;
                    thread::yield_now();
                }
                // Unreachable while the slab is alive (it owns a sender),
                // but a dropped registry mid-delivery is not an error.
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
    }

    /// Like [`MailboxRegistry::deliver`] but never waits on a full
    /// mailbox: the event is dropped (returning `false`) instead.
    /// Required whenever the delivering thread might *be* the mailbox's
    /// consumer — waiting on a ring only oneself can drain would
    /// deadlock — and useful for best-effort signals.
    pub fn try_deliver(&self, key: u64, event: E) -> bool {
        let shared = &self.shared;
        let Some(slot_idx) = shared.lookup(key) else {
            return false;
        };
        shared.slot(slot_idx).tx.try_send((key, event)).is_ok()
    }

    /// The metadata `key` was registered with, if it is live.
    pub fn resolve_meta(&self, key: u64) -> Option<u64> {
        let shared = &self.shared;
        let slot_idx = shared.lookup(key)?;
        let slot = shared.slot(slot_idx);
        let meta = slot.meta.load(Ordering::SeqCst);
        // Re-check the binding so a slot rebound between lookup and the
        // meta load cannot attribute the new key's metadata to the old.
        (slot.bound.load(Ordering::SeqCst) == key).then_some(meta)
    }

    /// Live registrations.
    pub fn len(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// True when no key is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stale events consumers have discarded so far (tag mismatches and
    /// register-time sweeps).
    pub fn stale_dropped(&self) -> u64 {
        self.shared.stale_dropped.load(Ordering::Relaxed)
    }

    /// Registrations that had to take the overflow path (live bucket
    /// collisions). Diagnostics: nonzero is correct but means the index
    /// is undersized for the live-key spread.
    pub fn overflow_entries(&self) -> usize {
        self.shared.overflow_len.load(Ordering::SeqCst)
    }
}

/// One reusable reply mailbox, owned by a single consumer thread at a
/// time. Dropping it sweeps leftovers and returns the slot to the slab.
pub struct Mailbox<E> {
    shared: Arc<Shared<E>>,
    slot: u32,
    /// Taken out of the slot while owned; parked back on drop.
    rx: Option<RingReceiver<(u64, E)>>,
    /// Events drained from the ring but not yet handed to the consumer.
    pending: VecDeque<(u64, E)>,
    scratch: Vec<(u64, E)>,
}

impl<E> Mailbox<E> {
    /// The slab slot this mailbox occupies (stable across incarnations
    /// for as long as the mailbox is held).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// Receive the next event addressed to `key`, parking up to
    /// `timeout`. Events tagged with any other key are stale leftovers
    /// or in-flight races from earlier incarnations of this slot; they
    /// are discarded and counted. Returns `None` on timeout.
    pub fn recv_timeout(&mut self, key: u64, timeout: Duration) -> Option<E> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            while let Some((tag, event)) = self.pending.pop_front() {
                if tag == key || !self.shared.tag_check {
                    return Some(event);
                }
                self.shared.stale_dropped.fetch_add(1, Ordering::Relaxed);
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            let rx = self.rx.as_mut().expect("owned mailbox holds its receiver");
            self.scratch.clear();
            let drained = rx.drain_for(&mut self.scratch, left).unwrap_or(0);
            self.pending.extend(self.scratch.drain(..));
            if drained == 0 {
                return None;
            }
        }
    }

    /// Discard everything queued (ring and local buffer), counting the
    /// discards as stale drops.
    pub fn clear(&mut self) {
        let mut swept = self.pending.len() as u64;
        self.pending.clear();
        let rx = self.rx.as_mut().expect("owned mailbox holds its receiver");
        self.scratch.clear();
        while rx.drain_into(&mut self.scratch) > 0 {
            swept += self.scratch.len() as u64;
            self.scratch.clear();
        }
        if swept > 0 {
            self.shared
                .stale_dropped
                .fetch_add(swept, Ordering::Relaxed);
        }
    }

    /// Events currently buffered consumer-side (diagnostics for tests).
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

impl<E> Drop for Mailbox<E> {
    fn drop(&mut self) {
        // Defensive teardown: a mailbox dropped while its key is still
        // registered (a panicking client) unbinds it so the slot's next
        // owner cannot inherit the registration.
        let key = self.shared.slot(self.slot).bound.load(Ordering::SeqCst);
        if key != 0 {
            self.shared.deregister(key);
        }
        // Sweep leftovers so their payloads do not outlive this owner —
        // counted like every other consumer-side stale discard.
        self.clear();
        let slot = self.shared.slot(self.slot);
        *slot.rx.lock().expect("slot receiver poisoned") = self.rx.take();
        self.shared.freelist_push(self.slot);
    }
}

impl<E: Send> Clone for MailboxRegistry<E> {
    fn clone(&self) -> Self {
        MailboxRegistry {
            shared: Arc::clone(&self.shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(opts: MailboxOptions) -> MailboxRegistry<u64> {
        MailboxRegistry::with_options(opts)
    }

    fn small() -> MailboxOptions {
        MailboxOptions {
            index_capacity: 64,
            mailbox_capacity: 8,
            max_clients: 8,
            ..MailboxOptions::default()
        }
    }

    #[test]
    fn register_deliver_receive_deregister_roundtrip() {
        let reg = registry(small());
        let mut mb = reg.acquire();
        reg.register(7, 42, &mut mb);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.resolve_meta(7), Some(42));
        assert!(reg.deliver(7, 700));
        assert_eq!(mb.recv_timeout(7, Duration::from_secs(1)), Some(700));
        reg.deregister(7);
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.resolve_meta(7), None);
        assert!(!reg.deliver(7, 701), "stale delivery is a no-op");
    }

    #[test]
    fn slot_reuse_discards_earlier_incarnations_events() {
        let reg = registry(small());
        let mut mb = reg.acquire();
        reg.register(1, 0, &mut mb);
        assert!(reg.deliver(1, 10));
        assert!(reg.deliver(1, 11));
        // Consume only one of the two; the other is left in the ring.
        assert_eq!(mb.recv_timeout(1, Duration::from_secs(1)), Some(10));
        reg.deregister(1);
        // Next incarnation on the *same* mailbox: the leftover for key 1
        // is swept at register time and never surfaces.
        reg.register(2, 0, &mut mb);
        assert!(reg.deliver(2, 20));
        assert_eq!(mb.recv_timeout(2, Duration::from_secs(1)), Some(20));
        assert!(reg.stale_dropped() >= 1, "the leftover was counted");
        reg.deregister(2);
    }

    #[test]
    fn tag_filter_drops_in_flight_stale_events() {
        // Simulate the delivery/rebind race directly: an event tagged
        // with the old key lands *after* the new registration's sweep.
        let reg = registry(small());
        let mut mb = reg.acquire();
        reg.register(1, 0, &mut mb);
        reg.deregister(1);
        reg.register(2, 0, &mut mb);
        // Push through the slot's sender exactly as a racing deliver
        // whose lookup resolved before the deregister would.
        let slot = reg.shared.slot(mb.slot());
        slot.tx.try_send((1, 999)).unwrap();
        assert!(reg.deliver(2, 20));
        assert_eq!(
            mb.recv_timeout(2, Duration::from_secs(1)),
            Some(20),
            "the stale event must be filtered, not returned"
        );
        assert!(reg.stale_dropped() >= 1);
        reg.deregister(2);
    }

    #[test]
    fn disabling_the_tag_leaks_the_stale_event() {
        // The mutation check: the identical sequence with the tag
        // machinery disabled hands the earlier incarnation's event to
        // the later one.
        let reg = registry(MailboxOptions {
            tag_check: false,
            ..small()
        });
        let mut mb = reg.acquire();
        reg.register(1, 0, &mut mb);
        assert!(reg.deliver(1, 999));
        reg.deregister(1);
        reg.register(2, 0, &mut mb);
        assert!(reg.deliver(2, 20));
        assert_eq!(
            mb.recv_timeout(2, Duration::from_secs(1)),
            Some(999),
            "without the tag, the stale reply reaches the new incarnation"
        );
        reg.deregister(2);
    }

    #[test]
    fn mailboxes_recycle_through_the_freelist() {
        let reg = registry(small());
        let first = reg.acquire();
        let first_slot = first.slot();
        drop(first);
        let second = reg.acquire();
        assert_eq!(
            second.slot(),
            first_slot,
            "a released slot is reused before the slab grows"
        );
        let third = reg.acquire();
        assert_ne!(third.slot(), second.slot());
    }

    #[test]
    fn colliding_live_keys_take_the_overflow_path() {
        let reg = registry(small()); // index capacity 64
        let mut a = reg.acquire();
        let mut b = reg.acquire();
        // 5 and 69 share bucket 5 of a 64-bucket index.
        reg.register(5, 0, &mut a);
        reg.register(69, 0, &mut b);
        assert_eq!(reg.overflow_entries(), 1);
        assert!(reg.deliver(5, 50));
        assert!(reg.deliver(69, 690));
        assert_eq!(a.recv_timeout(5, Duration::from_secs(1)), Some(50));
        assert_eq!(b.recv_timeout(69, Duration::from_secs(1)), Some(690));
        reg.deregister(5);
        assert!(
            reg.deliver(69, 691),
            "overflow entry survives the other's deregister"
        );
        assert_eq!(b.recv_timeout(69, Duration::from_secs(1)), Some(691));
        reg.deregister(69);
        assert_eq!(reg.overflow_entries(), 0);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn try_deliver_drops_on_full_instead_of_waiting() {
        let reg = registry(small()); // capacity 8
        let mut mb = reg.acquire();
        reg.register(1, 0, &mut mb);
        for i in 0..8 {
            assert!(reg.try_deliver(1, i));
        }
        assert!(!reg.try_deliver(1, 99), "full mailbox: dropped, no wait");
        assert_eq!(mb.recv_timeout(1, Duration::from_secs(1)), Some(0));
        assert!(reg.try_deliver(1, 8), "freed slot accepts again");
        reg.deregister(1);
        assert!(!reg.try_deliver(1, 9), "stale delivery is a no-op");
    }

    #[test]
    fn full_mailbox_with_dead_binding_drops_instead_of_spinning() {
        let reg = registry(small()); // capacity 8
        let mut mb = reg.acquire();
        reg.register(1, 0, &mut mb);
        for i in 0..8 {
            assert!(reg.deliver(1, i));
        }
        // Ring full. Kill the binding from another thread after a beat —
        // the delivery must return false rather than spin forever.
        let t = std::thread::spawn({
            let reg = reg.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                reg.deregister(1);
            }
        });
        assert!(!reg.deliver(1, 99));
        t.join().unwrap();
    }

    #[test]
    fn dropping_a_registered_mailbox_deregisters_it() {
        let reg = registry(small());
        let mut mb = reg.acquire();
        reg.register(3, 9, &mut mb);
        drop(mb);
        assert_eq!(reg.len(), 0, "drop tears the registration down");
        assert!(!reg.deliver(3, 1));
    }

    #[test]
    fn acquire_waits_for_a_release_when_the_slab_is_full() {
        let reg = Arc::new(registry(MailboxOptions {
            max_clients: 1,
            ..small()
        }));
        let held = reg.acquire();
        let reg2 = Arc::clone(&reg);
        let waiter = std::thread::spawn(move || reg2.acquire().slot());
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert_eq!(waiter.join().unwrap(), 0, "the lone slot is recycled");
    }
}
