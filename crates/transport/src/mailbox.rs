//! Reusable reply mailboxes and the generation-tagged slab registry.
//!
//! The reply half of the message plane. Where [`crate::ring`] carries
//! commands *towards* a single consumer (a shard), this module carries
//! events *back* to many waiting clients — and does it without the two
//! costs the naive design pays per transaction: allocating a fresh
//! channel for every incarnation, and resolving the recipient under a
//! global registry mutex.
//!
//! Three pieces:
//!
//! * **Mailboxes** — each [`Mailbox`] wraps one bounded MPSC ring
//!   (the same Vyukov sequence-stamped slots and park/unpark handshake
//!   as [`crate::ring`]) owned by one consumer thread at a time.
//!   Mailboxes live in a slab and are *reused*: acquiring one pops a
//!   free slot off a lock-free freelist (or lazily grows the slab by a
//!   chunk), dropping it pushes the slot back. No channel is ever
//!   allocated per registration.
//! * **The resizable index** — [`MailboxRegistry`] maps a live `u64`
//!   key (the runtime uses the transaction id) to its mailbox slot
//!   through a chain of power-of-two tables of packed atomic entries.
//!   Register is one CAS into the newest table, deliver is one pointer
//!   load plus one bucket load on the fast path, deregister is one CAS.
//!   No lock is taken on any of them. When live registrations approach
//!   the newest table's load-factor threshold — or two live keys
//!   collide on one of its buckets — a doubled table is installed with
//!   one pointer CAS and subsequent registers land there; entries in
//!   older tables stay put and are found by walking the (short,
//!   `prev`-linked) chain until their keys deregister, draining the old
//!   generations passively. Growth stops at
//!   [`MailboxOptions::index_max_capacity`]; only a collision at that
//!   cap spills into the mutex-guarded overflow map, and overflow
//!   entries migrate back onto the lock-free tables as soon as growth
//!   or a deregistration frees their bucket. The map is skipped
//!   entirely (one atomic load) while it is empty — the overwhelmingly
//!   common case.
//! * **The generation tag** — slots are reused by later transactions,
//!   and a delivery can race the slot's rebinding: the producer resolves
//!   key → slot, the old registration is torn down, a new one binds the
//!   same slot, and only then does the producer's push land. To keep the
//!   simulator's "a stale reply for an aborted incarnation is dropped"
//!   rule under that race, every event travels through the mailbox
//!   *tagged with the key it was addressed to*, and the consumer
//!   discards any event whose tag is not the key it is currently
//!   waiting on. Keys must never be reused (the runtime's transaction
//!   ids are a monotone counter), which makes the key its own perfect
//!   incarnation tag. Registering a new key also sweeps the mailbox of
//!   leftovers from the previous incarnation, bounding occupancy to one
//!   incarnation's traffic plus in-flight races.
//!
//! Producers never wait unboundedly: a full mailbox whose binding is
//! live is spun on briefly, then parked in short naps until
//! [`MailboxOptions::deliver_timeout`] expires, at which point the
//! event is dropped and counted ([`MailboxRegistry::full_dropped`]) —
//! a stalled consumer can delay a shard thread, never wedge it. The
//! same bound applies to [`MailboxRegistry::acquire`]: once
//! `max_clients` mailboxes are simultaneously held, waiting past
//! [`MailboxOptions::acquire_timeout`] returns [`SlabExhausted`]
//! instead of blocking forever.
//!
//! [`MailboxOptions::tag_check`] exists solely so the race-test suite
//! can *disable* the tag machinery (no consumer filtering, no sweep on
//! register) and demonstrate that the races it guards against are real:
//! with the tag off, a delayed delivery for an earlier key observably
//! surfaces in a later incarnation sharing the slot.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use crate::ring::{self, RingReceiver, RingSender, TrySendError};

/// One lazily initialised slab chunk of mailbox slots.
type SlotChunk<E> = OnceLock<Box<[Slot<E>]>>;

/// Slots per lazily initialised slab chunk.
const CHUNK: usize = 64;

/// A free index bucket. Packed entries put the key's low 40 bits in the
/// high bits and the slot in the low 24, so no valid entry is all-ones
/// (slots are capped below `0xFF_FFFF`).
const EMPTY: u64 = u64::MAX;

/// Slot bits in a packed index entry.
const SLOT_BITS: u32 = 24;

/// Key bits kept in an index entry for verification. Two distinct keys
/// collide only if they differ by a multiple of 2^40 — unreachable for
/// keys drawn from a counter.
const KEY_MASK: u64 = (1 << 40) - 1;

/// Hard cap on slab slots (24-bit slot field, all-ones reserved so a
/// packed entry can never equal [`EMPTY`]).
const MAX_SLOTS: usize = (1 << SLOT_BITS) - 1;

/// Freelist "no head" sentinel.
const NO_SLOT: u64 = u32::MAX as u64;

/// Nap length once a full-mailbox delivery has exhausted its spin
/// budget and moved to timed waiting.
const FULL_NAP: Duration = Duration::from_micros(50);

fn pack(key: u64, slot: u32) -> u64 {
    ((key & KEY_MASK) << SLOT_BITS) | slot as u64
}

fn entry_matches(entry: u64, key: u64) -> bool {
    entry != EMPTY && (entry >> SLOT_BITS) == (key & KEY_MASK)
}

fn entry_slot(entry: u64) -> u32 {
    (entry & ((1 << SLOT_BITS) - 1)) as u32
}

/// Tuning knobs for a [`MailboxRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct MailboxOptions {
    /// Buckets in the *initial* lock-free key index table (rounded up to
    /// a power of two). The index doubles itself towards
    /// `index_max_capacity` as live registrations approach the current
    /// table's load-factor threshold or collide on a bucket, so this is
    /// a starting size, not a ceiling.
    pub index_capacity: usize,
    /// Ceiling on index growth (rounded up to a power of two, never
    /// below `index_capacity`). Only once the table is at this size do
    /// live bucket collisions spill to the mutex-guarded overflow map.
    pub index_max_capacity: usize,
    /// Bounded capacity of each mailbox ring. Must exceed the events one
    /// incarnation can have outstanding while its consumer is not
    /// draining (for the runtime: replies to every in-flight request),
    /// or producers wait out — and past `deliver_timeout`, drop on —
    /// the full mailbox.
    pub mailbox_capacity: usize,
    /// Maximum concurrently acquired mailboxes. The slab grows towards
    /// this in chunks of 64; acquiring past it waits (bounded by
    /// `acquire_timeout`) for a release.
    pub max_clients: usize,
    /// How long [`MailboxRegistry::acquire`] may wait for a mailbox to
    /// be released once all `max_clients` are held before returning
    /// [`SlabExhausted`].
    pub acquire_timeout: Duration,
    /// Spin iterations a delivery burns on a full mailbox with a live
    /// binding before falling back to timed naps (the consumer drains
    /// whole rings per wakeup, so in practice the spin alone absorbs
    /// one scheduling quantum).
    pub deliver_spin: u32,
    /// Total time a delivery may wait on a full, live mailbox before
    /// dropping the event and counting it
    /// ([`MailboxRegistry::full_dropped`]). Zero means "drop as soon as
    /// the spin budget is exhausted".
    pub deliver_timeout: Duration,
    /// The stale-event guard (see the module docs). `false` is a
    /// test-only mutation switch that disables consumer-side tag
    /// filtering *and* the sweep-on-register, modelling a registry
    /// without incarnation tags.
    pub tag_check: bool,
}

impl Default for MailboxOptions {
    fn default() -> Self {
        MailboxOptions {
            index_capacity: 1024,
            index_max_capacity: 1 << 20,
            mailbox_capacity: 256,
            max_clients: 65536,
            acquire_timeout: Duration::from_secs(5),
            deliver_spin: 64,
            deliver_timeout: Duration::from_secs(1),
            tag_check: true,
        }
    }
}

/// Error returned by [`MailboxRegistry::acquire`] when every one of the
/// registry's `max_clients` mailboxes stayed held for the whole
/// `acquire_timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabExhausted {
    /// The registry's `max_clients` setting at the time of the failure.
    pub max_clients: usize,
    /// How long the acquire waited before giving up.
    pub waited: Duration,
}

impl fmt::Display for SlabExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reply-mailbox slab exhausted: all {} mailboxes stayed held for {:?} \
             (raise MailboxOptions::max_clients or release mailboxes sooner)",
            self.max_clients, self.waited
        )
    }
}

impl std::error::Error for SlabExhausted {}

/// One generation of the key index: a power-of-two table of packed
/// `(key₄₀, slot₂₄)` entries, linked to the generation it replaced.
/// `prev` is fixed at construction and tables are only freed when the
/// whole registry drops, so readers walk the chain without any
/// reclamation protocol; superseded generations drain passively as
/// their keys deregister.
struct IndexTable {
    buckets: Box<[AtomicU64]>,
    mask: usize,
    /// Live-registration count at which a register in this table
    /// triggers growth (3/4 of capacity).
    grow_at: usize,
    prev: AtomicPtr<IndexTable>,
}

impl IndexTable {
    fn new(capacity: usize, prev: *mut IndexTable) -> Self {
        IndexTable {
            buckets: (0..capacity).map(|_| AtomicU64::new(EMPTY)).collect(),
            mask: capacity - 1,
            grow_at: capacity - capacity / 4,
            prev: AtomicPtr::new(prev),
        }
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

/// Owner of the table chain: `head` points at the newest generation,
/// older generations hang off `prev`. Dropping it frees the chain.
struct IndexChain {
    head: AtomicPtr<IndexTable>,
}

impl IndexChain {
    fn new(capacity: usize) -> Self {
        let table = Box::into_raw(Box::new(IndexTable::new(capacity, std::ptr::null_mut())));
        IndexChain {
            head: AtomicPtr::new(table),
        }
    }
}

impl Drop for IndexChain {
    fn drop(&mut self) {
        let mut table = *self.head.get_mut();
        while !table.is_null() {
            // Tables are only ever published into this chain and never
            // unlinked while the registry is alive, so each is freed
            // exactly once here.
            let boxed = unsafe { Box::from_raw(table) };
            table = boxed.prev.load(Ordering::Relaxed);
        }
    }
}

/// One slab slot: a ring whose sender side is shared by every producer
/// and whose receiver side is held by the current [`Mailbox`] owner (and
/// parked here between owners).
struct Slot<E> {
    tx: RingSender<(u64, E)>,
    rx: Mutex<Option<RingReceiver<(u64, E)>>>,
    /// The key currently bound to this slot (0 = unbound). Producers
    /// re-check it before waiting on a full ring so deliveries to a
    /// dead registration are dropped, never waited on.
    bound: AtomicU64,
    /// Caller-defined registration metadata (the runtime stores the
    /// concurrency-control method for the deadlock detector).
    meta: AtomicU64,
    /// Freelist link (slot index, [`NO_SLOT`] terminated).
    next_free: AtomicU64,
}

struct Shared<E> {
    /// The resizable lock-free key index (see [`IndexTable`]).
    index: IndexChain,
    /// Growth ceiling for the index (power of two).
    index_max_capacity: usize,
    /// Completed index growths (generation counter).
    index_resizes: AtomicU64,
    /// Correctness net for live bucket collisions at `index_max_capacity`.
    overflow: Mutex<HashMap<u64, u32>>,
    /// Lets `lookup` skip the overflow mutex with one load while the map
    /// is empty (the overwhelmingly common case).
    overflow_len: AtomicUsize,
    /// The slab, grown lazily chunk by chunk (readers index initialised
    /// chunks without any lock).
    chunks: Box<[SlotChunk<E>]>,
    /// Slots handed out so far (high-water mark; freed slots recycle
    /// through the freelist, not this counter).
    allocated: AtomicUsize,
    max_slots: usize,
    /// Treiber stack of free slot indices: `(version₃₂ | index₃₂)`, the
    /// version incremented on every successful swing to defeat ABA.
    free_head: AtomicU64,
    /// Live registrations.
    live: AtomicUsize,
    /// Stale events discarded by consumers (tag mismatches plus
    /// sweep-on-register leftovers) — the observable count of the
    /// drop-stale-replies rule firing.
    stale_dropped: AtomicU64,
    /// Deliveries dropped because a live mailbox stayed full past
    /// `deliver_timeout`.
    full_dropped: AtomicU64,
    mailbox_capacity: usize,
    acquire_timeout: Duration,
    deliver_spin: u32,
    deliver_timeout: Duration,
    tag_check: bool,
}

impl<E> Shared<E> {
    fn slot(&self, idx: u32) -> &Slot<E> {
        let chunk = self.chunks[idx as usize / CHUNK]
            .get()
            .expect("slot chunk initialised before use");
        &chunk[idx as usize % CHUNK]
    }

    fn freelist_push(&self, idx: u32) {
        loop {
            let head = self.free_head.load(Ordering::SeqCst);
            self.slot(idx)
                .next_free
                .store(head & 0xFFFF_FFFF, Ordering::SeqCst);
            let next = ((head >> 32).wrapping_add(1)) << 32 | idx as u64;
            if self
                .free_head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    fn freelist_pop(&self) -> Option<u32> {
        loop {
            let head = self.free_head.load(Ordering::SeqCst);
            let idx = head & 0xFFFF_FFFF;
            if idx == NO_SLOT {
                return None;
            }
            let next = self.slot(idx as u32).next_free.load(Ordering::SeqCst);
            let new = ((head >> 32).wrapping_add(1)) << 32 | next;
            if self
                .free_head
                .compare_exchange(head, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(idx as u32);
            }
        }
    }

    /// The newest index generation. Tables live as long as the registry,
    /// so the borrow is safe for any caller holding `&self`.
    fn head_table(&self) -> &IndexTable {
        unsafe { &*self.index.head.load(Ordering::SeqCst) }
    }

    /// Resolve a key to its slot: one pointer load plus one bucket load
    /// on the fast path (key in the newest table), a short `prev`-chain
    /// walk for keys registered before a growth, the overflow map only
    /// while it is provably non-empty.
    fn lookup(&self, key: u64) -> Option<u32> {
        let mut table = self.index.head.load(Ordering::SeqCst);
        while !table.is_null() {
            let t = unsafe { &*table };
            let entry = t.buckets[(key as usize) & t.mask].load(Ordering::SeqCst);
            if entry_matches(entry, key) {
                return Some(entry_slot(entry));
            }
            table = t.prev.load(Ordering::SeqCst);
        }
        if self.overflow_len.load(Ordering::SeqCst) > 0 {
            return self
                .overflow
                .lock()
                .expect("overflow map poisoned")
                .get(&key)
                .copied();
        }
        None
    }

    /// Install a doubled table on top of `from`. A no-op when `from` is
    /// no longer the newest generation (someone else already grew) or
    /// the ceiling is reached. On success, overflow entries are given
    /// the chance to migrate into the fresh buckets.
    fn grow(&self, from: *mut IndexTable) {
        if self.index.head.load(Ordering::SeqCst) != from {
            return;
        }
        let capacity = unsafe { &*from }.capacity();
        if capacity >= self.index_max_capacity {
            return;
        }
        let raw = Box::into_raw(Box::new(IndexTable::new(capacity * 2, from)));
        match self
            .index
            .head
            .compare_exchange(from, raw, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                self.index_resizes.fetch_add(1, Ordering::SeqCst);
                self.drain_overflow();
            }
            Err(_) => {
                // Lost the install race; the winner's table serves. Ours
                // was never published, so freeing it here is safe.
                drop(unsafe { Box::from_raw(raw) });
            }
        }
    }

    /// Move overflow-map entries whose bucket in the newest table is
    /// free back onto the lock-free path. The table insert happens
    /// *before* the map removal and both happen under the overflow
    /// lock, so a concurrent deregister either finds the key in the
    /// table, or misses, takes this lock, misses the map too — and its
    /// bounded chain rescan (ordered after this lock release) finds the
    /// migrated entry.
    fn drain_overflow(&self) {
        if self.overflow_len.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut map = self.overflow.lock().expect("overflow map poisoned");
        map.retain(|&key, &mut slot| {
            let t = self.head_table();
            let bucket = &t.buckets[(key as usize) & t.mask];
            if bucket
                .compare_exchange(EMPTY, pack(key, slot), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.overflow_len.fetch_sub(1, Ordering::SeqCst);
                false
            } else {
                true
            }
        });
    }

    /// CAS `key`'s entry out of whichever generation holds it. `None`
    /// means the chain has no live entry for it (or a racing deregister
    /// of the same key won the CAS).
    fn remove_from_chain(&self, key: u64) -> Option<u32> {
        let mut table = self.index.head.load(Ordering::SeqCst);
        while !table.is_null() {
            let t = unsafe { &*table };
            let bucket = &t.buckets[(key as usize) & t.mask];
            let entry = bucket.load(Ordering::SeqCst);
            if entry_matches(entry, key) {
                // CAS, not a store: a concurrent register for a colliding
                // key must not be clobbered. (It cannot swing to another
                // entry for *our* key — keys are never reused.) Losing
                // the CAS means a racing deregister of the same key
                // already removed it — only the winner unbinds and
                // decrements `live`.
                return bucket
                    .compare_exchange(entry, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
                    .ok()
                    .map(|_| entry_slot(entry));
            }
            table = t.prev.load(Ordering::SeqCst);
        }
        None
    }

    fn deregister(&self, key: u64) {
        // Two chain passes: a concurrent overflow→table migration can
        // move the key between our chain scan and our map check. The
        // migration inserts into the table before removing from the map
        // (both under the overflow lock we take below), so after a
        // locked map miss one rescan is guaranteed to see the entry.
        for pass in 0..2 {
            if let Some(slot) = self.remove_from_chain(key) {
                self.finish_deregister(key, slot);
                // Scrub the transient duplicate a migration may have
                // left in the map, then let waiting overflow entries
                // claim the bucket we just freed.
                self.scrub_overflow(key);
                self.drain_overflow();
                return;
            }
            if self.overflow_len.load(Ordering::SeqCst) > 0 {
                let removed = self
                    .overflow
                    .lock()
                    .expect("overflow map poisoned")
                    .remove(&key);
                if let Some(slot) = removed {
                    self.overflow_len.fetch_sub(1, Ordering::SeqCst);
                    self.finish_deregister(key, slot);
                    return;
                }
            } else if pass == 1 {
                return;
            }
        }
    }

    fn finish_deregister(&self, key: u64, slot: u32) {
        let _ = self
            .slot(slot)
            .bound
            .compare_exchange(key, 0, Ordering::SeqCst, Ordering::SeqCst);
        self.live.fetch_sub(1, Ordering::SeqCst);
    }

    /// Remove a possibly lingering overflow copy of `key` (the
    /// insert-before-remove window of [`Shared::drain_overflow`]).
    fn scrub_overflow(&self, key: u64) {
        if self.overflow_len.load(Ordering::SeqCst) == 0 {
            return;
        }
        let removed = self
            .overflow
            .lock()
            .expect("overflow map poisoned")
            .remove(&key);
        if removed.is_some() {
            self.overflow_len.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The shared reply registry: a slab of reusable mailboxes plus the
/// resizable lock-free key index routing deliveries to them. Cheap to
/// share via the handles it hands out; see the module docs for the
/// design.
pub struct MailboxRegistry<E> {
    shared: Arc<Shared<E>>,
}

impl<E: Send> Default for MailboxRegistry<E> {
    fn default() -> Self {
        MailboxRegistry::new()
    }
}

impl<E: Send> MailboxRegistry<E> {
    /// A registry with [`MailboxOptions::default`].
    pub fn new() -> Self {
        MailboxRegistry::with_options(MailboxOptions::default())
    }

    /// A registry with explicit tuning.
    pub fn with_options(opts: MailboxOptions) -> Self {
        let index_cap = opts.index_capacity.next_power_of_two().max(64);
        let index_max = opts.index_max_capacity.next_power_of_two().max(index_cap);
        let max_slots = opts.max_clients.clamp(1, MAX_SLOTS);
        let shared = Arc::new(Shared {
            index: IndexChain::new(index_cap),
            index_max_capacity: index_max,
            index_resizes: AtomicU64::new(0),
            overflow: Mutex::new(HashMap::new()),
            overflow_len: AtomicUsize::new(0),
            chunks: (0..max_slots.div_ceil(CHUNK))
                .map(|_| OnceLock::new())
                .collect(),
            allocated: AtomicUsize::new(0),
            max_slots,
            free_head: AtomicU64::new(NO_SLOT),
            live: AtomicUsize::new(0),
            stale_dropped: AtomicU64::new(0),
            full_dropped: AtomicU64::new(0),
            mailbox_capacity: opts.mailbox_capacity.max(4),
            acquire_timeout: opts.acquire_timeout,
            deliver_spin: opts.deliver_spin,
            deliver_timeout: opts.deliver_timeout,
            tag_check: opts.tag_check,
        });
        MailboxRegistry { shared }
    }

    /// Take a mailbox out of the slab: a freelist pop when one is free, a
    /// lazily initialised chunk slot otherwise. Waits only when
    /// `max_clients` mailboxes are simultaneously held, and no longer
    /// than `acquire_timeout` before failing with [`SlabExhausted`].
    pub fn acquire(&self) -> Result<Mailbox<E>, SlabExhausted> {
        let shared = &self.shared;
        let mut deadline: Option<Instant> = None;
        let mut waits = 0u32;
        let slot = loop {
            if let Some(idx) = shared.freelist_pop() {
                break idx;
            }
            let n = shared.allocated.fetch_add(1, Ordering::SeqCst);
            if n < shared.max_slots {
                shared.chunks[n / CHUNK].get_or_init(|| {
                    (0..CHUNK)
                        .map(|_| {
                            let (tx, rx) = ring::channel(shared.mailbox_capacity);
                            Slot {
                                tx,
                                rx: Mutex::new(Some(rx)),
                                bound: AtomicU64::new(0),
                                meta: AtomicU64::new(0),
                                next_free: AtomicU64::new(NO_SLOT),
                            }
                        })
                        .collect()
                });
                break n as u32;
            }
            // Slab exhausted: hand the claim back and wait (bounded) for
            // a release.
            shared.allocated.fetch_sub(1, Ordering::SeqCst);
            let deadline = *deadline.get_or_insert_with(|| Instant::now() + shared.acquire_timeout);
            if Instant::now() >= deadline {
                return Err(SlabExhausted {
                    max_clients: shared.max_slots,
                    waited: shared.acquire_timeout,
                });
            }
            waits += 1;
            if waits <= 64 {
                thread::yield_now();
            } else {
                thread::sleep(Duration::from_micros(100));
            }
        };
        let rx = shared
            .slot(slot)
            .rx
            .lock()
            .expect("slot receiver poisoned")
            .take()
            .expect("a free slot parks its receiver");
        Ok(Mailbox {
            shared: Arc::clone(shared),
            slot,
            rx: Some(rx),
            pending: VecDeque::new(),
            scratch: Vec::new(),
        })
    }

    /// Bind `key` (nonzero, never reused) to `mailbox` with caller
    /// metadata. Sweeps the mailbox of the previous incarnation's
    /// leftovers first (unless the tag machinery is mutation-disabled).
    /// Must complete before any event addressed to `key` can be produced
    /// — the runtime registers before the incarnation's first request
    /// message leaves the client thread.
    ///
    /// Returns `true` when the registration had to take the overflow-map
    /// path (a live bucket collision with the index already at
    /// `index_max_capacity`) — the signal callers use to observe the
    /// transition off the lock-free path.
    pub fn register(&self, key: u64, meta: u64, mailbox: &mut Mailbox<E>) -> bool {
        debug_assert!(key != 0, "key 0 is the unbound sentinel");
        debug_assert!(
            Arc::ptr_eq(&self.shared, &mailbox.shared),
            "mailbox belongs to a different registry"
        );
        let shared = &self.shared;
        if shared.tag_check {
            mailbox.clear();
        }
        debug_assert!(
            shared.lookup(key).is_none(),
            "key {key} registered while live"
        );
        let slot = shared.slot(mailbox.slot);
        slot.meta.store(meta, Ordering::SeqCst);
        slot.bound.store(key, Ordering::SeqCst);
        let packed = pack(key, mailbox.slot);
        let overflowed = loop {
            let head = shared.index.head.load(Ordering::SeqCst);
            let t = unsafe { &*head };
            if t.capacity() < shared.index_max_capacity
                && shared.live.load(Ordering::SeqCst) + 1 > t.grow_at
            {
                // Load factor reached: install a doubled generation and
                // retry there (amortised — the fast path stays one CAS).
                shared.grow(head);
                continue;
            }
            let bucket = &t.buckets[(key as usize) & t.mask];
            if bucket
                .compare_exchange(EMPTY, packed, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break false;
            }
            // Bucket held by a live colliding key. Growth rehashes new
            // registrations across twice the buckets; only at the
            // ceiling does the overflow map become the slow home.
            if t.capacity() < shared.index_max_capacity {
                shared.grow(head);
                continue;
            }
            // The length counter is raised first so a resolver that
            // misses the chain checks the map from the moment the entry
            // exists.
            shared.overflow_len.fetch_add(1, Ordering::SeqCst);
            let prev = shared
                .overflow
                .lock()
                .expect("overflow map poisoned")
                .insert(key, mailbox.slot);
            debug_assert!(prev.is_none(), "key {key} registered while live");
            break true;
        };
        shared.live.fetch_add(1, Ordering::SeqCst);
        overflowed
    }

    /// Tear down `key`'s registration. Deliveries for it become no-ops;
    /// anything already in (or racing into) the mailbox is discarded by
    /// the consumer's tag filter.
    pub fn deregister(&self, key: u64) {
        self.shared.deregister(key);
    }

    /// Route an event to the mailbox `key` is bound to. Returns `false`
    /// — dropping the event — when the key is not live, which is exactly
    /// the simulator's stale-reply rule. A full mailbox with a live
    /// binding is spun on briefly, then napped on until
    /// `deliver_timeout`, after which the event is dropped and counted
    /// ([`MailboxRegistry::full_dropped`]); a full mailbox whose binding
    /// died mid-wait drops the event immediately.
    pub fn deliver(&self, key: u64, event: E) -> bool {
        let shared = &self.shared;
        let Some(slot_idx) = shared.lookup(key) else {
            return false;
        };
        let slot = shared.slot(slot_idx);
        let mut tagged = (key, event);
        let mut spins = 0u32;
        let mut deadline: Option<Instant> = None;
        loop {
            match slot.tx.try_send(tagged) {
                Ok(()) => return true,
                Err(TrySendError::Full(v)) => {
                    if slot.bound.load(Ordering::SeqCst) != key {
                        return false;
                    }
                    tagged = v;
                    spins += 1;
                    if spins <= shared.deliver_spin {
                        thread::yield_now();
                    } else {
                        let deadline = *deadline
                            .get_or_insert_with(|| Instant::now() + shared.deliver_timeout);
                        if Instant::now() >= deadline {
                            shared.full_dropped.fetch_add(1, Ordering::Relaxed);
                            return false;
                        }
                        thread::sleep(FULL_NAP);
                    }
                }
                // Unreachable while the slab is alive (it owns a sender),
                // but a dropped registry mid-delivery is not an error.
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
    }

    /// Like [`MailboxRegistry::deliver`] but never waits on a full
    /// mailbox: the event is dropped (returning `false`) instead.
    /// Required whenever the delivering thread might *be* the mailbox's
    /// consumer — waiting on a ring only oneself can drain would
    /// deadlock — and useful for best-effort signals.
    pub fn try_deliver(&self, key: u64, event: E) -> bool {
        let shared = &self.shared;
        let Some(slot_idx) = shared.lookup(key) else {
            return false;
        };
        shared.slot(slot_idx).tx.try_send((key, event)).is_ok()
    }

    /// The metadata `key` was registered with, if it is live.
    pub fn resolve_meta(&self, key: u64) -> Option<u64> {
        let shared = &self.shared;
        let slot_idx = shared.lookup(key)?;
        let slot = shared.slot(slot_idx);
        let meta = slot.meta.load(Ordering::SeqCst);
        // Re-check the binding so a slot rebound between lookup and the
        // meta load cannot attribute the new key's metadata to the old.
        (slot.bound.load(Ordering::SeqCst) == key).then_some(meta)
    }

    /// Live registrations.
    pub fn len(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// True when no key is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stale events consumers have discarded so far (tag mismatches and
    /// register-time sweeps).
    pub fn stale_dropped(&self) -> u64 {
        self.shared.stale_dropped.load(Ordering::Relaxed)
    }

    /// Deliveries dropped because a live mailbox stayed full past
    /// `deliver_timeout` — nonzero means a consumer stalled long enough
    /// to cost it replies (the runtime's restart machinery recovers).
    pub fn full_dropped(&self) -> u64 {
        self.shared.full_dropped.load(Ordering::Relaxed)
    }

    /// Buckets in the newest index generation.
    pub fn index_capacity(&self) -> usize {
        self.shared.head_table().capacity()
    }

    /// Completed index growths since construction.
    pub fn index_resizes(&self) -> u64 {
        self.shared.index_resizes.load(Ordering::SeqCst)
    }

    /// Registrations currently parked in the overflow map (live bucket
    /// collisions with the index at `index_max_capacity`). Diagnostics:
    /// nonzero is correct but means the ceiling is undersized for the
    /// live-key spread.
    pub fn overflow_entries(&self) -> usize {
        self.shared.overflow_len.load(Ordering::SeqCst)
    }
}

/// One reusable reply mailbox, owned by a single consumer thread at a
/// time. Dropping it sweeps leftovers and returns the slot to the slab.
pub struct Mailbox<E> {
    shared: Arc<Shared<E>>,
    slot: u32,
    /// Taken out of the slot while owned; parked back on drop.
    rx: Option<RingReceiver<(u64, E)>>,
    /// Events drained from the ring but not yet handed to the consumer.
    pending: VecDeque<(u64, E)>,
    scratch: Vec<(u64, E)>,
}

impl<E> Mailbox<E> {
    /// The slab slot this mailbox occupies (stable across incarnations
    /// for as long as the mailbox is held).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// Receive the next event addressed to `key`, parking up to
    /// `timeout`. Events tagged with any other key are stale leftovers
    /// or in-flight races from earlier incarnations of this slot; they
    /// are discarded and counted. Returns `None` on timeout.
    pub fn recv_timeout(&mut self, key: u64, timeout: Duration) -> Option<E> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            while let Some((tag, event)) = self.pending.pop_front() {
                if tag == key || !self.shared.tag_check {
                    return Some(event);
                }
                self.shared.stale_dropped.fetch_add(1, Ordering::Relaxed);
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            let rx = self.rx.as_mut().expect("owned mailbox holds its receiver");
            self.scratch.clear();
            let drained = rx.drain_for(&mut self.scratch, left).unwrap_or(0);
            self.pending.extend(self.scratch.drain(..));
            if drained == 0 {
                return None;
            }
        }
    }

    /// Discard everything queued (ring and local buffer), counting the
    /// discards as stale drops.
    pub fn clear(&mut self) {
        let mut swept = self.pending.len() as u64;
        self.pending.clear();
        let rx = self.rx.as_mut().expect("owned mailbox holds its receiver");
        self.scratch.clear();
        while rx.drain_into(&mut self.scratch) > 0 {
            swept += self.scratch.len() as u64;
            self.scratch.clear();
        }
        if swept > 0 {
            self.shared
                .stale_dropped
                .fetch_add(swept, Ordering::Relaxed);
        }
    }

    /// Events currently buffered consumer-side (diagnostics for tests).
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

impl<E> Drop for Mailbox<E> {
    fn drop(&mut self) {
        // Defensive teardown: a mailbox dropped while its key is still
        // registered (a panicking client) unbinds it so the slot's next
        // owner cannot inherit the registration.
        let key = self.shared.slot(self.slot).bound.load(Ordering::SeqCst);
        if key != 0 {
            self.shared.deregister(key);
        }
        // Sweep leftovers so their payloads do not outlive this owner —
        // counted like every other consumer-side stale discard.
        self.clear();
        let slot = self.shared.slot(self.slot);
        *slot.rx.lock().expect("slot receiver poisoned") = self.rx.take();
        self.shared.freelist_push(self.slot);
    }
}

impl<E: Send> Clone for MailboxRegistry<E> {
    fn clone(&self) -> Self {
        MailboxRegistry {
            shared: Arc::clone(&self.shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(opts: MailboxOptions) -> MailboxRegistry<u64> {
        MailboxRegistry::with_options(opts)
    }

    /// A small fixed-size index (growth disabled by the matching
    /// ceiling), matching the PR-4 behaviour most tests were written
    /// against.
    fn small() -> MailboxOptions {
        MailboxOptions {
            index_capacity: 64,
            index_max_capacity: 64,
            mailbox_capacity: 8,
            max_clients: 8,
            ..MailboxOptions::default()
        }
    }

    #[test]
    fn register_deliver_receive_deregister_roundtrip() {
        let reg = registry(small());
        let mut mb = reg.acquire().unwrap();
        reg.register(7, 42, &mut mb);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.resolve_meta(7), Some(42));
        assert!(reg.deliver(7, 700));
        assert_eq!(mb.recv_timeout(7, Duration::from_secs(1)), Some(700));
        reg.deregister(7);
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.resolve_meta(7), None);
        assert!(!reg.deliver(7, 701), "stale delivery is a no-op");
    }

    #[test]
    fn slot_reuse_discards_earlier_incarnations_events() {
        let reg = registry(small());
        let mut mb = reg.acquire().unwrap();
        reg.register(1, 0, &mut mb);
        assert!(reg.deliver(1, 10));
        assert!(reg.deliver(1, 11));
        // Consume only one of the two; the other is left in the ring.
        assert_eq!(mb.recv_timeout(1, Duration::from_secs(1)), Some(10));
        reg.deregister(1);
        // Next incarnation on the *same* mailbox: the leftover for key 1
        // is swept at register time and never surfaces.
        reg.register(2, 0, &mut mb);
        assert!(reg.deliver(2, 20));
        assert_eq!(mb.recv_timeout(2, Duration::from_secs(1)), Some(20));
        assert!(reg.stale_dropped() >= 1, "the leftover was counted");
        reg.deregister(2);
    }

    #[test]
    fn tag_filter_drops_in_flight_stale_events() {
        // Simulate the delivery/rebind race directly: an event tagged
        // with the old key lands *after* the new registration's sweep.
        let reg = registry(small());
        let mut mb = reg.acquire().unwrap();
        reg.register(1, 0, &mut mb);
        reg.deregister(1);
        reg.register(2, 0, &mut mb);
        // Push through the slot's sender exactly as a racing deliver
        // whose lookup resolved before the deregister would.
        let slot = reg.shared.slot(mb.slot());
        slot.tx.try_send((1, 999)).unwrap();
        assert!(reg.deliver(2, 20));
        assert_eq!(
            mb.recv_timeout(2, Duration::from_secs(1)),
            Some(20),
            "the stale event must be filtered, not returned"
        );
        assert!(reg.stale_dropped() >= 1);
        reg.deregister(2);
    }

    #[test]
    fn disabling_the_tag_leaks_the_stale_event() {
        // The mutation check: the identical sequence with the tag
        // machinery disabled hands the earlier incarnation's event to
        // the later one.
        let reg = registry(MailboxOptions {
            tag_check: false,
            ..small()
        });
        let mut mb = reg.acquire().unwrap();
        reg.register(1, 0, &mut mb);
        assert!(reg.deliver(1, 999));
        reg.deregister(1);
        reg.register(2, 0, &mut mb);
        assert!(reg.deliver(2, 20));
        assert_eq!(
            mb.recv_timeout(2, Duration::from_secs(1)),
            Some(999),
            "without the tag, the stale reply reaches the new incarnation"
        );
        reg.deregister(2);
    }

    #[test]
    fn mailboxes_recycle_through_the_freelist() {
        let reg = registry(small());
        let first = reg.acquire().unwrap();
        let first_slot = first.slot();
        drop(first);
        let second = reg.acquire().unwrap();
        assert_eq!(
            second.slot(),
            first_slot,
            "a released slot is reused before the slab grows"
        );
        let third = reg.acquire().unwrap();
        assert_ne!(third.slot(), second.slot());
    }

    #[test]
    fn colliding_live_keys_take_the_overflow_path_at_the_ceiling() {
        let reg = registry(small()); // index capacity 64 == ceiling
        let mut a = reg.acquire().unwrap();
        let mut b = reg.acquire().unwrap();
        // 5 and 69 share bucket 5 of a 64-bucket index.
        assert!(!reg.register(5, 0, &mut a));
        assert!(
            reg.register(69, 0, &mut b),
            "the collision at the ceiling is reported"
        );
        assert_eq!(reg.overflow_entries(), 1);
        assert!(reg.deliver(5, 50));
        assert!(reg.deliver(69, 690));
        assert_eq!(a.recv_timeout(5, Duration::from_secs(1)), Some(50));
        assert_eq!(b.recv_timeout(69, Duration::from_secs(1)), Some(690));
        reg.deregister(5);
        assert!(
            reg.deliver(69, 691),
            "overflow entry survives the other's deregister"
        );
        assert_eq!(b.recv_timeout(69, Duration::from_secs(1)), Some(691));
        reg.deregister(69);
        assert_eq!(reg.overflow_entries(), 0);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn colliding_live_keys_grow_the_index_instead_of_overflowing() {
        let reg = registry(MailboxOptions {
            index_max_capacity: 1024,
            ..small()
        });
        let mut a = reg.acquire().unwrap();
        let mut b = reg.acquire().unwrap();
        // 5 and 69 collide in a 64-bucket table but not a 128-bucket one.
        assert!(!reg.register(5, 0, &mut a));
        assert!(!reg.register(69, 0, &mut b));
        assert_eq!(reg.overflow_entries(), 0, "growth absorbed the collision");
        assert!(reg.index_resizes() >= 1);
        assert!(reg.index_capacity() >= 128);
        // Key 5 lives in the superseded generation, 69 in the new one;
        // both stay deliverable through the chain.
        assert!(reg.deliver(5, 50));
        assert!(reg.deliver(69, 690));
        assert_eq!(a.recv_timeout(5, Duration::from_secs(1)), Some(50));
        assert_eq!(b.recv_timeout(69, Duration::from_secs(1)), Some(690));
        assert_eq!(reg.resolve_meta(5), Some(0));
        reg.deregister(5);
        reg.deregister(69);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn load_factor_growth_keeps_a_dense_key_range_lock_free() {
        let reg = registry(MailboxOptions {
            index_capacity: 64,
            index_max_capacity: 1 << 12,
            mailbox_capacity: 4,
            max_clients: 256,
            ..MailboxOptions::default()
        });
        let mut boxes = Vec::new();
        for key in 1..=256u64 {
            let mut mb = reg.acquire().unwrap();
            assert!(
                !reg.register(key, key, &mut mb),
                "no overflow while growing"
            );
            boxes.push((key, mb));
        }
        assert_eq!(reg.len(), 256);
        assert_eq!(reg.overflow_entries(), 0);
        assert!(reg.index_resizes() >= 2, "64 buckets cannot hold 256 keys");
        assert!(reg.index_capacity() >= 512, "3/4 load factor at 256 live");
        // Every key — whichever generation holds it — delivers and
        // resolves.
        for (key, mb) in boxes.iter_mut() {
            assert_eq!(reg.resolve_meta(*key), Some(*key));
            assert!(reg.deliver(*key, *key * 10));
            assert_eq!(
                mb.recv_timeout(*key, Duration::from_secs(1)),
                Some(*key * 10)
            );
        }
        for (key, _) in &boxes {
            reg.deregister(*key);
        }
        assert_eq!(reg.len(), 0);
        let resizes = reg.index_resizes();
        drop(boxes);
        // New registrations land in the newest generation; no further
        // growth is needed at this population.
        let mut mb = reg.acquire().unwrap();
        assert!(!reg.register(1000, 0, &mut mb));
        assert_eq!(reg.index_resizes(), resizes);
        reg.deregister(1000);
    }

    #[test]
    fn overflow_entries_migrate_back_when_their_bucket_frees() {
        let reg = registry(small()); // 64 buckets, growth disabled
        let mut a = reg.acquire().unwrap();
        let mut b = reg.acquire().unwrap();
        reg.register(5, 0, &mut a);
        assert!(reg.register(69, 7, &mut b));
        assert_eq!(reg.overflow_entries(), 1);
        // Deregistering the bucket holder re-homes the overflow entry
        // onto the lock-free table.
        reg.deregister(5);
        assert_eq!(
            reg.overflow_entries(),
            0,
            "the freed bucket reclaimed the overflow entry"
        );
        assert_eq!(reg.len(), 1);
        assert!(reg.deliver(69, 690), "migrated entry still routes");
        assert_eq!(b.recv_timeout(69, Duration::from_secs(1)), Some(690));
        assert_eq!(reg.resolve_meta(69), Some(7));
        reg.deregister(69);
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.overflow_entries(), 0);
    }

    #[test]
    fn try_deliver_drops_on_full_instead_of_waiting() {
        let reg = registry(small()); // capacity 8
        let mut mb = reg.acquire().unwrap();
        reg.register(1, 0, &mut mb);
        for i in 0..8 {
            assert!(reg.try_deliver(1, i));
        }
        assert!(!reg.try_deliver(1, 99), "full mailbox: dropped, no wait");
        assert_eq!(mb.recv_timeout(1, Duration::from_secs(1)), Some(0));
        assert!(reg.try_deliver(1, 8), "freed slot accepts again");
        reg.deregister(1);
        assert!(!reg.try_deliver(1, 9), "stale delivery is a no-op");
    }

    #[test]
    fn full_mailbox_with_dead_binding_drops_instead_of_spinning() {
        let reg = registry(small()); // capacity 8
        let mut mb = reg.acquire().unwrap();
        reg.register(1, 0, &mut mb);
        for i in 0..8 {
            assert!(reg.deliver(1, i));
        }
        // Ring full. Kill the binding from another thread after a beat —
        // the delivery must return false rather than spin forever.
        let t = std::thread::spawn({
            let reg = reg.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                reg.deregister(1);
            }
        });
        assert!(!reg.deliver(1, 99));
        t.join().unwrap();
        assert_eq!(reg.full_dropped(), 0, "a dead binding is not a full drop");
    }

    #[test]
    fn full_live_mailbox_drops_after_the_bounded_wait() {
        let reg = registry(MailboxOptions {
            deliver_spin: 4,
            deliver_timeout: Duration::from_millis(25),
            ..small()
        });
        let mut mb = reg.acquire().unwrap();
        reg.register(1, 0, &mut mb);
        for i in 0..8 {
            assert!(reg.deliver(1, i));
        }
        // The binding stays live and the consumer never drains: the
        // delivery must come back within the bound, counted.
        let begun = Instant::now();
        assert!(!reg.deliver(1, 99));
        assert!(
            begun.elapsed() < Duration::from_secs(2),
            "the wait is bounded"
        );
        assert_eq!(reg.full_dropped(), 1);
        assert_eq!(mb.recv_timeout(1, Duration::from_secs(1)), Some(0));
        reg.deregister(1);
    }

    #[test]
    fn dropping_a_registered_mailbox_deregisters_it() {
        let reg = registry(small());
        let mut mb = reg.acquire().unwrap();
        reg.register(3, 9, &mut mb);
        drop(mb);
        assert_eq!(reg.len(), 0, "drop tears the registration down");
        assert!(!reg.deliver(3, 1));
    }

    #[test]
    fn acquire_waits_for_a_release_when_the_slab_is_full() {
        let reg = Arc::new(registry(MailboxOptions {
            max_clients: 1,
            ..small()
        }));
        let held = reg.acquire().unwrap();
        let reg2 = Arc::clone(&reg);
        let waiter = std::thread::spawn(move || reg2.acquire().unwrap().slot());
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert_eq!(waiter.join().unwrap(), 0, "the lone slot is recycled");
    }

    #[test]
    fn acquire_fails_with_a_clear_error_once_the_wait_expires() {
        let reg = registry(MailboxOptions {
            max_clients: 1,
            acquire_timeout: Duration::from_millis(30),
            ..small()
        });
        let _held = reg.acquire().unwrap();
        let begun = Instant::now();
        let err = match reg.acquire() {
            Ok(_) => panic!("acquire must fail while the lone mailbox is held"),
            Err(err) => err,
        };
        assert!(begun.elapsed() >= Duration::from_millis(30));
        assert_eq!(err.max_clients, 1);
        let msg = err.to_string();
        assert!(
            msg.contains("all 1 mailboxes") && msg.contains("max_clients"),
            "error names the limit: {msg}"
        );
    }
}
