//! A bounded lock-free MPSC ring with park/unpark backpressure.
//!
//! The layout is the classic sequence-stamped ring (Vyukov's bounded queue,
//! specialised to a single consumer): a power-of-two array of slots, each
//! carrying an atomic sequence number, a producer-side `tail` claimed by
//! CAS and a consumer-side `head` advanced by plain stores. Producers and
//! the consumer touch disjoint cache lines ([`CachePadded`]) and neither
//! takes a lock on the fast path.
//!
//! Blocking is strictly a slow path:
//!
//! * An **empty** ring parks the consumer. Before parking it raises the
//!   `sleeping` flag and re-checks the ring (SeqCst on both sides), so a
//!   producer that published a slot either sees the flag and unparks it,
//!   or the consumer saw the slot and never parked.
//! * A **full** ring parks producers. A producer registers itself in the
//!   waiter list (a mutex guarded vec — the only lock, taken only when the
//!   ring is already full), re-checks for space, then parks; the consumer
//!   unparks all registered waiters after freeing slots.
//!
//! Both parks use a bounded `park_timeout` as a belt-and-braces safety net:
//! if the handshake above is ever violated the cost is a bounded stall,
//! never a deadlock.
//!
//! Disconnect semantics mirror `std::sync::mpsc`: when every
//! [`RingSender`] is dropped, [`RingReceiver::drain_blocking`] returns
//! `Err(RecvError)` once the ring is empty; when the receiver is dropped,
//! sends fail with [`SendError`] returning the rejected value.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use crate::stamp::now_nanos;
use crate::CachePadded;

/// Safety-net bound on a consumer park: a correct handshake is woken by
/// `unpark` long before this fires.
const CONSUMER_PARK: Duration = Duration::from_millis(5);

/// Safety-net bound on a producer park while the ring is full.
const PRODUCER_PARK: Duration = Duration::from_millis(1);

/// The error returned by [`RingSender::send`] when the receiver is gone;
/// carries the rejected value back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The error returned by [`RingSender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The ring is full; the value is handed back.
    Full(T),
    /// The receiver is gone; the value is handed back.
    Disconnected(T),
}

/// The error returned by blocking receives once every sender is gone and
/// the ring is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct Slot<T> {
    /// Lap stamp: `pos` when free for the producer claiming position
    /// `pos`, `pos + 1` once the value is published, `pos + capacity`
    /// after the consumer took it (free for the next lap).
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    /// Producer cursor (claimed by CAS).
    tail: CachePadded<AtomicUsize>,
    /// Consumer cursor. Written only by the consumer; read by producers
    /// never (fullness is derived from slot stamps) and by `Drop` to
    /// reclaim unconsumed values.
    head: CachePadded<AtomicUsize>,
    /// Consumer-is-parked flag for the empty-ring handshake.
    sleeping: AtomicBool,
    /// The consumer thread, registered on its first blocking receive.
    consumer: Mutex<Option<Thread>>,
    /// Live `RingSender` clones.
    senders: AtomicUsize,
    /// Cleared when the receiver drops, failing all further sends.
    rx_alive: AtomicBool,
    /// Producers parked on a full ring. Locked only on that slow path.
    waiters: Mutex<Vec<Thread>>,
    /// Cheap "is anyone in `waiters`" flag so the consumer's fast path
    /// never touches the mutex.
    has_waiters: AtomicBool,
    /// When raised, every publish stamps its slot with [`now_nanos`] and
    /// every take folds the dwell time into the meter below. Off by
    /// default: the disabled cost is one relaxed load per side.
    stamping: AtomicBool,
    /// Per-slot enqueue timestamps, parallel to `buf` (written only while
    /// `stamping` is raised, under the same seq protocol as the value).
    stamps: Box<[AtomicU64]>,
    /// Queue-dwell meter: messages taken and their summed nanoseconds in
    /// the ring, accumulated by the consumer while `stamping` is raised.
    dwell_count: AtomicU64,
    dwell_nanos: AtomicU64,
}

// The UnsafeCell slots are handed across threads under the seq protocol.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both sides are gone; reclaim values published but never taken.
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[head & self.mask];
            if slot.seq.load(Ordering::Relaxed) != head.wrapping_add(1) {
                break;
            }
            unsafe { (*slot.value.get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

impl<T> Shared<T> {
    /// True when the slot at the current tail has not been freed by the
    /// consumer — the ring is full.
    fn is_full(&self) -> bool {
        let pos = self.tail.load(Ordering::SeqCst);
        let seq = self.buf[pos & self.mask].seq.load(Ordering::SeqCst);
        (seq.wrapping_sub(pos) as isize) < 0
    }

    /// Unpark the consumer if it is (or is about to be) parked.
    fn wake_consumer(&self) {
        if self.sleeping.swap(false, Ordering::SeqCst) {
            if let Some(t) = self
                .consumer
                .lock()
                .expect("consumer handle poisoned")
                .as_ref()
            {
                t.unpark();
            }
        }
    }

    /// Unpark every producer registered as waiting on a full ring.
    fn wake_producers(&self) {
        if self.has_waiters.swap(false, Ordering::SeqCst) {
            let mut waiters = self.waiters.lock().expect("waiter list poisoned");
            for t in waiters.drain(..) {
                t.unpark();
            }
        }
    }
}

/// The producing half; cheap to clone, safe to use from many threads.
pub struct RingSender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half. Exactly one exists per ring.
pub struct RingReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a ring holding at least `capacity` values (rounded up to the
/// next power of two, minimum 2).
pub fn channel<T: Send>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let cap = capacity.next_power_of_two().max(2);
    let buf: Box<[Slot<T>]> = (0..cap)
        .map(|i| Slot {
            seq: AtomicUsize::new(i),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
        sleeping: AtomicBool::new(false),
        consumer: Mutex::new(None),
        senders: AtomicUsize::new(1),
        rx_alive: AtomicBool::new(true),
        waiters: Mutex::new(Vec::new()),
        has_waiters: AtomicBool::new(false),
        stamping: AtomicBool::new(false),
        stamps: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        dwell_count: AtomicU64::new(0),
        dwell_nanos: AtomicU64::new(0),
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
        },
        RingReceiver { shared },
    )
}

impl<T> Clone for RingSender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        RingSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: the parked consumer must observe the disconnect.
            self.shared.wake_consumer();
        }
    }
}

impl<T> RingSender<T> {
    /// Enqueue without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let shared = &*self.shared;
        if !shared.rx_alive.load(Ordering::SeqCst) {
            return Err(TrySendError::Disconnected(value));
        }
        let mut pos = shared.tail.load(Ordering::Relaxed);
        loop {
            let slot = &shared.buf[pos & shared.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq.wrapping_sub(pos) as isize;
            if diff == 0 {
                match shared.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.value.get()).write(value) };
                        if shared.stamping.load(Ordering::Relaxed) {
                            shared.stamps[pos & shared.mask].store(now_nanos(), Ordering::Relaxed);
                        }
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        // Publish must be globally ordered before the
                        // sleeping-flag read (pairs with the consumer's
                        // flag-store / ring-recheck sequence).
                        fence(Ordering::SeqCst);
                        if shared.sleeping.load(Ordering::Relaxed) {
                            shared.wake_consumer();
                        }
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return Err(TrySendError::Full(value));
            } else {
                // Another producer claimed this position; catch up.
                pos = shared.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueue, parking while the ring is full. Fails only when the
    /// receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => value = v,
            }
            let shared = &*self.shared;
            // Slow path: register, re-check, park, deregister. The
            // re-check after registration closes the lost-wakeup window —
            // either the consumer's drain sees our registration, or we
            // see the space it freed. Deregistering on every exit keeps
            // the list bounded by the number of currently-blocked
            // producers (no duplicate entries, no stale unparks).
            let me = thread::current();
            {
                let mut waiters = shared.waiters.lock().expect("waiter list poisoned");
                waiters.push(me.clone());
            }
            shared.has_waiters.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if shared.is_full() && shared.rx_alive.load(Ordering::SeqCst) {
                thread::park_timeout(PRODUCER_PARK);
            }
            {
                let mut waiters = shared.waiters.lock().expect("waiter list poisoned");
                waiters.retain(|t| t.id() != me.id());
            }
        }
    }

    /// True when the receiver still exists.
    pub fn is_connected(&self) -> bool {
        self.shared.rx_alive.load(Ordering::SeqCst)
    }

    /// Enable or disable enqueue/dequeue stamping on this ring (shared
    /// with every clone and the receiver). Off by default.
    pub fn set_stamping(&self, enabled: bool) {
        self.shared.stamping.store(enabled, Ordering::SeqCst);
    }

    /// The queue-dwell meter: `(messages taken, summed nanoseconds each
    /// spent published in the ring)` since stamping was enabled.
    pub fn queue_dwell(&self) -> (u64, u64) {
        (
            self.shared.dwell_count.load(Ordering::Relaxed),
            self.shared.dwell_nanos.load(Ordering::Relaxed),
        )
    }
}

impl<T> RingReceiver<T> {
    /// Dequeue one value without blocking.
    pub fn try_recv(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let head = shared.head.load(Ordering::Relaxed);
        let slot = &shared.buf[head & shared.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != head.wrapping_add(1) {
            return None;
        }
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        if shared.stamping.load(Ordering::Relaxed) {
            let queued = shared.stamps[head & shared.mask].load(Ordering::Relaxed);
            // A zero stamp is a slot published before stamping was
            // enabled — it carries no dwell information.
            if queued != 0 {
                shared
                    .dwell_nanos
                    .fetch_add(now_nanos().saturating_sub(queued), Ordering::Relaxed);
                shared.dwell_count.fetch_add(1, Ordering::Relaxed);
            }
        }
        slot.seq
            .store(head.wrapping_add(shared.buf.len()), Ordering::Release);
        shared.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Sweep everything currently published into `out` without blocking;
    /// returns how many values were moved. Wakes producers parked on a
    /// full ring when slots were freed.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        while let Some(value) = self.try_recv() {
            out.push(value);
            n += 1;
        }
        if n > 0 {
            fence(Ordering::SeqCst);
            if self.shared.has_waiters.load(Ordering::Relaxed) {
                self.shared.wake_producers();
            }
        }
        n
    }

    /// Drain at least one value, parking while the ring is empty. Returns
    /// `Err(RecvError)` once every sender is gone and the ring is drained.
    pub fn drain_blocking(&mut self, out: &mut Vec<T>) -> Result<usize, RecvError> {
        loop {
            let n = self.drain_deadline(out, None)?;
            if n > 0 {
                return Ok(n);
            }
        }
    }

    /// Like [`RingReceiver::drain_blocking`], but gives up after `timeout`
    /// and returns `Ok(0)` instead of parking further. The ring is always
    /// swept at least once, so a zero timeout is a non-blocking poll that
    /// still honours the park/unpark handshake.
    pub fn drain_for(&mut self, out: &mut Vec<T>, timeout: Duration) -> Result<usize, RecvError> {
        self.drain_deadline(out, Some(Instant::now() + timeout))
    }

    /// The one copy of the consumer's park protocol, shared by the
    /// blocking and deadline-bounded drains (`deadline: None` parks
    /// indefinitely; `Some` returns `Ok(0)` once it passes).
    fn drain_deadline(
        &mut self,
        out: &mut Vec<T>,
        deadline: Option<Instant>,
    ) -> Result<usize, RecvError> {
        loop {
            let n = self.drain_into(out);
            if n > 0 {
                return Ok(n);
            }
            // Measured on a loaded single-CPU box: parking immediately
            // beats yielding first — spare scheduler slots go to the
            // producers, and the unpark handshake is one futex pair.
            self.register_consumer();
            self.shared.sleeping.store(true, Ordering::SeqCst);
            // Re-check after raising the flag (pairs with the producer's
            // publish + fence + flag-read).
            let n = self.drain_into(out);
            if n > 0 {
                self.shared.sleeping.store(false, Ordering::SeqCst);
                return Ok(n);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                self.shared.sleeping.store(false, Ordering::SeqCst);
                // Final sweep: a sender may have published between the
                // drain above and its drop.
                let n = self.drain_into(out);
                return if n > 0 { Ok(n) } else { Err(RecvError) };
            }
            let park = match deadline {
                None => CONSUMER_PARK,
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        self.shared.sleeping.store(false, Ordering::SeqCst);
                        return Ok(0);
                    }
                    left.min(CONSUMER_PARK)
                }
            };
            thread::park_timeout(park);
            self.shared.sleeping.store(false, Ordering::SeqCst);
        }
    }

    /// Receive a single value, parking while the ring is empty.
    pub fn recv(&mut self) -> Result<T, RecvError> {
        loop {
            if let Some(value) = self.try_recv() {
                fence(Ordering::SeqCst);
                if self.shared.has_waiters.load(Ordering::Relaxed) {
                    self.shared.wake_producers();
                }
                return Ok(value);
            }
            self.register_consumer();
            self.shared.sleeping.store(true, Ordering::SeqCst);
            if let Some(value) = self.try_recv() {
                self.shared.sleeping.store(false, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if self.shared.has_waiters.load(Ordering::Relaxed) {
                    self.shared.wake_producers();
                }
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                self.shared.sleeping.store(false, Ordering::SeqCst);
                return match self.try_recv() {
                    Some(value) => Ok(value),
                    None => Err(RecvError),
                };
            }
            thread::park_timeout(CONSUMER_PARK);
            self.shared.sleeping.store(false, Ordering::SeqCst);
        }
    }

    /// Number of live senders (diagnostics).
    pub fn sender_count(&self) -> usize {
        self.shared.senders.load(Ordering::SeqCst)
    }

    /// See [`RingSender::set_stamping`].
    pub fn set_stamping(&self, enabled: bool) {
        self.shared.stamping.store(enabled, Ordering::SeqCst);
    }

    /// See [`RingSender::queue_dwell`].
    pub fn queue_dwell(&self) -> (u64, u64) {
        (
            self.shared.dwell_count.load(Ordering::Relaxed),
            self.shared.dwell_nanos.load(Ordering::Relaxed),
        )
    }

    fn register_consumer(&self) {
        let mut consumer = self
            .shared
            .consumer
            .lock()
            .expect("consumer handle poisoned");
        // Always overwrite a handle for a *different* thread: receivers
        // migrate between threads when a reply mailbox is released to the
        // slab and reacquired, and a stale handle would unpark the old
        // owner while the new one sleeps out its full safety-net timeout.
        let me = thread::current();
        match consumer.as_ref() {
            Some(t) if t.id() == me.id() => {}
            _ => *consumer = Some(me),
        }
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.shared.rx_alive.store(false, Ordering::SeqCst);
        // Drop everything already published so senders' values do not
        // linger, and release parked producers to observe the disconnect.
        while self.try_recv().is_some() {}
        self.shared.wake_producers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_producer() {
        let (tx, mut rx) = channel::<u64>(8);
        for i in 0..6 {
            tx.try_send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 6);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn capacity_rounds_up_and_full_ring_rejects() {
        let (tx, mut rx) = channel::<u32>(3); // rounds to 4
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.try_send(99), Err(TrySendError::Full(99)));
        assert_eq!(rx.try_recv(), Some(0));
        tx.try_send(4).unwrap();
        let mut out = Vec::new();
        rx.drain_into(&mut out);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn wraps_around_many_laps() {
        let (tx, mut rx) = channel::<usize>(4);
        for lap in 0..1000 {
            for i in 0..3 {
                tx.try_send(lap * 3 + i).unwrap();
            }
            let mut out = Vec::new();
            assert_eq!(rx.drain_into(&mut out), 3);
            assert_eq!(out, vec![lap * 3, lap * 3 + 1, lap * 3 + 2]);
        }
    }

    #[test]
    fn disconnect_when_all_senders_drop() {
        let (tx, mut rx) = channel::<u8>(4);
        let tx2 = tx.clone();
        tx.try_send(1).unwrap();
        drop(tx);
        tx2.try_send(2).unwrap();
        drop(tx2);
        let mut out = Vec::new();
        assert_eq!(rx.drain_blocking(&mut out), Ok(2));
        assert_eq!(out, vec![1, 2]);
        assert_eq!(rx.drain_blocking(&mut out), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receiver_drops() {
        let (tx, rx) = channel::<String>(4);
        tx.try_send("queued".into()).unwrap();
        drop(rx);
        assert!(!tx.is_connected());
        assert_eq!(
            tx.send("late".to_string()),
            Err(SendError("late".to_string()))
        );
        assert_eq!(
            tx.try_send("later".to_string()),
            Err(TrySendError::Disconnected("later".to_string()))
        );
    }

    #[test]
    fn blocking_send_waits_for_space() {
        let (tx, mut rx) = channel::<u32>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        let producer = std::thread::spawn(move || {
            for i in 2..50 {
                tx.send(i).unwrap();
            }
        });
        let mut out = Vec::new();
        while out.len() < 50 {
            let _ = rx.drain_blocking(&mut out);
        }
        producer.join().unwrap();
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_recv_waits_for_values() {
        let (tx, mut rx) = channel::<u32>(8);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv(), Ok(42));
        producer.join().unwrap();
    }

    #[test]
    fn drain_for_times_out_then_delivers() {
        let (tx, mut rx) = channel::<u32>(8);
        let mut out = Vec::new();
        // Nothing published: the bounded drain gives up with Ok(0).
        assert_eq!(rx.drain_for(&mut out, Duration::from_millis(5)), Ok(0));
        assert!(out.is_empty());
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(9).unwrap();
            // Keep the sender alive long enough that the receiver's next
            // drain observes the value, not the disconnect.
            std::thread::sleep(Duration::from_millis(50));
        });
        // A generous deadline: the parked consumer must be woken by the
        // producer's publish well before it.
        assert_eq!(rx.drain_for(&mut out, Duration::from_secs(5)), Ok(1));
        assert_eq!(out, vec![9]);
        producer.join().unwrap();
        // All senders gone and the ring empty: disconnect, not timeout.
        assert_eq!(
            rx.drain_for(&mut out, Duration::from_millis(5)),
            Err(RecvError)
        );
    }

    #[test]
    fn dwell_meter_counts_only_while_stamping() {
        let (tx, mut rx) = channel::<u32>(8);
        tx.try_send(1).unwrap();
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(tx.queue_dwell(), (0, 0), "meter off by default");

        tx.set_stamping(true);
        tx.try_send(2).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(rx.try_recv(), Some(2));
        let (count, nanos) = rx.queue_dwell();
        assert_eq!(count, 1);
        assert!(
            nanos >= 1_000_000,
            "a value parked 2ms must show dwell, got {nanos}ns"
        );

        tx.set_stamping(false);
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(3));
        assert_eq!(rx.queue_dwell().0, 1, "meter frozen once disabled");
    }

    #[test]
    fn unconsumed_values_are_dropped_with_the_ring() {
        let flag = Arc::new(AtomicUsize::new(0));
        #[derive(Debug)]
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = channel::<Probe>(4);
        tx.try_send(Probe(Arc::clone(&flag))).unwrap();
        tx.try_send(Probe(Arc::clone(&flag))).unwrap();
        drop(rx);
        drop(tx);
        assert_eq!(flag.load(Ordering::SeqCst), 2, "no leaked slot values");
    }
}
