//! # transport — the runtime's message plane
//!
//! The primitives every byte crosses between runtime threads:
//!
//! * [`ring`] — a bounded lock-free MPSC ring (atomic head/tail over a
//!   power-of-two slot array, cache-line padded) with park/unpark
//!   backpressure on both sides. Producers never take a lock on the fast
//!   path; the single consumer drains the whole ring per wakeup, so one
//!   context switch amortises over every command enqueued since the last
//!   one.
//! * [`oneshot`] — a single-use reply channel for control-plane
//!   request/response conversations (wait-for edges, log snapshots,
//!   waiting-transaction reports), replacing the ad-hoc
//!   `std::sync::mpsc::channel()` pair allocated per call.
//! * [`mailbox`] — the reply direction: a slab of reusable bounded
//!   mailboxes (one per client, recycled across registrations instead of
//!   allocated per conversation) behind a lock-free generation-tagged
//!   key index, so routing an event to its waiting consumer takes no
//!   lock and no allocation, and stale events addressed to a retired key
//!   are provably dropped.
//! * [`stamp`] — the process-wide monotonic nanosecond clock every plane
//!   timestamps against (ring dwell meters, the trace crate's
//!   flight-recorder events), so durations measured on different threads
//!   subtract meaningfully.
//! * [`CachePadded`] — align a value to its own cache line so hot atomics
//!   (ring head/tail, per-stripe metric shards) do not false-share.
//!
//! The crate is deliberately free of runtime-specific types: it moves `T`s
//! between threads and knows nothing about transactions.

pub mod batch;
pub mod mailbox;
pub mod oneshot;
pub mod ring;
pub mod stamp;

/// Pads and aligns a value to 128 bytes, the size of two x86-64 cache
/// lines (the adjacent-line prefetcher pulls pairs, so 64-byte alignment
/// still false-shares across the pair boundary).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wrap a value in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let padded = CachePadded::new(7u64);
        assert_eq!(*padded, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let pair: [CachePadded<u8>; 2] = [CachePadded::new(1), CachePadded::new(2)];
        let a = &pair[0].0 as *const u8 as usize;
        let b = &pair[1].0 as *const u8 as usize;
        assert!(b - a >= 128, "neighbours must sit on distinct line pairs");
    }
}
