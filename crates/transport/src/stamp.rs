//! A process-wide monotonic nanosecond clock.
//!
//! Every plane that timestamps messages — the ring's enqueue/dequeue
//! stamps below, the trace crate's flight-recorder events — reads the
//! same clock, so a transport dwell time and a client-side phase span
//! measured on different threads subtract meaningfully. The epoch is the
//! first call in the process; `Instant` is monotonic across threads, so
//! later reads on any thread are ordered consistently with real time.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide epoch (the first call).
#[inline]
pub fn now_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_within_and_across_threads() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
        let c = std::thread::spawn(now_nanos).join().unwrap();
        let d = now_nanos();
        assert!(c >= a && d >= c, "cross-thread reads share the epoch");
    }
}
