//! The data queue `QUEUE(j)` of the paper: one per physical data item.
//!
//! Entries are kept sorted in increasing precedence order. Each entry is
//! marked `Accepted` or `Blocked` (PA requests awaiting their issuer's final
//! backed-off timestamp are `Blocked`), and records whether it has been
//! granted. The head `HD(j)` is the ungranted request with the smallest
//! precedence such that all requests with smaller precedences have already
//! been granted — with the queue sorted, that is simply the first ungranted
//! entry.
//!
//! Grant *eligibility* (lock compatibility, the semi-lock rules) is decided
//! by the queue manager that owns the queue; this structure only maintains
//! order and status.

use dbmodel::{AccessMode, CcMethod, TxnId};

use crate::precedence::Precedence;

/// Whether an entry's precedence is final (`Accepted`) or awaiting a PA
/// timestamp update (`Blocked`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryStatus {
    /// The precedence is final; the entry may be granted when it reaches the
    /// head and its lock request is compatible.
    Accepted,
    /// PA: the entry is waiting for its issuer's final backed-off timestamp
    /// and must not be granted.
    Blocked,
}

/// One request waiting in (or granted from) a data queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// The issuing transaction.
    pub txn: TxnId,
    /// Read or write access.
    pub mode: AccessMode,
    /// The issuing transaction's concurrency-control method.
    pub method: CcMethod,
    /// The assigned precedence.
    pub precedence: Precedence,
    /// Accepted or blocked.
    pub status: EntryStatus,
    /// Whether the request has been granted a lock.
    pub granted: bool,
}

/// Entry capacity a queue reserves on first use and retains from then on.
/// Removal never shrinks the buffer, so steady-state enqueue/grant/release
/// churn below this depth touches the allocator exactly once per item over
/// the queue's whole lifetime (deeper queues grow once and keep the larger
/// buffer).
const MIN_ENTRY_CAPACITY: usize = 8;

/// A precedence-sorted data queue with capacity-reusing entry storage.
#[derive(Debug, Clone, Default)]
pub struct DataQueue {
    entries: Vec<QueueEntry>,
}

impl DataQueue {
    /// Create an empty queue. The entry buffer is reserved lazily on the
    /// first insert.
    pub fn new() -> Self {
        DataQueue::default()
    }

    /// Number of entries (granted and waiting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the queue has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained entry capacity (allocation-stability diagnostics).
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Insert an entry at its precedence-sorted position.
    ///
    /// Panics in debug builds if the transaction already has an entry in this
    /// queue (each transaction issues at most one request per physical item).
    pub fn insert(&mut self, entry: QueueEntry) {
        debug_assert!(
            self.position_of(entry.txn).is_none(),
            "transaction {:?} already queued",
            entry.txn
        );
        if self.entries.capacity() == 0 {
            self.entries.reserve(MIN_ENTRY_CAPACITY);
        }
        let pos = self
            .entries
            .partition_point(|e| e.precedence <= entry.precedence);
        self.entries.insert(pos, entry);
    }

    /// Index of the entry belonging to `txn`, if present.
    fn position_of(&self, txn: TxnId) -> Option<usize> {
        self.entries.iter().position(|e| e.txn == txn)
    }

    /// The entry belonging to `txn`, if present.
    pub fn get(&self, txn: TxnId) -> Option<&QueueEntry> {
        self.position_of(txn).map(|i| &self.entries[i])
    }

    /// Remove and return the entry belonging to `txn`.
    pub fn remove(&mut self, txn: TxnId) -> Option<QueueEntry> {
        self.position_of(txn).map(|i| self.entries.remove(i))
    }

    /// Update the precedence of `txn`'s entry (PA timestamp update), mark it
    /// accepted, and re-insert it at its new sorted position. Any grant the
    /// entry held is dropped: a grant belongs to the precedence it was
    /// issued at, and the owning item re-decides (and re-issues) it at the
    /// new position. Returns `false` if the transaction has no entry in
    /// this queue.
    pub fn reprioritise(&mut self, txn: TxnId, precedence: Precedence) -> bool {
        let Some(mut entry) = self.remove(txn) else {
            return false;
        };
        entry.precedence = precedence;
        entry.status = EntryStatus::Accepted;
        entry.granted = false;
        self.insert(entry);
        true
    }

    /// Mark `txn`'s entry granted. Returns `false` if absent.
    pub fn mark_granted(&mut self, txn: TxnId) -> bool {
        if let Some(i) = self.position_of(txn) {
            self.entries[i].granted = true;
            true
        } else {
            false
        }
    }

    /// `HD(j)`: the first ungranted entry in precedence order. All entries
    /// before it are granted by construction.
    pub fn head(&self) -> Option<&QueueEntry> {
        self.entries.iter().find(|e| !e.granted)
    }

    /// Drop every *ungranted* entry, keeping granted ones — the queue half
    /// of crash recovery with partial amnesia: grants (and the locks that
    /// back them) have reached stable storage, in-flight admissions have
    /// not. Returns how many entries were wiped.
    pub fn retain_granted(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.granted);
        before - self.entries.len()
    }

    /// All currently granted entries, in precedence order.
    pub fn granted(&self) -> impl Iterator<Item = &QueueEntry> + '_ {
        self.entries.iter().filter(|e| e.granted)
    }

    /// All entries in precedence order.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> + '_ {
        self.entries.iter()
    }

    /// The granted entries whose transactions the (ungranted) entry of `txn`
    /// is waiting behind — used to build the wait-for graph for deadlock
    /// detection. Only conflicting granted entries are returned.
    pub fn waits_for(&self, txn: TxnId) -> Vec<TxnId> {
        let Some(entry) = self.get(txn) else {
            return Vec::new();
        };
        if entry.granted {
            return Vec::new();
        }
        self.entries
            .iter()
            .filter(|e| e.granted && e.txn != txn && e.mode.conflicts_with(entry.mode))
            .map(|e| e.txn)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{SiteId, Timestamp};

    fn entry(txn: u64, ts: u64, mode: AccessMode) -> QueueEntry {
        QueueEntry {
            txn: TxnId(txn),
            mode,
            method: CcMethod::TimestampOrdering,
            precedence: Precedence::timestamped(Timestamp(ts), SiteId(0), TxnId(txn)),
            status: EntryStatus::Accepted,
            granted: false,
        }
    }

    #[test]
    fn insert_keeps_precedence_order() {
        let mut q = DataQueue::new();
        q.insert(entry(1, 30, AccessMode::Read));
        q.insert(entry(2, 10, AccessMode::Read));
        q.insert(entry(3, 20, AccessMode::Write));
        let order: Vec<u64> = q.iter().map(|e| e.txn.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn head_is_first_ungranted() {
        let mut q = DataQueue::new();
        q.insert(entry(1, 10, AccessMode::Read));
        q.insert(entry(2, 20, AccessMode::Write));
        assert_eq!(q.head().unwrap().txn, TxnId(1));
        q.mark_granted(TxnId(1));
        assert_eq!(q.head().unwrap().txn, TxnId(2));
        q.mark_granted(TxnId(2));
        assert!(q.head().is_none());
    }

    #[test]
    fn retain_granted_wipes_only_waiters() {
        let mut q = DataQueue::new();
        q.insert(entry(1, 10, AccessMode::Write));
        q.insert(entry(2, 20, AccessMode::Write));
        q.insert(entry(3, 30, AccessMode::Read));
        q.mark_granted(TxnId(1));
        assert_eq!(q.retain_granted(), 2);
        let left: Vec<u64> = q.iter().map(|e| e.txn.0).collect();
        assert_eq!(left, vec![1]);
        assert_eq!(q.retain_granted(), 0, "idempotent once waiters are gone");
    }

    #[test]
    fn reprioritise_moves_and_accepts() {
        let mut q = DataQueue::new();
        let mut blocked = entry(1, 10, AccessMode::Write);
        blocked.status = EntryStatus::Blocked;
        q.insert(blocked);
        q.insert(entry(2, 20, AccessMode::Read));
        assert!(q.reprioritise(
            TxnId(1),
            Precedence::timestamped(Timestamp(30), SiteId(0), TxnId(1))
        ));
        let order: Vec<u64> = q.iter().map(|e| e.txn.0).collect();
        assert_eq!(order, vec![2, 1]);
        assert_eq!(q.get(TxnId(1)).unwrap().status, EntryStatus::Accepted);
        assert!(!q.reprioritise(
            TxnId(99),
            Precedence::timestamped(Timestamp(1), SiteId(0), TxnId(99))
        ));
    }

    #[test]
    fn remove_and_get() {
        let mut q = DataQueue::new();
        q.insert(entry(1, 10, AccessMode::Read));
        assert!(q.get(TxnId(1)).is_some());
        assert!(q.get(TxnId(2)).is_none());
        let removed = q.remove(TxnId(1)).unwrap();
        assert_eq!(removed.txn, TxnId(1));
        assert!(q.is_empty());
        assert!(q.remove(TxnId(1)).is_none());
    }

    #[test]
    fn waits_for_reports_conflicting_granted_holders() {
        let mut q = DataQueue::new();
        q.insert(entry(1, 10, AccessMode::Read));
        q.insert(entry(2, 20, AccessMode::Read));
        q.insert(entry(3, 30, AccessMode::Write));
        q.mark_granted(TxnId(1));
        q.mark_granted(TxnId(2));
        // t3 writes; it waits for both granted readers.
        assert_eq!(q.waits_for(TxnId(3)), vec![TxnId(1), TxnId(2)]);
        // A granted entry waits for nobody.
        assert_eq!(q.waits_for(TxnId(1)), Vec::<TxnId>::new());
        // A read waiting behind a granted read does not wait on it.
        let mut q2 = DataQueue::new();
        q2.insert(entry(1, 10, AccessMode::Read));
        q2.insert(entry(2, 20, AccessMode::Read));
        q2.mark_granted(TxnId(1));
        assert!(q2.waits_for(TxnId(2)).is_empty());
        // Unknown transaction waits for nothing.
        assert!(q2.waits_for(TxnId(42)).is_empty());
    }

    #[test]
    fn granted_iterates_in_order() {
        let mut q = DataQueue::new();
        q.insert(entry(1, 10, AccessMode::Read));
        q.insert(entry(2, 20, AccessMode::Read));
        q.insert(entry(3, 30, AccessMode::Read));
        q.mark_granted(TxnId(3));
        q.mark_granted(TxnId(1));
        let granted: Vec<u64> = q.granted().map(|e| e.txn.0).collect();
        assert_eq!(granted, vec![1, 3]);
    }

    #[test]
    fn entry_storage_capacity_survives_churn() {
        let mut q = DataQueue::new();
        assert_eq!(q.capacity(), 0, "empty queues hold no buffer");
        q.insert(entry(0, 1, AccessMode::Write));
        let cap = q.capacity();
        assert!(cap >= 8, "first insert reserves the retained minimum");
        // Sustained enqueue/grant/remove churn below the retained depth
        // must never touch the allocator again: capacity is stable.
        for round in 1..500u64 {
            for k in 0..4 {
                q.insert(entry(round * 10 + k, round * 10 + k, AccessMode::Write));
            }
            q.mark_granted(TxnId(round * 10));
            for k in 0..4 {
                q.remove(TxnId(round * 10 + k));
            }
            assert_eq!(q.capacity(), cap, "churn round {round} reallocated");
        }
    }

    #[test]
    fn equal_precedence_inserts_after_existing() {
        // Stable behaviour for identical precedences (should not occur for
        // distinct transactions in practice, but must not panic or reorder).
        let mut q = DataQueue::new();
        let mut a = entry(1, 10, AccessMode::Read);
        let mut b = entry(2, 10, AccessMode::Read);
        // Force identical precedences.
        b.precedence = a.precedence;
        a.granted = false;
        q.insert(a);
        q.insert(b);
        let order: Vec<u64> = q.iter().map(|e| e.txn.0).collect();
        assert_eq!(order, vec![1, 2]);
    }
}
