//! # pam — the Precedence-Assignment Model (paper, Section 3)
//!
//! PAM decomposes a distributed concurrency-control algorithm into two
//! functions computed by the concurrency-control subsystem:
//!
//! 1. **Precedence assignment** — for each data item `Dj` there is a
//!    precedence space `(SPj, <j)` and a one-to-one function assigning an
//!    element of `SPj` to every operation accessing `Dj`.
//! 2. **Precedence enforcement** — the implementation order of conflicting
//!    operations on each item must follow the assigned precedences (condition
//!    **E1**), and there must exist a serialization order on transactions
//!    consistent with those precedences (condition **E2**).
//!
//! This crate provides:
//!
//! * [`precedence`] — the *unified precedence space* of Section 4.1 (the
//!   timestamp space extended with the paper's tie-breaking rules), plus the
//!   per-protocol assignment policies for 2PL, T/O and PA;
//! * [`msg`] — the request/reply message vocabulary exchanged between
//!   request issuers and data-queue managers, shared by the standalone
//!   protocol engines and the unified system;
//! * [`queue`] — the data-queue data structure (`QUEUE(j)` in the paper):
//!   a precedence-sorted sequence of requests with accepted/blocked marks and
//!   the `HD(j)` head computation.
//!
//! The enforcement side (lock tables, the semi-lock protocol) lives in the
//! `unified-cc` crate; the standalone reference protocols live in
//! `protocols`.

pub mod msg;
pub mod precedence;
pub mod queue;

pub use msg::{GrantClass, LockMode, ReplyMsg, RequestMsg};
pub use precedence::{AssignmentPolicy, PrecClass, Precedence};
pub use queue::{DataQueue, EntryStatus, QueueEntry};
