//! The unified precedence space (paper, Section 4.1).
//!
//! All three protocols assign precedences drawn from the *timestamp space*;
//! the total order on precedences is:
//!
//! 1. compare the timestamp values;
//! 2. on a tie, compare the site ids of the issuing transactions, where a
//!    2PL-controlled transaction is regarded as having the *biggest* site id;
//! 3. if still tied, either both requests are 2PL or both are not:
//!    * two 2PL requests compare by their arrival order at the data queue;
//!    * two non-2PL requests compare by their transaction ids.
//!
//! The per-protocol assignment rules are:
//!
//! * **T/O** and **PA** requests carry their transaction's timestamp;
//! * a **2PL** request entering queue `j` is assigned the biggest timestamp
//!   that has ever appeared in queue `j` before its arrival, which (together
//!   with the tie-breaking rules) inserts it at the tail of the queue and
//!   preserves FCFS order among 2PL requests.

use dbmodel::{CcMethod, SiteId, Timestamp, TxnId};

/// The tie-breaking class of a precedence: either a non-2PL request
/// identified by `(site, txn)`, or a 2PL request identified by its arrival
/// sequence number at the data queue.
///
/// The derived ordering puts every `NonTwoPl` before every `TwoPl`, which is
/// exactly the paper's "a 2PL controlled transaction is regarded as having
/// the biggest site id".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrecClass {
    /// A T/O or PA request: tie-break by issuing site, then transaction id.
    NonTwoPl {
        /// The site of the issuing request issuer.
        site: SiteId,
        /// The issuing transaction.
        txn: TxnId,
    },
    /// A 2PL request: tie-break by arrival order at the data queue.
    TwoPl {
        /// Arrival sequence number at this data queue.
        arrival_seq: u64,
    },
}

/// An element of the unified precedence space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Precedence {
    /// The timestamp component (compared first).
    pub ts: Timestamp,
    /// The tie-breaking component.
    pub class: PrecClass,
}

impl Precedence {
    /// The precedence of a T/O or PA request with the given transaction
    /// timestamp.
    pub fn timestamped(ts: Timestamp, site: SiteId, txn: TxnId) -> Self {
        Precedence {
            ts,
            class: PrecClass::NonTwoPl { site, txn },
        }
    }

    /// The precedence of a 2PL request: the largest timestamp seen at the
    /// queue so far, tie-broken by arrival order.
    pub fn two_pl(max_seen_ts: Timestamp, arrival_seq: u64) -> Self {
        Precedence {
            ts: max_seen_ts,
            class: PrecClass::TwoPl { arrival_seq },
        }
    }

    /// True if this precedence belongs to a 2PL request.
    pub fn is_two_pl(&self) -> bool {
        matches!(self.class, PrecClass::TwoPl { .. })
    }
}

/// The per-queue assignment policy: given the queue's running state (largest
/// timestamp seen, arrival counter), compute the precedence of an incoming
/// request. This is the paper's assignment function `ASj`, specialised per
/// protocol, plus the bookkeeping needed to keep it one-to-one.
#[derive(Debug, Clone, Default)]
pub struct AssignmentPolicy {
    max_seen_ts: Timestamp,
    arrival_counter: u64,
}

impl AssignmentPolicy {
    /// Create a fresh policy for an empty queue.
    pub fn new() -> Self {
        AssignmentPolicy::default()
    }

    /// The biggest timestamp that has appeared in the queue so far.
    pub fn max_seen_ts(&self) -> Timestamp {
        self.max_seen_ts
    }

    /// Assign a precedence to a request from a transaction running under
    /// `method` with (for T/O and PA) timestamp `ts`.
    ///
    /// The call also performs the bookkeeping: timestamped requests raise the
    /// queue's largest-seen timestamp; 2PL requests consume an arrival
    /// sequence number.
    pub fn assign(
        &mut self,
        method: CcMethod,
        ts: Timestamp,
        site: SiteId,
        txn: TxnId,
    ) -> Precedence {
        match method {
            CcMethod::TwoPhaseLocking => {
                let seq = self.arrival_counter;
                self.arrival_counter += 1;
                Precedence::two_pl(self.max_seen_ts, seq)
            }
            CcMethod::TimestampOrdering | CcMethod::PrecedenceAgreement => {
                self.observe_ts(ts);
                Precedence::timestamped(ts, site, txn)
            }
        }
    }

    /// Record that a (possibly backed-off) timestamp has appeared in the
    /// queue, raising the largest-seen timestamp used for 2PL assignment.
    pub fn observe_ts(&mut self, ts: Timestamp) {
        if ts > self.max_seen_ts {
            self.max_seen_ts = ts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(i: u32) -> SiteId {
        SiteId(i)
    }
    fn txn(i: u64) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn timestamp_dominates() {
        let a = Precedence::timestamped(Timestamp(5), site(9), txn(9));
        let b = Precedence::timestamped(Timestamp(6), site(0), txn(0));
        assert!(a < b);
        let c = Precedence::two_pl(Timestamp(5), 0);
        let d = Precedence::timestamped(Timestamp(6), site(0), txn(0));
        assert!(c < d);
    }

    #[test]
    fn two_pl_is_biggest_site_on_ties() {
        let non = Precedence::timestamped(Timestamp(5), site(u32::MAX), txn(u64::MAX));
        let two = Precedence::two_pl(Timestamp(5), 0);
        assert!(
            non < two,
            "2PL acts as the biggest site id on a timestamp tie"
        );
    }

    #[test]
    fn non_two_pl_tie_breaks_by_site_then_txn() {
        let a = Precedence::timestamped(Timestamp(5), site(1), txn(50));
        let b = Precedence::timestamped(Timestamp(5), site(2), txn(3));
        assert!(a < b, "site id compared before txn id");
        let c = Precedence::timestamped(Timestamp(5), site(1), txn(51));
        assert!(a < c, "same site falls back to txn id");
    }

    #[test]
    fn two_pl_tie_breaks_by_arrival_order() {
        let a = Precedence::two_pl(Timestamp(5), 3);
        let b = Precedence::two_pl(Timestamp(5), 4);
        assert!(a < b);
    }

    #[test]
    fn assignment_keeps_two_pl_fcfs() {
        let mut policy = AssignmentPolicy::new();
        let p1 = policy.assign(CcMethod::TwoPhaseLocking, Timestamp::ZERO, site(0), txn(1));
        let p2 = policy.assign(CcMethod::TwoPhaseLocking, Timestamp::ZERO, site(0), txn(2));
        assert!(p1 < p2);
        // A timestamped request raises the bar for later 2PL arrivals.
        let p3 = policy.assign(CcMethod::TimestampOrdering, Timestamp(100), site(1), txn(3));
        let p4 = policy.assign(CcMethod::TwoPhaseLocking, Timestamp::ZERO, site(0), txn(4));
        assert!(
            p3 < p4,
            "new 2PL request goes to the tail after the T/O request"
        );
        assert!(p2 < p4);
        assert_eq!(policy.max_seen_ts(), Timestamp(100));
    }

    #[test]
    fn two_pl_requests_do_not_raise_max_seen() {
        let mut policy = AssignmentPolicy::new();
        policy.observe_ts(Timestamp(10));
        let p = policy.assign(CcMethod::TwoPhaseLocking, Timestamp(999), site(0), txn(1));
        assert_eq!(
            p.ts,
            Timestamp(10),
            "2PL precedence uses the queue's max seen ts"
        );
        assert_eq!(policy.max_seen_ts(), Timestamp(10));
    }

    #[test]
    fn pa_and_to_assignments_are_their_timestamps() {
        let mut policy = AssignmentPolicy::new();
        let p = policy.assign(CcMethod::PrecedenceAgreement, Timestamp(7), site(2), txn(9));
        assert_eq!(p.ts, Timestamp(7));
        assert!(!p.is_two_pl());
        let q = policy.assign(CcMethod::TimestampOrdering, Timestamp(3), site(2), txn(10));
        assert_eq!(q.ts, Timestamp(3));
        assert_eq!(policy.max_seen_ts(), Timestamp(7));
    }

    #[test]
    fn ordering_is_total_and_antisymmetric_over_samples() {
        // A small exhaustive check that the derived order behaves like a
        // strict total order on a mixed population.
        let mut pop = Vec::new();
        for ts in 0..4u64 {
            for s in 0..3u32 {
                for t in 0..3u64 {
                    pop.push(Precedence::timestamped(Timestamp(ts), site(s), txn(t)));
                }
            }
            for seq in 0..3u64 {
                pop.push(Precedence::two_pl(Timestamp(ts), seq));
            }
        }
        for &a in &pop {
            for &b in &pop {
                if a == b {
                    assert!((a >= b) && (b >= a));
                } else {
                    assert!(
                        (a < b) ^ (b < a),
                        "exactly one of a<b, b<a for distinct elements"
                    );
                }
                for &c in &pop {
                    if a < b && b < c {
                        assert!(a < c, "transitivity");
                    }
                }
            }
        }
    }
}
