//! The message vocabulary between request issuers (RI) and data-queue
//! managers (QM).
//!
//! These are the protocol-level payloads; transport concerns (delay,
//! accounting) are handled by the `network` crate, and the driving loop by
//! the `sim` crate. The unified system and the standalone protocol engines
//! speak the same vocabulary so they can be cross-validated.

use dbmodel::{AccessMode, CcMethod, PhysicalItemId, Timestamp, TsTuple, TxnId, Value};

/// The four lock modes of the semi-lock protocol (paper, Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Read lock.
    Read,
    /// Write lock.
    Write,
    /// Semi-read lock: unlocked from T/O's point of view, locked for 2PL/PA.
    SemiRead,
    /// Semi-write lock: unlocked from T/O's point of view, locked for 2PL/PA.
    SemiWrite,
}

impl LockMode {
    /// Two locks conflict if they lock the same data item and at least one of
    /// them is a write or semi-write lock (paper, Section 4.2 rule 2).
    pub fn conflicts_with(self, other: LockMode) -> bool {
        self.is_write_kind() || other.is_write_kind()
    }

    /// True for `Write` and `SemiWrite`.
    pub fn is_write_kind(self) -> bool {
        matches!(self, LockMode::Write | LockMode::SemiWrite)
    }

    /// True for `SemiRead` and `SemiWrite`.
    pub fn is_semi(self) -> bool {
        matches!(self, LockMode::SemiRead | LockMode::SemiWrite)
    }

    /// The semi-lock this lock transforms into when a T/O transaction
    /// finishes execution while holding pre-scheduled locks
    /// (RL → SRL, WL → SWL; semi-locks stay as they are).
    pub fn demoted(self) -> LockMode {
        match self {
            LockMode::Read | LockMode::SemiRead => LockMode::SemiRead,
            LockMode::Write | LockMode::SemiWrite => LockMode::SemiWrite,
        }
    }
}

/// Whether a grant is normal or pre-scheduled.
///
/// A lock is *pre-scheduled* if at least one conflicting lock was granted
/// earlier and has not yet been released; otherwise it is *normal*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrantClass {
    /// No conflicting lock was outstanding at grant time.
    Normal,
    /// A conflicting (semi-)lock was still outstanding at grant time.
    PreScheduled,
}

/// Messages from a request issuer to a data-queue manager.
///
/// Plain value data end to end (`Copy`), so the runtime's send batcher can
/// regroup messages per destination without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMsg {
    /// A read or write request for one physical item.
    Access {
        /// Issuing transaction.
        txn: TxnId,
        /// Target physical item.
        item: PhysicalItemId,
        /// Read or write.
        mode: AccessMode,
        /// Concurrency-control method of the issuing transaction.
        method: CcMethod,
        /// Timestamp tuple `(TS, INT)`; ignored by 2PL requests.
        ts: TsTuple,
    },
    /// PA only: the issuer's final (backed-off) timestamp `TS'_i`, broadcast
    /// to every queue the transaction accesses.
    UpdatedTs {
        /// Issuing transaction.
        txn: TxnId,
        /// Target physical item.
        item: PhysicalItemId,
        /// The new timestamp.
        new_ts: Timestamp,
    },
    /// Release the transaction's lock (normal or semi) on this item. For a
    /// write access, carries the value to install; the physical write is
    /// *implemented* at this point for 2PL/PA transactions.
    Release {
        /// Issuing transaction.
        txn: TxnId,
        /// Target physical item.
        item: PhysicalItemId,
        /// New value for write accesses; `None` for reads.
        write_value: Option<Value>,
        /// The global commit stamp the write is implemented at, feeding the
        /// item's version chain; `Timestamp::ZERO` = unstamped (simulator
        /// path, or a read-only release carrying no value).
        commit_ts: Timestamp,
    },
    /// T/O only: the transaction executed while holding at least one
    /// pre-scheduled lock; transform its locks on this item into semi-locks
    /// (RL → SRL, WL → SWL). The operation is *implemented* at this point;
    /// write accesses carry the value to install.
    Demote {
        /// Issuing transaction.
        txn: TxnId,
        /// Target physical item.
        item: PhysicalItemId,
        /// New value for write accesses; `None` for reads.
        write_value: Option<Value>,
        /// The global commit stamp the write is implemented at, feeding the
        /// item's version chain; `Timestamp::ZERO` = unstamped.
        commit_ts: Timestamp,
    },
    /// Abort: drop the transaction's queue entry and any locks it holds on
    /// this item without implementing anything (T/O restarts, 2PL deadlock
    /// victims).
    Abort {
        /// Issuing transaction.
        txn: TxnId,
        /// Target physical item.
        item: PhysicalItemId,
    },
}

impl RequestMsg {
    /// The physical item this message addresses.
    pub fn item(&self) -> PhysicalItemId {
        match self {
            RequestMsg::Access { item, .. }
            | RequestMsg::UpdatedTs { item, .. }
            | RequestMsg::Release { item, .. }
            | RequestMsg::Demote { item, .. }
            | RequestMsg::Abort { item, .. } => *item,
        }
    }

    /// The transaction this message belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            RequestMsg::Access { txn, .. }
            | RequestMsg::UpdatedTs { txn, .. }
            | RequestMsg::Release { txn, .. }
            | RequestMsg::Demote { txn, .. }
            | RequestMsg::Abort { txn, .. } => *txn,
        }
    }
}

/// Messages from a data-queue manager back to a request issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyMsg {
    /// PA only: the request was *accepted* at its own timestamp but cannot be
    /// granted yet (it is queued behind earlier requests). The acknowledgement
    /// lets the issuer complete its grant-or-backoff collection phase without
    /// waiting for the actual lock grant — without it, two PA transactions
    /// each backed off at one queue and queued behind the other's blocked
    /// entry at a second queue would wait on each other forever.
    Ack {
        /// The acknowledged transaction.
        txn: TxnId,
        /// The item whose queue accepted it.
        item: PhysicalItemId,
    },
    /// The request has been granted a lock. A pre-scheduled grant may later
    /// be followed by a second, normal grant for the same item once the
    /// conflicting locks are released.
    Grant {
        /// The transaction whose request is granted.
        txn: TxnId,
        /// The item the grant is for.
        item: PhysicalItemId,
        /// The lock mode granted.
        lock: LockMode,
        /// Normal or pre-scheduled.
        class: GrantClass,
        /// The value of the item at grant time, attached to the grant
        /// ("the data read are attached to the corresponding lock grant";
        /// write grants carry it too, giving embedders read-modify-write
        /// semantics).
        value: Option<Value>,
        /// The precedence timestamp the grant was issued at. A PA issuer
        /// uses this to tell a grant issued before its backoff round (and
        /// revoked by the timestamp update) from the re-issued grant at the
        /// backed-off timestamp — the two can otherwise be confused when
        /// the stale grant is still in flight as the round fires.
        at: Timestamp,
    },
    /// T/O only: the request arrived out of timestamp order and is rejected;
    /// the transaction must restart with a new timestamp.
    Reject {
        /// The rejected transaction.
        txn: TxnId,
        /// The item whose queue rejected it.
        item: PhysicalItemId,
    },
    /// PA only: the proposed backoff timestamp `TS'_ij` for this item.
    Backoff {
        /// The transaction being backed off.
        txn: TxnId,
        /// The item whose queue computed the backoff.
        item: PhysicalItemId,
        /// The smallest acceptable timestamp at this queue.
        new_ts: Timestamp,
    },
}

impl ReplyMsg {
    /// The physical item this reply concerns.
    pub fn item(&self) -> PhysicalItemId {
        match self {
            ReplyMsg::Ack { item, .. }
            | ReplyMsg::Grant { item, .. }
            | ReplyMsg::Reject { item, .. }
            | ReplyMsg::Backoff { item, .. } => *item,
        }
    }

    /// The transaction this reply is addressed to.
    pub fn txn(&self) -> TxnId {
        match self {
            ReplyMsg::Ack { txn, .. }
            | ReplyMsg::Grant { txn, .. }
            | ReplyMsg::Reject { txn, .. }
            | ReplyMsg::Backoff { txn, .. } => *txn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{LogicalItemId, SiteId};

    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    #[test]
    fn lock_conflicts_follow_semi_lock_rule() {
        use LockMode::*;
        assert!(!Read.conflicts_with(Read));
        assert!(!Read.conflicts_with(SemiRead));
        assert!(!SemiRead.conflicts_with(SemiRead));
        assert!(Read.conflicts_with(Write));
        assert!(Read.conflicts_with(SemiWrite));
        assert!(Write.conflicts_with(Write));
        assert!(SemiWrite.conflicts_with(SemiWrite));
        assert!(SemiRead.conflicts_with(Write));
    }

    #[test]
    fn demotion_maps_to_semi_locks() {
        assert_eq!(LockMode::Read.demoted(), LockMode::SemiRead);
        assert_eq!(LockMode::Write.demoted(), LockMode::SemiWrite);
        assert_eq!(LockMode::SemiRead.demoted(), LockMode::SemiRead);
        assert_eq!(LockMode::SemiWrite.demoted(), LockMode::SemiWrite);
    }

    #[test]
    fn semi_flags() {
        assert!(LockMode::SemiRead.is_semi());
        assert!(LockMode::SemiWrite.is_semi());
        assert!(!LockMode::Read.is_semi());
        assert!(LockMode::SemiWrite.is_write_kind());
        assert!(!LockMode::SemiRead.is_write_kind());
    }

    #[test]
    fn request_accessors() {
        let m = RequestMsg::Access {
            txn: TxnId(4),
            item: pi(2, 1),
            mode: AccessMode::Read,
            method: CcMethod::TimestampOrdering,
            ts: TsTuple::new(Timestamp(9), 5),
        };
        assert_eq!(m.item(), pi(2, 1));
        assert_eq!(m.txn(), TxnId(4));
        let r = RequestMsg::Release {
            txn: TxnId(5),
            item: pi(3, 0),
            write_value: Some(11),
            commit_ts: Timestamp::ZERO,
        };
        assert_eq!(r.item(), pi(3, 0));
        assert_eq!(r.txn(), TxnId(5));
    }

    #[test]
    fn reply_accessors() {
        let g = ReplyMsg::Grant {
            txn: TxnId(1),
            item: pi(7, 2),
            lock: LockMode::SemiRead,
            class: GrantClass::PreScheduled,
            value: Some(3),
            at: Timestamp(9),
        };
        assert_eq!(g.item(), pi(7, 2));
        assert_eq!(g.txn(), TxnId(1));
        let b = ReplyMsg::Backoff {
            txn: TxnId(2),
            item: pi(7, 2),
            new_ts: Timestamp(55),
        };
        assert_eq!(b.txn(), TxnId(2));
        assert_eq!(b.item(), pi(7, 2));
    }
}
