//! # sercheck — the serializability oracle
//!
//! The paper's correctness criterion is conflict serializability (Theorem 1):
//! an execution is conflict serializable iff the conflict graph induced by
//! the per-item implementation logs is acyclic. This crate reconstructs that
//! graph from a [`dbmodel::LogSet`] and either recovers a serialization order
//! (a topological sort of the graph) or reports a cycle as a witness of a
//! non-serializable execution.
//!
//! Every integration and property test of the concurrency-control engines
//! funnels its execution logs through [`check_serializable`].

pub mod graph;

pub use graph::{check_serializable, ConflictGraph, SerializabilityError};
