//! # sercheck — the serializability oracle
//!
//! The paper's correctness criterion is conflict serializability (Theorem 1):
//! an execution is conflict serializable iff the conflict graph induced by
//! the per-item implementation logs is acyclic. This crate reconstructs that
//! graph from a [`dbmodel::LogSet`] and either recovers a serialization order
//! (a topological sort of the graph) or reports a cycle as a witness of a
//! non-serializable execution.
//!
//! Every integration and property test of the concurrency-control engines
//! funnels its execution logs through [`check_serializable`].
//!
//! ## Violation observers
//!
//! A failed check is the strongest anomaly signal the workspace has — it
//! means a race or protocol bug let a conflict cycle commit. Observers
//! registered through [`observe_violations`] are invoked with the error
//! before it is returned, so diagnostic machinery (the runtime's trace
//! plane dumps its flight-recorder rings) can capture state at the moment
//! the oracle fires rather than after the caller unwinds. Registration is
//! scoped: dropping the returned guard removes the observer, so a
//! simulator test that *constructs* a cycle on purpose does not trip a
//! live runtime's postmortem.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dbmodel::{LogSet, TxnId};

pub mod graph;

pub use graph::{ConflictGraph, SerializabilityError};

type Observer = Box<dyn Fn(&SerializabilityError) + Send + Sync>;

static NEXT_OBSERVER_ID: AtomicU64 = AtomicU64::new(0);
static OBSERVERS: Mutex<Vec<(u64, Observer)>> = Mutex::new(Vec::new());

/// Keeps an observer registered; dropping it deregisters.
#[derive(Debug)]
pub struct ObserverGuard {
    id: u64,
}

impl Drop for ObserverGuard {
    fn drop(&mut self) {
        let mut observers = OBSERVERS.lock().expect("observer list poisoned");
        observers.retain(|(id, _)| *id != self.id);
    }
}

/// Register `f` to be called with every serializability violation any
/// thread's [`check_serializable`] detects, until the guard is dropped.
pub fn observe_violations(
    f: impl Fn(&SerializabilityError) + Send + Sync + 'static,
) -> ObserverGuard {
    let id = NEXT_OBSERVER_ID.fetch_add(1, Ordering::Relaxed);
    OBSERVERS
        .lock()
        .expect("observer list poisoned")
        .push((id, Box::new(f)));
    ObserverGuard { id }
}

/// Check an execution's logs for conflict serializability, notifying every
/// registered violation observer before returning a failure.
pub fn check_serializable(logs: &LogSet) -> Result<Vec<TxnId>, SerializabilityError> {
    let result = graph::check_serializable(logs);
    if let Err(ref error) = result {
        let observers = OBSERVERS.lock().expect("observer list poisoned");
        for (_, observer) in observers.iter() {
            observer(error);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    use dbmodel::{AccessMode, LogicalItemId, PhysicalItemId, SiteId};

    use super::*;

    fn cyclic_logs() -> LogSet {
        // Two items with opposite write orders: T1 → T2 on one, T2 → T1
        // on the other — the canonical conflict cycle.
        let mut logs = LogSet::default();
        let a = PhysicalItemId::new(LogicalItemId(0), SiteId(0));
        let b = PhysicalItemId::new(LogicalItemId(1), SiteId(0));
        logs.record(a, TxnId(1), AccessMode::Write);
        logs.record(a, TxnId(2), AccessMode::Write);
        logs.record(b, TxnId(2), AccessMode::Write);
        logs.record(b, TxnId(1), AccessMode::Write);
        logs
    }

    #[test]
    fn observers_fire_on_violation_and_stop_after_drop() {
        let fired = Arc::new(AtomicUsize::new(0));
        let guard = observe_violations({
            let fired = Arc::clone(&fired);
            move |error| {
                assert!(matches!(error, SerializabilityError::Cycle(_)));
                fired.fetch_add(1, Ordering::SeqCst);
            }
        });

        assert!(check_serializable(&cyclic_logs()).is_err());
        assert_eq!(fired.load(Ordering::SeqCst), 1);

        // A clean execution does not notify.
        let mut clean = LogSet::default();
        clean.record(
            PhysicalItemId::new(LogicalItemId(0), SiteId(0)),
            TxnId(1),
            AccessMode::Write,
        );
        assert!(check_serializable(&clean).is_ok());
        assert_eq!(fired.load(Ordering::SeqCst), 1);

        drop(guard);
        assert!(check_serializable(&cyclic_logs()).is_err());
        assert_eq!(fired.load(Ordering::SeqCst), 1, "deregistered");
    }
}
