//! Conflict-graph construction, cycle detection and serialization-order
//! recovery.

use std::collections::{BTreeMap, BTreeSet};

use dbmodel::{LogSet, PhysicalItemId, TxnId};

/// Why an execution failed the serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializabilityError {
    /// The conflict graph contains a cycle; the payload is one cycle found,
    /// as a sequence of transactions `t0 → t1 → … → t0` (the first element is
    /// repeated at the end).
    Cycle(Vec<TxnId>),
}

impl std::fmt::Display for SerializabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializabilityError::Cycle(cycle) => {
                let names: Vec<String> = cycle.iter().map(|t| t.to_string()).collect();
                write!(f, "conflict-graph cycle: {}", names.join(" -> "))
            }
        }
    }
}

impl std::error::Error for SerializabilityError {}

/// The conflict (serialization) graph of an execution.
///
/// Nodes are committed transactions; there is an edge `ti → tj` when some
/// item's log implements a conflicting operation of `ti` before one of `tj`.
#[derive(Debug, Clone, Default)]
pub struct ConflictGraph {
    nodes: BTreeSet<TxnId>,
    edges: BTreeMap<TxnId, BTreeSet<TxnId>>,
    // One witness item per edge, for diagnostics.
    witnesses: BTreeMap<(TxnId, TxnId), PhysicalItemId>,
}

impl ConflictGraph {
    /// Build the conflict graph from a set of per-item implementation logs.
    pub fn from_logs(logs: &LogSet) -> Self {
        let mut g = ConflictGraph::default();
        for (item, log) in logs.iter() {
            for entry in log.entries() {
                g.nodes.insert(entry.txn);
            }
            for (earlier, later) in log.conflict_pairs() {
                g.add_edge(earlier.txn, later.txn, item);
            }
            // Snapshot-plane reads never enter a queue, so their log
            // position is meaningless; they are ordered against this item's
            // writers by commit timestamp instead. A write stamped at or
            // below the read's served timestamp was visible to the read
            // (W → R); one stamped above it was not (R → W). Unstamped
            // writes (sim path) fall back to log-position order.
            for r in log.entries().iter().filter(|e| e.snapshot) {
                let t = r.commit_ts.unwrap_or(dbmodel::Timestamp::ZERO);
                for w in log.entries() {
                    if w.snapshot || w.txn == r.txn || !w.mode.conflicts_with(r.mode) {
                        continue;
                    }
                    match w.commit_ts {
                        Some(c) if c <= t => g.add_edge(w.txn, r.txn, item),
                        Some(_) => g.add_edge(r.txn, w.txn, item),
                        None if w.seq < r.seq => g.add_edge(w.txn, r.txn, item),
                        None => g.add_edge(r.txn, w.txn, item),
                    }
                }
            }
        }
        g
    }

    /// Add an explicit node (useful for transactions that committed without
    /// conflicting with anyone).
    pub fn add_node(&mut self, txn: TxnId) {
        self.nodes.insert(txn);
    }

    /// Add an edge `from → to`, recording `item` as a witness.
    pub fn add_edge(&mut self, from: TxnId, to: TxnId, item: PhysicalItemId) {
        if from == to {
            return;
        }
        self.nodes.insert(from);
        self.nodes.insert(to);
        self.edges.entry(from).or_default().insert(to);
        self.witnesses.entry((from, to)).or_insert(item);
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// The successors of a transaction.
    pub fn successors(&self, txn: TxnId) -> impl Iterator<Item = TxnId> + '_ {
        self.edges
            .get(&txn)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// The item witnessing an edge, if the edge exists.
    pub fn witness(&self, from: TxnId, to: TxnId) -> Option<PhysicalItemId> {
        self.witnesses.get(&(from, to)).copied()
    }

    /// True if the graph contains the edge `from → to`.
    pub fn has_edge(&self, from: TxnId, to: TxnId) -> bool {
        self.edges.get(&from).is_some_and(|s| s.contains(&to))
    }

    /// Topologically sort the graph. On success the returned order is a valid
    /// serialization order (Theorem 1); on failure a cycle is returned.
    pub fn serialization_order(&self) -> Result<Vec<TxnId>, SerializabilityError> {
        // Kahn's algorithm with deterministic (BTree) tie-breaking.
        let mut indegree: BTreeMap<TxnId, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for succs in self.edges.values() {
            for &to in succs {
                *indegree.entry(to).or_insert(0) += 1;
            }
        }
        let mut ready: BTreeSet<TxnId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(&next) = ready.iter().next() {
            ready.remove(&next);
            order.push(next);
            for succ in self.successors(next) {
                let d = indegree.get_mut(&succ).expect("successor is a node");
                *d -= 1;
                if *d == 0 {
                    ready.insert(succ);
                }
            }
        }
        if order.len() == self.nodes.len() {
            Ok(order)
        } else {
            Err(SerializabilityError::Cycle(self.find_cycle()))
        }
    }

    /// Find one cycle in the graph (only called when one exists).
    fn find_cycle(&self) -> Vec<TxnId> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark: BTreeMap<TxnId, Mark> =
            self.nodes.iter().map(|&n| (n, Mark::White)).collect();
        let mut stack: Vec<TxnId> = Vec::new();

        fn dfs(
            g: &ConflictGraph,
            node: TxnId,
            mark: &mut BTreeMap<TxnId, Mark>,
            stack: &mut Vec<TxnId>,
        ) -> Option<Vec<TxnId>> {
            mark.insert(node, Mark::Grey);
            stack.push(node);
            for succ in g.successors(node) {
                match mark.get(&succ).copied().unwrap_or(Mark::White) {
                    Mark::Grey => {
                        // Found a cycle: slice the stack from the first
                        // occurrence of succ.
                        let start = stack.iter().position(|&t| t == succ).unwrap_or(0);
                        let mut cycle: Vec<TxnId> = stack[start..].to_vec();
                        cycle.push(succ);
                        return Some(cycle);
                    }
                    Mark::White => {
                        if let Some(c) = dfs(g, succ, mark, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
            stack.pop();
            mark.insert(node, Mark::Black);
            None
        }

        for &node in &self.nodes {
            if mark[&node] == Mark::White {
                if let Some(cycle) = dfs(self, node, &mut mark, &mut stack) {
                    return cycle;
                }
            }
        }
        Vec::new()
    }
}

/// Check that the execution recorded in `logs` is conflict serializable,
/// returning a serialization order on success.
pub fn check_serializable(logs: &LogSet) -> Result<Vec<TxnId>, SerializabilityError> {
    ConflictGraph::from_logs(logs).serialization_order()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{AccessMode, LogicalItemId, SiteId};

    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    #[test]
    fn empty_logs_are_serializable() {
        let logs = LogSet::new();
        assert_eq!(check_serializable(&logs).unwrap(), Vec::<TxnId>::new());
    }

    #[test]
    fn serial_execution_is_serializable_in_log_order() {
        let mut logs = LogSet::new();
        // t1 then t2 on the same item.
        logs.record(pi(1, 0), TxnId(1), AccessMode::Write);
        logs.record(pi(1, 0), TxnId(2), AccessMode::Write);
        logs.record(pi(2, 0), TxnId(1), AccessMode::Read);
        logs.record(pi(2, 0), TxnId(2), AccessMode::Write);
        let order = check_serializable(&logs).unwrap();
        assert_eq!(order, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn classic_nonserializable_interleaving_is_caught() {
        // The example from Section 4.2 of the paper:
        //   Queue(x): r1 < w3, Queue(y): r2 < w1, Queue(z): r3 < w2.
        // Implementing in those orders yields the cycle t1 -> t3? No:
        // r1 before w3 gives t1 -> t3; r2 before w1 gives t2 -> t1;
        // r3 before w2 gives t3 -> t2. Cycle t1 -> t3 -> t2 -> t1.
        let mut logs = LogSet::new();
        logs.record(pi(0, 0), TxnId(1), AccessMode::Read); // r1(x)
        logs.record(pi(0, 0), TxnId(3), AccessMode::Write); // w3(x)
        logs.record(pi(1, 0), TxnId(2), AccessMode::Read); // r2(y)
        logs.record(pi(1, 0), TxnId(1), AccessMode::Write); // w1(y)
        logs.record(pi(2, 0), TxnId(3), AccessMode::Read); // r3(z)
        logs.record(pi(2, 0), TxnId(2), AccessMode::Write); // w2(z)
        let err = check_serializable(&logs).unwrap_err();
        let SerializabilityError::Cycle(cycle) = err;
        assert!(cycle.len() >= 4, "cycle includes the repeated start node");
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn read_only_transactions_do_not_create_edges() {
        let mut logs = LogSet::new();
        logs.record(pi(1, 0), TxnId(1), AccessMode::Read);
        logs.record(pi(1, 0), TxnId(2), AccessMode::Read);
        logs.record(pi(1, 0), TxnId(3), AccessMode::Read);
        let g = ConflictGraph::from_logs(&logs);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.serialization_order().unwrap().len(), 3);
    }

    #[test]
    fn snapshot_reads_are_ordered_by_commit_ts_not_position() {
        use dbmodel::Timestamp;
        let mut logs = LogSet::new();
        // Writer t1 stamped at ts 2, writer t3 stamped at ts 5. The snapshot
        // reader t9 is logged FIRST on the item but served the ts-2 version,
        // so it must land between the writers, not before both.
        logs.record_full(
            pi(0, 0),
            TxnId(9),
            AccessMode::Read,
            Some(Timestamp(2)),
            true,
        );
        logs.record_full(
            pi(0, 0),
            TxnId(1),
            AccessMode::Write,
            Some(Timestamp(2)),
            false,
        );
        logs.record_full(
            pi(0, 0),
            TxnId(3),
            AccessMode::Write,
            Some(Timestamp(5)),
            false,
        );
        let g = ConflictGraph::from_logs(&logs);
        assert!(g.has_edge(TxnId(1), TxnId(9)), "w@2 visible to read@2");
        assert!(g.has_edge(TxnId(9), TxnId(3)), "w@5 invisible to read@2");
        let order = check_serializable(&logs).unwrap();
        assert_eq!(order, vec![TxnId(1), TxnId(9), TxnId(3)]);
    }

    #[test]
    fn torn_snapshot_read_forms_a_cycle() {
        use dbmodel::Timestamp;
        let mut logs = LogSet::new();
        // Writer t3 commits x and y atomically at ts 5. A torn reader t9
        // observes the NEW x (served ts 5) but the OLD y (served ts 2,
        // written by t1): t3 -> t9 on x and t9 -> t3 on y — a cycle.
        logs.record_full(
            pi(0, 0),
            TxnId(3),
            AccessMode::Write,
            Some(Timestamp(5)),
            false,
        );
        logs.record_full(
            pi(0, 0),
            TxnId(9),
            AccessMode::Read,
            Some(Timestamp(5)),
            true,
        );
        logs.record_full(
            pi(1, 0),
            TxnId(1),
            AccessMode::Write,
            Some(Timestamp(2)),
            false,
        );
        logs.record_full(
            pi(1, 0),
            TxnId(3),
            AccessMode::Write,
            Some(Timestamp(5)),
            false,
        );
        logs.record_full(
            pi(1, 0),
            TxnId(9),
            AccessMode::Read,
            Some(Timestamp(2)),
            true,
        );
        let err = check_serializable(&logs).unwrap_err();
        let SerializabilityError::Cycle(cycle) = err;
        let set: BTreeSet<TxnId> = cycle.iter().copied().collect();
        assert!(set.contains(&TxnId(3)) && set.contains(&TxnId(9)));
    }

    #[test]
    fn snapshot_read_against_unstamped_writer_uses_position() {
        use dbmodel::Timestamp;
        let mut logs = LogSet::new();
        logs.record(pi(0, 0), TxnId(1), AccessMode::Write); // unstamped, seq 0
        logs.record_full(
            pi(0, 0),
            TxnId(9),
            AccessMode::Read,
            Some(Timestamp(0)),
            true,
        ); // seq 1
        logs.record(pi(0, 0), TxnId(2), AccessMode::Write); // unstamped, seq 2
        let g = ConflictGraph::from_logs(&logs);
        assert!(g.has_edge(TxnId(1), TxnId(9)));
        assert!(g.has_edge(TxnId(9), TxnId(2)));
        assert_eq!(
            check_serializable(&logs).unwrap(),
            vec![TxnId(1), TxnId(9), TxnId(2)]
        );
    }

    #[test]
    fn graph_accessors_report_edges_and_witnesses() {
        let mut g = ConflictGraph::default();
        g.add_edge(TxnId(1), TxnId(2), pi(9, 1));
        g.add_edge(TxnId(1), TxnId(1), pi(9, 1)); // self edges ignored
        g.add_node(TxnId(5));
        assert!(g.has_edge(TxnId(1), TxnId(2)));
        assert!(!g.has_edge(TxnId(2), TxnId(1)));
        assert_eq!(g.witness(TxnId(1), TxnId(2)), Some(pi(9, 1)));
        assert_eq!(g.witness(TxnId(2), TxnId(1)), None);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.successors(TxnId(1)).collect::<Vec<_>>(), vec![TxnId(2)]);
    }

    #[test]
    fn two_node_cycle_is_reported() {
        let mut logs = LogSet::new();
        // Item a: t1 writes before t2 writes. Item b: t2 writes before t1 writes.
        logs.record(pi(0, 0), TxnId(1), AccessMode::Write);
        logs.record(pi(0, 0), TxnId(2), AccessMode::Write);
        logs.record(pi(1, 0), TxnId(2), AccessMode::Write);
        logs.record(pi(1, 0), TxnId(1), AccessMode::Write);
        let err = check_serializable(&logs).unwrap_err();
        let SerializabilityError::Cycle(cycle) = err;
        assert_eq!(cycle.first(), cycle.last());
        let set: BTreeSet<TxnId> = cycle.iter().copied().collect();
        assert_eq!(set, BTreeSet::from([TxnId(1), TxnId(2)]));
        assert!(format!("{}", SerializabilityError::Cycle(cycle)).contains("cycle"));
    }

    #[test]
    fn serialization_order_respects_every_edge() {
        let mut logs = LogSet::new();
        // A diamond: t1 before t2 and t3, both before t4.
        logs.record(pi(0, 0), TxnId(1), AccessMode::Write);
        logs.record(pi(0, 0), TxnId(2), AccessMode::Read);
        logs.record(pi(1, 0), TxnId(1), AccessMode::Write);
        logs.record(pi(1, 0), TxnId(3), AccessMode::Read);
        logs.record(pi(2, 0), TxnId(2), AccessMode::Write);
        logs.record(pi(2, 0), TxnId(4), AccessMode::Write);
        logs.record(pi(3, 0), TxnId(3), AccessMode::Write);
        logs.record(pi(3, 0), TxnId(4), AccessMode::Read);
        let order = check_serializable(&logs).unwrap();
        let pos: BTreeMap<TxnId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let g = ConflictGraph::from_logs(&logs);
        for &from in &order {
            for to in g.successors(from) {
                assert!(pos[&from] < pos[&to], "{from} must precede {to}");
            }
        }
    }
}
