//! Metric collection for simulation runs.

use std::collections::BTreeMap;

use dbmodel::{AccessMode, CcMethod, PhysicalItemId};
use simkit::stats::{Counter, Histogram, RunningStat};
use simkit::time::{Duration, SimTime};

/// How a transaction attempt (one incarnation) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The incarnation executed and committed.
    Committed,
    /// The incarnation was rejected by the T/O rule and restarted.
    RejectedRestart,
    /// The incarnation was aborted as a deadlock victim and restarted.
    DeadlockRestart,
}

/// Statistics broken down for one concurrency-control method.
#[derive(Debug, Clone)]
pub struct MethodStats {
    /// Committed transactions.
    pub committed: Counter,
    /// Transaction restarts caused by T/O rejections.
    pub rejections: Counter,
    /// Transaction restarts caused by deadlock victim selection.
    pub deadlock_aborts: Counter,
    /// PA backoff rounds performed.
    pub backoff_rounds: Counter,
    /// System time (submission to execution) of committed transactions, in
    /// seconds.
    pub system_time: Histogram,
    /// Lock-hold time (grant to release) of requests whose transaction
    /// committed, in seconds.
    pub lock_time_ok: RunningStat,
    /// Lock-hold time of requests whose transaction was aborted, in seconds.
    pub lock_time_aborted: RunningStat,
    /// Per-request acceptance outcomes, split by access mode: `(accepted,
    /// rejected-or-backed-off)` counts for reads and writes. For T/O the
    /// second component counts rejections; for PA it counts backoffs.
    pub read_requests: (u64, u64),
    /// See [`MethodStats::read_requests`].
    pub write_requests: (u64, u64),
}

impl Default for MethodStats {
    fn default() -> Self {
        MethodStats {
            committed: Counter::new(),
            rejections: Counter::new(),
            deadlock_aborts: Counter::new(),
            backoff_rounds: Counter::new(),
            // 10 ms buckets, up to 20 s of system time before overflow.
            system_time: Histogram::new(0.010, 2000),
            lock_time_ok: RunningStat::new(),
            lock_time_aborted: RunningStat::new(),
            read_requests: (0, 0),
            write_requests: (0, 0),
        }
    }
}

impl MethodStats {
    /// Mean system time in seconds (the paper's `S`) for this method.
    pub fn mean_system_time(&self) -> f64 {
        self.system_time.mean()
    }

    /// Total restarts (rejections plus deadlock aborts).
    pub fn restarts(&self) -> u64 {
        self.rejections.get() + self.deadlock_aborts.get()
    }

    /// Probability that a read request is rejected (T/O) or backed off (PA).
    pub fn read_denial_prob(&self) -> f64 {
        ratio(
            self.read_requests.1,
            self.read_requests.0 + self.read_requests.1,
        )
    }

    /// Probability that a write request is rejected (T/O) or backed off (PA).
    pub fn write_denial_prob(&self) -> f64 {
        ratio(
            self.write_requests.1,
            self.write_requests.0 + self.write_requests.1,
        )
    }

    /// Probability that a transaction incarnation aborts due to deadlock.
    pub fn deadlock_abort_prob(&self) -> f64 {
        let attempts = self.committed.get() + self.restarts();
        ratio(self.deadlock_aborts.get(), attempts)
    }

    /// Fold another method's statistics into this one (used to combine
    /// per-thread metric stripes into one view).
    pub fn merge_from(&mut self, other: &MethodStats) {
        self.committed.add(other.committed.get());
        self.rejections.add(other.rejections.get());
        self.deadlock_aborts.add(other.deadlock_aborts.get());
        self.backoff_rounds.add(other.backoff_rounds.get());
        self.system_time.merge(&other.system_time);
        self.lock_time_ok.merge(&other.lock_time_ok);
        self.lock_time_aborted.merge(&other.lock_time_aborted);
        self.read_requests.0 += other.read_requests.0;
        self.read_requests.1 += other.read_requests.1;
        self.write_requests.0 += other.write_requests.0;
        self.write_requests.1 += other.write_requests.1;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// All metrics of one simulation run.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    per_method: BTreeMap<CcMethod, MethodStats>,
    /// Read locks granted per physical item.
    read_grants: BTreeMap<PhysicalItemId, u64>,
    /// Write locks granted per physical item.
    write_grants: BTreeMap<PhysicalItemId, u64>,
    /// Committed transactions across all methods.
    pub total_committed: Counter,
    /// Transactions observed blocked (waiting for at least one grant) when a
    /// deadlock scan ran; a proxy for the paper's "transactions blocked by
    /// deadlocked transactions".
    pub blocked_observations: Counter,
    /// Overall system-time statistics in seconds.
    pub overall_system_time: RunningStat,
    start: SimTime,
    end: SimTime,
}

impl Default for SimMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMetrics {
    /// Create an empty metrics collection.
    pub fn new() -> Self {
        SimMetrics {
            per_method: CcMethod::ALL
                .iter()
                .map(|&m| (m, MethodStats::default()))
                .collect(),
            read_grants: BTreeMap::new(),
            write_grants: BTreeMap::new(),
            total_committed: Counter::new(),
            blocked_observations: Counter::new(),
            overall_system_time: RunningStat::new(),
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        }
    }

    /// Record the simulated time span covered by the run (used to turn counts
    /// into rates).
    pub fn set_time_span(&mut self, start: SimTime, end: SimTime) {
        self.start = start;
        self.end = end.max(start);
    }

    /// The simulated wall-clock length of the run in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }

    /// The statistics of one method.
    pub fn method(&self, m: CcMethod) -> &MethodStats {
        &self.per_method[&m]
    }

    /// Mutable access to the statistics of one method.
    pub fn method_mut(&mut self, m: CcMethod) -> &mut MethodStats {
        self.per_method.get_mut(&m).expect("all methods present")
    }

    /// Record a committed transaction and its system time.
    pub fn record_commit(&mut self, method: CcMethod, system_time: Duration) {
        let secs = system_time.as_secs_f64();
        self.method_mut(method).committed.incr();
        self.method_mut(method).system_time.record(secs);
        self.total_committed.incr();
        self.overall_system_time.record(secs);
    }

    /// Record a restart of a transaction incarnation.
    pub fn record_restart(&mut self, method: CcMethod, outcome: TxnOutcome) {
        match outcome {
            TxnOutcome::RejectedRestart => self.method_mut(method).rejections.incr(),
            TxnOutcome::DeadlockRestart => self.method_mut(method).deadlock_aborts.incr(),
            TxnOutcome::Committed => {}
        }
    }

    /// Record a PA backoff round (one per transaction incarnation that had to
    /// back off its timestamp).
    pub fn record_backoff_round(&mut self, method: CcMethod) {
        self.method_mut(method).backoff_rounds.incr();
    }

    /// Record that a lock was granted on an item (feeds the per-queue
    /// throughputs λr(j), λw(j) of the STL model).
    pub fn record_grant(&mut self, item: PhysicalItemId, mode: AccessMode) {
        let map = match mode {
            AccessMode::Read => &mut self.read_grants,
            AccessMode::Write => &mut self.write_grants,
        };
        *map.entry(item).or_insert(0) += 1;
    }

    /// Record the hold time of one lock (grant to release/demote), noting
    /// whether the owning transaction incarnation was aborted.
    pub fn record_lock_hold(&mut self, method: CcMethod, held: Duration, aborted: bool) {
        let stats = self.method_mut(method);
        if aborted {
            stats.lock_time_aborted.record(held.as_secs_f64());
        } else {
            stats.lock_time_ok.record(held.as_secs_f64());
        }
    }

    /// Record the acceptance outcome of one request: `denied` is a T/O
    /// rejection or PA backoff.
    pub fn record_request_outcome(&mut self, method: CcMethod, mode: AccessMode, denied: bool) {
        let stats = self.method_mut(method);
        let slot = match mode {
            AccessMode::Read => &mut stats.read_requests,
            AccessMode::Write => &mut stats.write_requests,
        };
        if denied {
            slot.1 += 1;
        } else {
            slot.0 += 1;
        }
    }

    /// Record that a transaction was observed blocked during a deadlock scan.
    pub fn record_blocked_observation(&mut self) {
        self.blocked_observations.incr();
    }

    /// Fold another collection into this one. Counts, histograms and
    /// running statistics combine exactly (the merged result equals what
    /// sequential recording of both event streams would have produced);
    /// the receiver's time span is kept, so set it before deriving rates.
    ///
    /// This is the epoch-boundary half of commit-path-free metrics: client
    /// threads record into private stripes, and only the selector's re-fit
    /// (or a final report) pays for merging them.
    pub fn merge_from(&mut self, other: &SimMetrics) {
        for (&method, stats) in &other.per_method {
            self.method_mut(method).merge_from(stats);
        }
        for (&item, &count) in &other.read_grants {
            *self.read_grants.entry(item).or_insert(0) += count;
        }
        for (&item, &count) in &other.write_grants {
            *self.write_grants.entry(item).or_insert(0) += count;
        }
        self.total_committed.add(other.total_committed.get());
        self.blocked_observations
            .add(other.blocked_observations.get());
        self.overall_system_time.merge(&other.overall_system_time);
    }

    /// Read-lock throughput of one item, in grants per simulated second
    /// (the paper's λr(j)).
    pub fn read_throughput(&self, item: PhysicalItemId) -> f64 {
        rate(
            self.read_grants.get(&item).copied().unwrap_or(0),
            self.elapsed_secs(),
        )
    }

    /// Write-lock throughput of one item (λw(j)).
    pub fn write_throughput(&self, item: PhysicalItemId) -> f64 {
        rate(
            self.write_grants.get(&item).copied().unwrap_or(0),
            self.elapsed_secs(),
        )
    }

    /// The measured `(λ_r(j), λ_w(j))` of every item that granted at least
    /// one lock, in grants per second. This is the per-item rate table an
    /// epoch snapshot freezes so cached selections stay a pure function of
    /// the transaction's access sets; the values equal what
    /// [`SimMetrics::read_throughput`] / [`SimMetrics::write_throughput`]
    /// return for the same item at the same instant.
    pub fn item_rates(&self) -> BTreeMap<PhysicalItemId, (f64, f64)> {
        let elapsed = self.elapsed_secs();
        let mut rates: BTreeMap<PhysicalItemId, (f64, f64)> = BTreeMap::new();
        for (&item, &count) in &self.read_grants {
            rates.entry(item).or_default().0 = rate(count, elapsed);
        }
        for (&item, &count) in &self.write_grants {
            rates.entry(item).or_default().1 = rate(count, elapsed);
        }
        rates
    }

    /// Average read-lock throughput over all items that granted at least one
    /// lock (the paper's λ̄r).
    pub fn avg_read_throughput(&self) -> f64 {
        avg_rate(&self.read_grants, self.elapsed_secs())
    }

    /// Average write-lock throughput over all items (λ̄w).
    pub fn avg_write_throughput(&self) -> f64 {
        avg_rate(&self.write_grants, self.elapsed_secs())
    }

    /// Total system throughput λA: the sum of all per-item read and write
    /// throughputs.
    pub fn system_throughput(&self) -> f64 {
        let elapsed = self.elapsed_secs();
        let total: u64 =
            self.read_grants.values().sum::<u64>() + self.write_grants.values().sum::<u64>();
        rate(total, elapsed)
    }

    /// Fraction of granted locks that were read locks (the paper's Q_r).
    pub fn read_fraction(&self) -> f64 {
        let r: u64 = self.read_grants.values().sum();
        let w: u64 = self.write_grants.values().sum();
        ratio(r, r + w)
    }

    /// Committed transactions per simulated second.
    pub fn commit_throughput(&self) -> f64 {
        rate(self.total_committed.get(), self.elapsed_secs())
    }

    /// Mean system time over all committed transactions, in seconds (the
    /// paper's `S`).
    pub fn mean_system_time(&self) -> f64 {
        self.overall_system_time.mean()
    }
}

fn rate(count: u64, elapsed_secs: f64) -> f64 {
    if elapsed_secs <= 0.0 {
        0.0
    } else {
        count as f64 / elapsed_secs
    }
}

fn avg_rate(map: &BTreeMap<PhysicalItemId, u64>, elapsed_secs: f64) -> f64 {
    if map.is_empty() {
        return 0.0;
    }
    let total: u64 = map.values().sum();
    rate(total, elapsed_secs) / map.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{LogicalItemId, SiteId};

    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    fn m() -> SimMetrics {
        let mut m = SimMetrics::new();
        m.set_time_span(SimTime::ZERO, SimTime::from_secs(10));
        m
    }

    #[test]
    fn commit_updates_method_and_overall() {
        let mut metrics = m();
        metrics.record_commit(CcMethod::TwoPhaseLocking, Duration::from_millis(50));
        metrics.record_commit(CcMethod::TwoPhaseLocking, Duration::from_millis(150));
        metrics.record_commit(CcMethod::TimestampOrdering, Duration::from_millis(100));
        assert_eq!(metrics.method(CcMethod::TwoPhaseLocking).committed.get(), 2);
        assert_eq!(metrics.total_committed.get(), 3);
        assert!((metrics.method(CcMethod::TwoPhaseLocking).mean_system_time() - 0.1).abs() < 0.01);
        assert!((metrics.mean_system_time() - 0.1).abs() < 0.01);
        assert!((metrics.commit_throughput() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn restart_counters_split_by_cause() {
        let mut metrics = m();
        metrics.record_restart(CcMethod::TimestampOrdering, TxnOutcome::RejectedRestart);
        metrics.record_restart(CcMethod::TwoPhaseLocking, TxnOutcome::DeadlockRestart);
        metrics.record_restart(CcMethod::TwoPhaseLocking, TxnOutcome::Committed);
        assert_eq!(
            metrics.method(CcMethod::TimestampOrdering).rejections.get(),
            1
        );
        assert_eq!(
            metrics
                .method(CcMethod::TwoPhaseLocking)
                .deadlock_aborts
                .get(),
            1
        );
        assert_eq!(metrics.method(CcMethod::TwoPhaseLocking).restarts(), 1);
    }

    #[test]
    fn throughputs_are_rates_over_elapsed_time() {
        let mut metrics = m();
        for _ in 0..20 {
            metrics.record_grant(pi(1, 0), AccessMode::Read);
        }
        for _ in 0..10 {
            metrics.record_grant(pi(1, 0), AccessMode::Write);
            metrics.record_grant(pi(2, 0), AccessMode::Write);
        }
        assert!((metrics.read_throughput(pi(1, 0)) - 2.0).abs() < 1e-9);
        assert!((metrics.write_throughput(pi(1, 0)) - 1.0).abs() < 1e-9);
        assert_eq!(metrics.read_throughput(pi(9, 9)), 0.0);
        assert!((metrics.system_throughput() - 4.0).abs() < 1e-9);
        assert!((metrics.avg_write_throughput() - 1.0).abs() < 1e-9);
        assert!((metrics.read_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn request_outcome_probabilities() {
        let mut metrics = m();
        for _ in 0..8 {
            metrics.record_request_outcome(CcMethod::TimestampOrdering, AccessMode::Read, false);
        }
        for _ in 0..2 {
            metrics.record_request_outcome(CcMethod::TimestampOrdering, AccessMode::Read, true);
        }
        metrics.record_request_outcome(CcMethod::TimestampOrdering, AccessMode::Write, true);
        let stats = metrics.method(CcMethod::TimestampOrdering);
        assert!((stats.read_denial_prob() - 0.2).abs() < 1e-9);
        assert!((stats.write_denial_prob() - 1.0).abs() < 1e-9);
        assert_eq!(
            metrics
                .method(CcMethod::PrecedenceAgreement)
                .read_denial_prob(),
            0.0
        );
    }

    #[test]
    fn lock_hold_split_by_abort() {
        let mut metrics = m();
        metrics.record_lock_hold(
            CcMethod::PrecedenceAgreement,
            Duration::from_millis(10),
            false,
        );
        metrics.record_lock_hold(
            CcMethod::PrecedenceAgreement,
            Duration::from_millis(30),
            false,
        );
        metrics.record_lock_hold(
            CcMethod::PrecedenceAgreement,
            Duration::from_millis(100),
            true,
        );
        let stats = metrics.method(CcMethod::PrecedenceAgreement);
        assert!((stats.lock_time_ok.mean() - 0.02).abs() < 1e-9);
        assert!((stats.lock_time_aborted.mean() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn deadlock_abort_probability_uses_attempts() {
        let mut metrics = m();
        metrics.record_commit(CcMethod::TwoPhaseLocking, Duration::from_millis(10));
        metrics.record_commit(CcMethod::TwoPhaseLocking, Duration::from_millis(10));
        metrics.record_commit(CcMethod::TwoPhaseLocking, Duration::from_millis(10));
        metrics.record_restart(CcMethod::TwoPhaseLocking, TxnOutcome::DeadlockRestart);
        let p = metrics
            .method(CcMethod::TwoPhaseLocking)
            .deadlock_abort_prob();
        assert!((p - 0.25).abs() < 1e-9);
    }

    #[test]
    fn merge_from_matches_sequential_recording() {
        // The same event stream recorded once sequentially and once split
        // over two collections must produce identical aggregates.
        let mut all = m();
        let mut a = SimMetrics::new();
        let mut b = SimMetrics::new();
        for i in 0..120u64 {
            let target = if i % 3 == 0 { &mut a } else { &mut b };
            let method = CcMethod::ALL[(i % 3) as usize];
            let ms = 10 + (i % 7) * 13;
            all.record_commit(method, Duration::from_millis(ms));
            target.record_commit(method, Duration::from_millis(ms));
            all.record_grant(pi(i % 5, 0), AccessMode::Read);
            target.record_grant(pi(i % 5, 0), AccessMode::Read);
            if i % 4 == 0 {
                all.record_grant(pi(i % 5, 0), AccessMode::Write);
                target.record_grant(pi(i % 5, 0), AccessMode::Write);
                all.record_request_outcome(method, AccessMode::Write, i % 8 == 0);
                target.record_request_outcome(method, AccessMode::Write, i % 8 == 0);
                all.record_restart(method, TxnOutcome::RejectedRestart);
                target.record_restart(method, TxnOutcome::RejectedRestart);
                all.record_lock_hold(method, Duration::from_millis(ms), i % 8 == 0);
                target.record_lock_hold(method, Duration::from_millis(ms), i % 8 == 0);
            }
        }
        let mut merged = SimMetrics::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        merged.set_time_span(SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(merged.total_committed.get(), all.total_committed.get());
        assert!((merged.mean_system_time() - all.mean_system_time()).abs() < 1e-12);
        assert!((merged.system_throughput() - all.system_throughput()).abs() < 1e-9);
        assert!((merged.read_fraction() - all.read_fraction()).abs() < 1e-12);
        assert_eq!(merged.item_rates(), all.item_rates());
        for &method in &CcMethod::ALL {
            let (x, y) = (merged.method(method), all.method(method));
            assert_eq!(x.committed.get(), y.committed.get());
            assert_eq!(x.restarts(), y.restarts());
            assert_eq!(x.read_requests, y.read_requests);
            assert_eq!(x.write_requests, y.write_requests);
            assert!((x.mean_system_time() - y.mean_system_time()).abs() < 1e-12);
            assert!((x.lock_time_ok.mean() - y.lock_time_ok.mean()).abs() < 1e-12);
            assert!((x.deadlock_abort_prob() - y.deadlock_abort_prob()).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_elapsed_time_gives_zero_rates() {
        let mut metrics = SimMetrics::new();
        metrics.record_grant(pi(1, 0), AccessMode::Read);
        assert_eq!(metrics.read_throughput(pi(1, 0)), 0.0);
        assert_eq!(metrics.system_throughput(), 0.0);
        assert_eq!(metrics.commit_throughput(), 0.0);
    }

    #[test]
    fn backoff_and_blocked_counters() {
        let mut metrics = m();
        metrics.record_backoff_round(CcMethod::PrecedenceAgreement);
        metrics.record_backoff_round(CcMethod::PrecedenceAgreement);
        metrics.record_blocked_observation();
        assert_eq!(
            metrics
                .method(CcMethod::PrecedenceAgreement)
                .backoff_rounds
                .get(),
            2
        );
        assert_eq!(metrics.blocked_observations.get(), 1);
    }
}
