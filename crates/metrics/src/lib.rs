//! # metrics — measurement of the quantities the paper's evaluation uses
//!
//! Section 5 of the paper defines its performance measure as the average
//! transaction system time `S` and reasons about restart probabilities,
//! deadlock counts, blocking, lock-hold times and per-queue read/write
//! throughputs (the λ's of the STL model). This crate collects all of those,
//! broken down by concurrency-control method, and exposes the aggregates the
//! STL parameter estimator consumes.

pub mod collector;

pub use collector::{MethodStats, SimMetrics, TxnOutcome};

// The histogram machinery all latency distributions in this workspace use
// (fixed-width buckets with exact running moments, shape-checked `merge`).
// Re-exported so consumers of the evaluation quantities — the trace
// plane's per-phase breakdowns above all — name it through `metrics`.
pub use simkit::stats::{Histogram, RunningStat};
