//! E4 — communication cost: messages per committed transaction versus load.
//!
//! Paper (Section 1): "[PA] is free from deadlocks and restarts. However,
//! communication cost increases as the system load increases."

use bench::{base_config, run_protocols, table};
use sim::SimConfig;

fn main() {
    let lambdas = [25.0, 50.0, 100.0, 200.0, 300.0];
    let widths = [10usize, 12, 12, 12, 12];
    println!("E4: messages per committed transaction vs arrival rate");
    table::header(&["lambda", "2PL", "T/O", "PA", "dynamic"], &widths);
    for &lambda in &lambdas {
        let row = run_protocols(|| SimConfig {
            arrival_rate: lambda,
            ..base_config(44)
        });
        let m = row.messages_per_commit();
        table::row(
            &[
                format!("{lambda:.0}"),
                format!("{:.2}", m[0]),
                format!("{:.2}", m[1]),
                format!("{:.2}", m[2]),
                format!("{:.2}", m[3]),
            ],
            &widths,
        );
    }
}
