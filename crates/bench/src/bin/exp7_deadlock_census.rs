//! E7 — deadlock census under mixed workloads.
//!
//! Paper: Theorem 3 / Corollary 2 — in the unified system every deadlock
//! cycle contains at least one 2PL transaction; T/O and PA transactions never
//! deadlock (they are rejected or backed off instead). The experiment runs
//! increasingly 2PL-heavy mixes and reports, per method, how many
//! transactions were aborted as deadlock victims — which must be zero for
//! T/O and PA in every column.

use bench::{base_config, table};
use dbmodel::CcMethod;
use sim::{MethodPolicy, SimConfig, Simulation};

fn main() {
    let mixes = [
        ("no 2PL", 0.0, 0.5),
        ("1/3 each", 0.34, 0.33),
        ("2PL heavy", 0.7, 0.15),
        ("all 2PL", 1.0, 0.0),
    ];
    let widths = [12usize, 16, 16, 16, 14];
    println!("E7: deadlock-victim counts by method; lambda = 250/s, 2000 transactions");
    table::header(
        &[
            "mix",
            "2PL victims",
            "T/O victims",
            "PA victims",
            "restarts",
        ],
        &widths,
    );
    for &(label, p_2pl, p_to) in &mixes {
        let config = SimConfig {
            arrival_rate: 250.0,
            method_policy: MethodPolicy::Mix { p_2pl, p_to },
            ..base_config(77)
        };
        let report = Simulation::run(config);
        assert!(report.serializable().is_ok());
        let victims = |m: CcMethod| report.metrics.method(m).deadlock_aborts.get();
        assert_eq!(
            victims(CcMethod::TimestampOrdering),
            0,
            "T/O never deadlocks"
        );
        assert_eq!(
            victims(CcMethod::PrecedenceAgreement),
            0,
            "PA never deadlocks"
        );
        table::row(
            &[
                label.to_string(),
                format!("{}", victims(CcMethod::TwoPhaseLocking)),
                format!("{}", victims(CcMethod::TimestampOrdering)),
                format!("{}", victims(CcMethod::PrecedenceAgreement)),
                format!("{}", report.total_restarts()),
            ],
            &widths,
        );
    }
    println!();
    println!("(Corollary 2 holds: every deadlock victim column except 2PL is zero.)");
}
