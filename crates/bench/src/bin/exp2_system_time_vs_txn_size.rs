//! E2 — mean system time `S` versus transaction size `st`.
//!
//! Paper (Section 5): "T/O becomes worse than 2PL and PA as st increases.
//! Apparently, this is due to the significant increase of restart
//! probability."

use bench::{base_config, run_protocols, table};
use dbmodel::CcMethod;
use sim::SimConfig;

fn main() {
    let sizes = [1usize, 2, 4, 6, 8, 12];
    let widths = [8usize, 12, 12, 12, 12, 14];
    println!("E2: mean system time S (ms) vs transaction size st; lambda = 80/s, Qr = 0.6");
    table::header(
        &["st", "2PL", "T/O", "PA", "dynamic", "T/O restarts"],
        &widths,
    );
    for &size in &sizes {
        let row = run_protocols(|| SimConfig {
            txn_size: size,
            ..base_config(22)
        });
        let s = row.mean_system_time_ms();
        let to_restarts = row.reports[1]
            .metrics
            .method(CcMethod::TimestampOrdering)
            .restarts();
        table::row(
            &[
                format!("{size}"),
                format!("{:.2}", s[0]),
                format!("{:.2}", s[1]),
                format!("{:.2}", s[2]),
                format!("{:.2}", s[3]),
                format!("{to_restarts}"),
            ],
            &widths,
        );
    }
}
