//! E1 — mean transaction system time `S` versus arrival rate λ.
//!
//! Paper (Section 5): "2PL performs well when λ is low. When λ is high … S
//! goes up dramatically … For T/O, S grows steadily as λ increases. It
//! outperforms 2PL when λ is high. … PA … performs like 2PL when λ is low
//! and like T/O while λ is high. When λ is moderate, it outperforms both."

use bench::{base_config, run_protocols, table};
use sim::SimConfig;

fn main() {
    let lambdas = [10.0, 25.0, 50.0, 100.0, 200.0, 300.0];
    let widths = [10usize, 12, 12, 12, 12];
    println!("E1: mean system time S (ms) vs arrival rate (txn/s); txn size = 4, Qr = 0.6");
    table::header(&["lambda", "2PL", "T/O", "PA", "dynamic"], &widths);
    for &lambda in &lambdas {
        let row = run_protocols(|| SimConfig {
            arrival_rate: lambda,
            ..base_config(11)
        });
        let s = row.mean_system_time_ms();
        table::row(
            &[
                format!("{lambda:.0}"),
                format!("{:.2}", s[0]),
                format!("{:.2}", s[1]),
                format!("{:.2}", s[2]),
                format!("{:.2}", s[3]),
            ],
            &widths,
        );
    }
}
