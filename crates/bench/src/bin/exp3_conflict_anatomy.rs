//! E3 — the anatomy of conflicts as load grows: deadlock aborts and blocked
//! transactions (2PL), rejections (T/O), backoff rounds (PA).
//!
//! Paper (Section 5): "although the number of transactions directly involved
//! in deadlocks does not increase very much, S goes up dramatically since
//! more transactions are blocked by deadlocked transactions."

use bench::{base_config, table};
use dbmodel::CcMethod;
use sim::{MethodPolicy, SimConfig, Simulation};

fn run(policy: MethodPolicy, lambda: f64) -> sim::SimReport {
    let config = SimConfig {
        arrival_rate: lambda,
        method_policy: policy,
        ..base_config(33)
    };
    let report = Simulation::run(config);
    assert!(report.serializable().is_ok());
    report
}

fn main() {
    let lambdas = [25.0, 50.0, 100.0, 200.0, 300.0];
    let widths = [10usize, 14, 16, 14, 14];
    println!("E3: conflict anatomy vs arrival rate; 2000 transactions per cell");
    table::header(
        &[
            "lambda",
            "2PL deadlocks",
            "2PL blocked-obs",
            "T/O restarts",
            "PA backoffs",
        ],
        &widths,
    );
    for &lambda in &lambdas {
        let two_pl = run(MethodPolicy::Static(CcMethod::TwoPhaseLocking), lambda);
        let to = run(MethodPolicy::Static(CcMethod::TimestampOrdering), lambda);
        let pa = run(MethodPolicy::Static(CcMethod::PrecedenceAgreement), lambda);
        table::row(
            &[
                format!("{lambda:.0}"),
                format!("{}", two_pl.total_deadlocks()),
                format!("{}", two_pl.metrics.blocked_observations.get()),
                format!(
                    "{}",
                    to.metrics.method(CcMethod::TimestampOrdering).restarts()
                ),
                format!(
                    "{}",
                    pa.metrics
                        .method(CcMethod::PrecedenceAgreement)
                        .backoff_rounds
                        .get()
                ),
            ],
            &widths,
        );
    }
}
