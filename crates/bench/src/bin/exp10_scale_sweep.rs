//! E10 — reply-plane scale sweep: tens of thousands of concurrently open
//! registrations, Zipfian-skewed delivery, and mixed transaction shapes.
//!
//! PR 4's reply plane shipped with a fixed 4096-bucket packed index:
//! past ~4096 concurrently live transactions every further registration
//! fell onto a mutexed overflow map, quietly serialising the reply path
//! exactly when the system was busiest. PR 7 made the index a resizable
//! chain of tables; this experiment is the proof. It answers three
//! questions the earlier sweeps could not:
//!
//! 1. **Section A (transport)** — how does the raw mailbox registry
//!    behave as the *live* registration count ramps into the tens of
//!    thousands? Each cell holds `live` keys open simultaneously while
//!    churner threads cycle transient incarnations through the same
//!    index, then drives Zipfian-skewed deliver/receive traffic across
//!    the live set. The cell reports registrations/s on the ramp,
//!    skewed deliveries/s, and — the gate — how many registrations
//!    fell onto the overflow map (must be 0 below the growth ceiling).
//! 2. **Section B (runtime hold)** — can the full engine keep tens of
//!    thousands of transactions *open at once*? A cell begins `hold`
//!    write transactions on disjoint items and keeps every one open
//!    before aborting them all; with the old index anything past 4096
//!    degraded, now `mailbox_overflow_entries` must stay 0.
//! 3. **Section C (runtime mix)** — what does skew do to live commit
//!    throughput? Shapes from [`bench::workload`] (read-heavy / rmw /
//!    wide) crossed with uniform (`theta = 0`) and YCSB-hot
//!    (`theta = 0.99`) access, with the reply-plane health counters and
//!    the serializability oracle on every cell.
//! 4. **Section D (fast path, PR 8)** — what does the coordination-
//!    avoidance bypass buy on an increment-heavy mix? Clients interleave
//!    commutative two-item adds (4-in-5, classified confluent and routed
//!    around the queue managers) with coordinated read-modify-write
//!    transfers (1-in-5) on the same skewed items; each cell runs twice,
//!    bypass on and off, reporting applied/refused counts, the bypass
//!    commit rate and the speedup over the all-coordinated twin — every
//!    history still replayed through the serializability oracle.
//! 5. **Section E (snapshot reads, PR 10)** — what does the MVCC
//!    snapshot-read plane buy on a read-mostly contended mix? Clients
//!    interleave four-item read-only transactions (7-in-8, served from
//!    the version chains at the read watermark) with read-modify-write
//!    transfers (1-in-8) on the same skewed items across two shards;
//!    each cell runs twice, snapshot plane on and off, reporting
//!    served/refused counts, the snapshot serve rate and the speedup
//!    over the share-grant twin — histories oracle-certified.
//!
//! Run with: `cargo run --release -p bench --bin exp10_scale_sweep`
//!
//! Environment knobs (used by the CI smoke step):
//!
//! * `EXP10_SMOKE=1` — restrict each axis to its gate-relevant points.
//! * `EXP10_GATE=<live>` — fail (exit 1) unless a Section A cell and
//!   the Section B cell both held at least `<live>` concurrently open
//!   registrations with `mailbox_overflow_entries == 0` and no stale
//!   leak.
//! * `EXP10_TXNS=<n>` — Section C/D/E transactions per client (default
//!   150).
//! * `EXP10_FASTPATH_GATE=<rate>` — fail (exit 1) unless every Section D
//!   bypass cell committed at least `<rate>` (a fraction) of its
//!   transactions through the confluent fast path, with its history
//!   certified serializable.
//! * `EXP10_SNAPSHOT_GATE=<rate>` — fail (exit 1) unless every Section E
//!   snapshot cell served at least `<rate>` (a fraction) of its commits
//!   from the version chains, with its history certified serializable.
//!
//! Besides the tables, the sweep emits `BENCH_exp10.json` (into
//! `$BENCH_JSON_DIR`, default `.`): one row per cell tagged with its
//! `section`, plus the gate outcome in `meta`. See [`bench::traj`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{table, SkewedItems, Trajectory, TxnShape};
use dbmodel::{CcMethod, LogicalItemId};
use runtime::{CcPolicy, Database, RuntimeConfig, TxnSpec};
use simkit::dist::Zipfian;
use simkit::rng::SimRng;
use trace::json::Json;
use transport::mailbox::{Mailbox, MailboxOptions, MailboxRegistry};

/// Skewed deliver/receive operations per Section A cell.
const DELIVER_OPS: usize = 200_000;
/// Concurrent churner threads racing each Section A ramp.
const CHURNERS: u64 = 2;

fn txns_per_client() -> u64 {
    std::env::var("EXP10_TXNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150)
}

/// What one Section A (raw registry) cell measured.
struct TransportOutcome {
    live: usize,
    theta: f64,
    reg_per_sec: f64,
    deliver_per_sec: f64,
    index_capacity: usize,
    index_resizes: u64,
    overflow_entries: usize,
    stale_dropped: u64,
    full_dropped: u64,
    leaks: u64,
}

/// Ramp `live` keys to concurrently registered (each with its own slab
/// mailbox), race churners through the growing index, then drive
/// Zipfian-skewed deliver/receive traffic over the live set.
fn run_transport_cell(live: usize, theta: f64) -> TransportOutcome {
    let registry = MailboxRegistry::<u64>::with_options(MailboxOptions {
        index_capacity: 1024,
        mailbox_capacity: 8,
        max_clients: live + CHURNERS as usize + 8,
        ..MailboxOptions::default()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let leaks = Arc::new(AtomicU64::new(0));
    let mut outcome = None;

    std::thread::scope(|scope| {
        for t in 0..CHURNERS {
            let stop = Arc::clone(&stop);
            let leaks = Arc::clone(&leaks);
            let registry = registry.clone();
            scope.spawn(move || {
                let mut mailbox = registry.acquire().expect("churner mailbox");
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Transient keys live above the ramp's key range.
                    let key = (1 << 32) + t + n * CHURNERS;
                    n += 1;
                    registry.register(key, 0, &mut mailbox);
                    registry.try_deliver(key, key);
                    if let Some(payload) = mailbox.recv_timeout(key, Duration::from_millis(1)) {
                        if payload != key {
                            leaks.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    registry.deregister(key);
                }
            });
        }

        let ramp_begun = Instant::now();
        let mut held: Vec<(u64, Mailbox<u64>)> = Vec::with_capacity(live);
        for i in 0..live {
            let key = (i + 1) as u64;
            let mut mailbox = registry.acquire().expect("ramp mailbox");
            registry.register(key, 0, &mut mailbox);
            held.push((key, mailbox));
        }
        let ramp_secs = ramp_begun.elapsed().as_secs_f64();

        // Skewed delivery across the live set: rank 0 (the hottest key)
        // maps to the first-ramped key, so the hot head spans every
        // generation of the grown index chain.
        let zipf = Zipfian::new(live, theta);
        let mut rng = SimRng::new(0xE10 ^ live as u64);
        let deliver_begun = Instant::now();
        let mut local_leaks = 0u64;
        for _ in 0..DELIVER_OPS {
            let idx = zipf.sample_index(&mut rng);
            let (key, mailbox) = &mut held[idx];
            if registry.try_deliver(*key, *key) {
                if let Some(payload) = mailbox.recv_timeout(*key, Duration::from_millis(5)) {
                    if payload != *key {
                        local_leaks += 1;
                    }
                }
            }
        }
        let deliver_secs = deliver_begun.elapsed().as_secs_f64();

        let at_peak = TransportOutcome {
            live,
            theta,
            reg_per_sec: live as f64 / ramp_secs,
            deliver_per_sec: DELIVER_OPS as f64 / deliver_secs,
            index_capacity: registry.index_capacity(),
            index_resizes: registry.index_resizes(),
            overflow_entries: registry.overflow_entries(),
            stale_dropped: registry.stale_dropped(),
            full_dropped: registry.full_dropped(),
            leaks: local_leaks,
        };
        stop.store(true, Ordering::Relaxed);
        for (key, _) in &held {
            registry.deregister(*key);
        }
        outcome = Some(at_peak);
    });

    let mut outcome = outcome.expect("cell ran");
    outcome.leaks += leaks.load(Ordering::Relaxed);
    assert_eq!(registry.len(), 0, "all registrations torn down");
    outcome
}

/// What the Section B (runtime open-hold) cell measured.
struct HoldOutcome {
    hold: usize,
    begin_per_sec: f64,
    index_capacity: u64,
    index_resizes: u64,
    overflow_entries: u64,
    abort_secs: f64,
}

/// Begin `hold` write transactions on disjoint items and keep them all
/// open simultaneously — the engine-level version of Section A's ramp.
fn run_hold_cell(hold: usize) -> HoldOutcome {
    let db = Database::open(RuntimeConfig {
        num_shards: 4,
        num_items: hold as u64 + 8,
        policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
        reply_mailbox_capacity: 8,
        reply_max_clients: hold + 64,
        ..RuntimeConfig::default()
    })
    .expect("valid config");

    let begun = Instant::now();
    let mut open = Vec::with_capacity(hold);
    for i in 0..hold {
        open.push(
            db.begin(&TxnSpec::new().write(LogicalItemId(i as u64)))
                .expect("disjoint begin succeeds"),
        );
    }
    let ramp_secs = begun.elapsed().as_secs_f64();
    let stats = db.stats();
    let abort_begun = Instant::now();
    for txn in open {
        txn.abort();
    }
    let abort_secs = abort_begun.elapsed().as_secs_f64();
    db.shutdown();
    HoldOutcome {
        hold,
        begin_per_sec: hold as f64 / ramp_secs,
        index_capacity: stats.mailbox_index_capacity,
        index_resizes: stats.mailbox_index_resizes,
        overflow_entries: stats.mailbox_overflow_entries,
        abort_secs,
    }
}

/// What one Section C (skewed mix) cell measured.
struct MixOutcome {
    shape: TxnShape,
    theta: f64,
    committed: u64,
    failed: u64,
    txn_per_sec: f64,
    restarts: u64,
    stale_replies: u64,
    overflow_entries: u64,
    full_drops: u64,
    serializable: bool,
}

const MIX_CLIENTS: u64 = 8;
const MIX_SHARDS: u32 = 4;
const MIX_ITEMS: u64 = 4096;

/// Section D runs over one shard: every increment is single-site and
/// therefore routable through the confluent bypass.
const FAST_SHARDS: u32 = 1;
const FAST_ITEMS: u64 = 1024;

/// Clients drive skew-shaped read-modify-write transactions; every cell
/// replays its log through the serializability oracle.
fn run_mix_cell(shape: TxnShape, theta: f64) -> MixOutcome {
    let db = Database::open(RuntimeConfig {
        num_shards: MIX_SHARDS,
        num_items: MIX_ITEMS,
        initial_value: 1_000,
        policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
        ..RuntimeConfig::default()
    })
    .expect("valid config");

    let begun = Instant::now();
    let per_client = txns_per_client();
    let workers: Vec<_> = (0..MIX_CLIENTS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let skew = SkewedItems::new(MIX_ITEMS, theta);
                let mut rng = SimRng::new(0xE10F00 + t);
                let mut failed = 0u64;
                for _ in 0..per_client {
                    let (spec, writes) = skew.spec(&mut rng, shape);
                    // Under theta=0.99 the hot head genuinely contends;
                    // a transaction that exhausts its restart budget is
                    // counted, not fatal.
                    if db
                        .run_transaction(&spec, |seen| {
                            writes.iter().map(|&w| (w, seen[&w] + 1)).collect()
                        })
                        .is_err()
                    {
                        failed += 1;
                    }
                }
                failed
            })
        })
        .collect();
    let failed: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("mix worker panicked"))
        .sum();
    let elapsed = begun.elapsed().as_secs_f64();

    let stats = db.stats();
    let report = db.shutdown().expect("shutdown");
    MixOutcome {
        shape,
        theta,
        committed: stats.committed,
        failed,
        txn_per_sec: stats.committed as f64 / elapsed,
        restarts: stats.restarts(),
        stale_replies: stats.stale_reply_events,
        overflow_entries: stats.mailbox_overflow_entries,
        full_drops: stats.mailbox_full_drops,
        serializable: report.serializable().is_ok(),
    }
}

/// What one Section E (snapshot-read mix, PR 10) cell measured.
struct SnapOutcome {
    theta: f64,
    snapshot: bool,
    committed: u64,
    failed: u64,
    txn_per_sec: f64,
    served: u64,
    refused: u64,
    /// Fraction of all commits served from the version chains.
    rate: f64,
    serializable: bool,
}

/// Section E runs over two shards: snapshot reads cut one consistent
/// watermark across both, so the cell exercises the cross-shard path.
const SNAP_SHARDS: u32 = 2;
const SNAP_ITEMS: u64 = 1024;

/// Clients drive a read-mostly contended mix (7-in-8 four-item read-only
/// transactions, 1-in-8 read-modify-write transfers on the same Zipfian
/// head) so snapshot reads race real writer traffic on the hot items.
/// With `snapshot` off the identical workload acquires share grants —
/// the baseline for the speedup column. The confluence fast path is off
/// in both modes so the comparison isolates the read plane.
fn run_snapshot_cell(theta: f64, snapshot: bool) -> SnapOutcome {
    let db = Database::open(RuntimeConfig {
        num_shards: SNAP_SHARDS,
        num_items: SNAP_ITEMS,
        initial_value: 1_000,
        policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
        confluence_fastpath: false,
        snapshot_reads: snapshot,
        ..RuntimeConfig::default()
    })
    .expect("valid config");

    let begun = Instant::now();
    let per_client = txns_per_client();
    let workers: Vec<_> = (0..MIX_CLIENTS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let skew = SkewedItems::new(SNAP_ITEMS, theta);
                let mut rng = SimRng::new(0xE105AA9 + t);
                let mut failed = 0u64;
                for i in 0..per_client {
                    if i % 8 == 7 {
                        let (spec, writes) = skew.spec(&mut rng, TxnShape::Rmw);
                        if db
                            .run_transaction(&spec, |seen| {
                                writes.iter().map(|&w| (w, seen[&w] + 1)).collect()
                            })
                            .is_err()
                        {
                            failed += 1;
                        }
                    } else {
                        let mut spec = TxnSpec::new();
                        for item in skew.pick_distinct(&mut rng, 4) {
                            spec = spec.read(item);
                        }
                        if db.execute(&spec).is_err() {
                            failed += 1;
                        }
                    }
                }
                failed
            })
        })
        .collect();
    let failed: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("snapshot worker panicked"))
        .sum();
    let elapsed = begun.elapsed().as_secs_f64();

    let stats = db.stats();
    let report = db.shutdown().expect("shutdown");
    SnapOutcome {
        theta,
        snapshot,
        committed: stats.committed,
        failed,
        txn_per_sec: stats.committed as f64 / elapsed,
        served: stats.snapshot_reads,
        refused: stats.snapshot_refused,
        rate: stats.snapshot_reads as f64 / stats.committed.max(1) as f64,
        serializable: report.serializable().is_ok(),
    }
}

/// What one Section D (confluent fast-path mix) cell measured.
struct FastOutcome {
    theta: f64,
    fastpath: bool,
    committed: u64,
    failed: u64,
    txn_per_sec: f64,
    applied: u64,
    refused: u64,
    /// Fraction of all commits that went through the bypass.
    rate: f64,
    serializable: bool,
}

/// Clients drive an increment-heavy mix (4-in-5 two-item commutative
/// adds, 1-in-5 coordinated read-modify-write transfers) so the bypass
/// stream and real lock traffic interleave on the same hot items. With
/// `fastpath` off the identical workload runs all-coordinated — the
/// baseline for the speedup column.
fn run_fastpath_cell(theta: f64, fastpath: bool) -> FastOutcome {
    let db = Database::open(RuntimeConfig {
        num_shards: FAST_SHARDS,
        num_items: FAST_ITEMS,
        initial_value: 1_000,
        policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
        confluence_fastpath: fastpath,
        ..RuntimeConfig::default()
    })
    .expect("valid config");

    let begun = Instant::now();
    let per_client = txns_per_client();
    let workers: Vec<_> = (0..MIX_CLIENTS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let skew = SkewedItems::new(FAST_ITEMS, theta);
                let mut rng = SimRng::new(0xE10FA57 + t);
                let mut failed = 0u64;
                for i in 0..per_client {
                    if i % 5 == 4 {
                        let (spec, writes) = skew.spec(&mut rng, TxnShape::Rmw);
                        if db
                            .run_transaction(&spec, |seen| {
                                writes.iter().map(|&w| (w, seen[&w] + 1)).collect()
                            })
                            .is_err()
                        {
                            failed += 1;
                        }
                    } else {
                        let picked = skew.pick_distinct(&mut rng, 2);
                        let spec = TxnSpec::new().add(picked[0], 1).add(picked[1], 1);
                        if db.execute(&spec).is_err() {
                            failed += 1;
                        }
                    }
                }
                failed
            })
        })
        .collect();
    let failed: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("fastpath worker panicked"))
        .sum();
    let elapsed = begun.elapsed().as_secs_f64();

    let stats = db.stats();
    let report = db.shutdown().expect("shutdown");
    FastOutcome {
        theta,
        fastpath,
        committed: stats.committed,
        failed,
        txn_per_sec: stats.committed as f64 / elapsed,
        applied: stats.fastpath_applied,
        refused: stats.fastpath_refused,
        rate: stats.fastpath_applied as f64 / stats.committed.max(1) as f64,
        serializable: report.serializable().is_ok(),
    }
}

fn main() {
    let smoke = std::env::var("EXP10_SMOKE").is_ok_and(|v| v == "1");
    let gate: Option<usize> = std::env::var("EXP10_GATE")
        .ok()
        .and_then(|s| s.parse().ok());

    let mut traj = Trajectory::new("exp10");
    traj.meta("smoke", Json::Bool(smoke));
    traj.meta("deliver_ops", Json::Num(DELIVER_OPS as f64));
    traj.meta("txns_per_client", Json::Num(txns_per_client() as f64));

    // --- Section A: raw registry scale ---------------------------------
    println!("E10.A: mailbox registry scale — live registrations x delivery skew");
    println!("       (index starts at 1024 buckets; churners race every ramp)\n");
    let widths_a = [7, 6, 8, 10, 9, 8, 9, 7, 7, 6];
    table::header(
        &[
            "live",
            "theta",
            "reg/s",
            "deliver/s",
            "idx cap",
            "resizes",
            "overflow",
            "stale",
            "drops",
            "leaks",
        ],
        &widths_a,
    );
    let live_axis: &[usize] = if smoke {
        &[4096, 32_768]
    } else {
        &[4096, 16_384, 32_768, 65_536]
    };
    let theta_axis: &[f64] = if smoke { &[0.99] } else { &[0.0, 0.99] };
    let mut transport_gate_ok = false;
    for &live in live_axis {
        for &theta in theta_axis {
            let o = run_transport_cell(live, theta);
            table::row(
                &[
                    o.live.to_string(),
                    format!("{:.2}", o.theta),
                    format!("{:.0}", o.reg_per_sec),
                    format!("{:.0}", o.deliver_per_sec),
                    o.index_capacity.to_string(),
                    o.index_resizes.to_string(),
                    o.overflow_entries.to_string(),
                    o.stale_dropped.to_string(),
                    o.full_dropped.to_string(),
                    o.leaks.to_string(),
                ],
                &widths_a,
            );
            if let Some(required) = gate {
                if o.live >= required && o.overflow_entries == 0 && o.leaks == 0 {
                    transport_gate_ok = true;
                }
            }
            traj.row(vec![
                ("section", Json::str("transport")),
                ("live", Json::Num(o.live as f64)),
                ("theta", Json::Num(o.theta)),
                ("reg_per_sec", Json::Num(o.reg_per_sec)),
                ("deliver_per_sec", Json::Num(o.deliver_per_sec)),
                ("index_capacity", Json::Num(o.index_capacity as f64)),
                ("index_resizes", Json::Num(o.index_resizes as f64)),
                (
                    "mailbox_overflow_entries",
                    Json::Num(o.overflow_entries as f64),
                ),
                ("stale_dropped", Json::Num(o.stale_dropped as f64)),
                ("full_dropped", Json::Num(o.full_dropped as f64)),
                ("leaks", Json::Num(o.leaks as f64)),
            ]);
        }
    }

    // --- Section B: engine open-hold -----------------------------------
    println!("\nE10.B: engine open-hold — transactions held open simultaneously\n");
    let widths_b = [7, 9, 9, 8, 9, 8];
    table::header(
        &[
            "hold", "begin/s", "idx cap", "resizes", "overflow", "abort s",
        ],
        &widths_b,
    );
    let hold_axis: &[usize] = if smoke { &[32_768] } else { &[8192, 32_768] };
    let mut hold_gate_ok = false;
    for &hold in hold_axis {
        let o = run_hold_cell(hold);
        table::row(
            &[
                o.hold.to_string(),
                format!("{:.0}", o.begin_per_sec),
                o.index_capacity.to_string(),
                o.index_resizes.to_string(),
                o.overflow_entries.to_string(),
                format!("{:.2}", o.abort_secs),
            ],
            &widths_b,
        );
        if let Some(required) = gate {
            if o.hold >= required && o.overflow_entries == 0 {
                hold_gate_ok = true;
            }
        }
        traj.row(vec![
            ("section", Json::str("hold")),
            ("hold", Json::Num(o.hold as f64)),
            ("begin_per_sec", Json::Num(o.begin_per_sec)),
            ("index_capacity", Json::Num(o.index_capacity as f64)),
            ("index_resizes", Json::Num(o.index_resizes as f64)),
            (
                "mailbox_overflow_entries",
                Json::Num(o.overflow_entries as f64),
            ),
            ("abort_secs", Json::Num(o.abort_secs)),
        ]);
    }

    // --- Section C: skewed mixed shapes --------------------------------
    println!(
        "\nE10.C: live commit throughput — shape x skew \
         ({MIX_CLIENTS} clients x {MIX_SHARDS} shards, {} txns/client, {MIX_ITEMS} items)\n",
        txns_per_client()
    );
    let widths_c = [11, 6, 10, 7, 10, 9, 7, 9, 6, 5];
    table::header(
        &[
            "shape",
            "theta",
            "committed",
            "failed",
            "txn/s",
            "restarts",
            "stale",
            "overflow",
            "drops",
            "ser.",
        ],
        &widths_c,
    );
    let shapes = [TxnShape::ReadHeavy, TxnShape::Rmw, TxnShape::Wide];
    let mix_thetas: &[f64] = if smoke { &[0.99] } else { &[0.0, 0.99] };
    for &shape in &shapes {
        for &theta in mix_thetas {
            let o = run_mix_cell(shape, theta);
            table::row(
                &[
                    o.shape.label().to_string(),
                    format!("{:.2}", o.theta),
                    o.committed.to_string(),
                    o.failed.to_string(),
                    format!("{:.0}", o.txn_per_sec),
                    o.restarts.to_string(),
                    o.stale_replies.to_string(),
                    o.overflow_entries.to_string(),
                    o.full_drops.to_string(),
                    if o.serializable {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ],
                &widths_c,
            );
            assert!(
                o.serializable,
                "{} theta={theta}: execution log failed the oracle",
                shape.label()
            );
            traj.row(vec![
                ("section", Json::str("mix")),
                ("shape", Json::str(shape.label())),
                ("theta", Json::Num(theta)),
                ("committed", Json::Num(o.committed as f64)),
                ("failed", Json::Num(o.failed as f64)),
                ("txn_per_sec", Json::Num(o.txn_per_sec)),
                ("restarts", Json::Num(o.restarts as f64)),
                ("stale_reply_events", Json::Num(o.stale_replies as f64)),
                (
                    "mailbox_overflow_entries",
                    Json::Num(o.overflow_entries as f64),
                ),
                ("full_drops", Json::Num(o.full_drops as f64)),
                ("serializable", Json::Bool(o.serializable)),
            ]);
        }
    }

    // --- Section D: coordination-avoidance fast path --------------------
    println!(
        "\nE10.D: confluent fast path — increment-heavy mix, bypass vs all-coordinated \
         ({MIX_CLIENTS} clients x {FAST_SHARDS} shard, {} txns/client, {FAST_ITEMS} items)\n",
        txns_per_client()
    );
    let widths_d = [12, 6, 10, 7, 10, 9, 8, 6, 5];
    table::header(
        &[
            "mode",
            "theta",
            "committed",
            "failed",
            "txn/s",
            "applied",
            "refused",
            "rate",
            "ser.",
        ],
        &widths_d,
    );
    let fastpath_gate: Option<f64> = std::env::var("EXP10_FASTPATH_GATE")
        .ok()
        .and_then(|s| s.parse().ok());
    let fast_thetas: &[f64] = if smoke { &[0.99] } else { &[0.0, 0.99] };
    let mut fastpath_gate_ok = fastpath_gate.is_some();
    for &theta in fast_thetas {
        let mut pair = Vec::with_capacity(2);
        for fastpath in [true, false] {
            let o = run_fastpath_cell(theta, fastpath);
            let mode = if o.fastpath {
                "fastpath"
            } else {
                "coordinated"
            };
            table::row(
                &[
                    mode.to_string(),
                    format!("{:.2}", o.theta),
                    o.committed.to_string(),
                    o.failed.to_string(),
                    format!("{:.0}", o.txn_per_sec),
                    o.applied.to_string(),
                    o.refused.to_string(),
                    format!("{:.2}", o.rate),
                    if o.serializable {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ],
                &widths_d,
            );
            assert!(
                o.serializable,
                "{mode} theta={theta}: execution log failed the oracle"
            );
            if let Some(required) = fastpath_gate {
                if o.fastpath && o.rate < required {
                    fastpath_gate_ok = false;
                }
            }
            traj.row(vec![
                ("section", Json::str("fastpath")),
                ("mode", Json::str(mode)),
                ("theta", Json::Num(o.theta)),
                ("committed", Json::Num(o.committed as f64)),
                ("failed", Json::Num(o.failed as f64)),
                ("txn_per_sec", Json::Num(o.txn_per_sec)),
                ("fastpath_applied", Json::Num(o.applied as f64)),
                ("fastpath_refused", Json::Num(o.refused as f64)),
                ("fastpath_rate", Json::Num(o.rate)),
                ("serializable", Json::Bool(o.serializable)),
            ]);
            pair.push(o);
        }
        let speedup = pair[0].txn_per_sec / pair[1].txn_per_sec;
        println!(
            "    -> theta {theta:.2}: bypass commit rate {:.2} of all commits, \
             {speedup:.2}x over all-coordinated",
            pair[0].rate
        );
        traj.meta(
            format!("fastpath_speedup_theta{theta:.2}"),
            Json::Num(speedup),
        );
    }

    // --- Section E: MVCC snapshot-read plane ----------------------------
    println!(
        "\nE10.E: snapshot reads — read-mostly contended mix, version chains vs share \
         grants ({MIX_CLIENTS} clients x {SNAP_SHARDS} shards, {} txns/client, \
         {SNAP_ITEMS} items)\n",
        txns_per_client()
    );
    let widths_e = [12, 6, 10, 7, 10, 9, 8, 6, 5];
    table::header(
        &[
            "mode",
            "theta",
            "committed",
            "failed",
            "txn/s",
            "served",
            "refused",
            "rate",
            "ser.",
        ],
        &widths_e,
    );
    let snapshot_gate: Option<f64> = std::env::var("EXP10_SNAPSHOT_GATE")
        .ok()
        .and_then(|s| s.parse().ok());
    let snap_thetas: &[f64] = if smoke { &[0.99] } else { &[0.0, 0.99] };
    let mut snapshot_gate_ok = snapshot_gate.is_some();
    for &theta in snap_thetas {
        let mut pair = Vec::with_capacity(2);
        for snapshot in [true, false] {
            let o = run_snapshot_cell(theta, snapshot);
            let mode = if o.snapshot {
                "snapshot"
            } else {
                "coordinated"
            };
            table::row(
                &[
                    mode.to_string(),
                    format!("{:.2}", o.theta),
                    o.committed.to_string(),
                    o.failed.to_string(),
                    format!("{:.0}", o.txn_per_sec),
                    o.served.to_string(),
                    o.refused.to_string(),
                    format!("{:.2}", o.rate),
                    if o.serializable {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ],
                &widths_e,
            );
            assert!(
                o.serializable,
                "{mode} theta={theta}: execution log failed the oracle"
            );
            if let Some(required) = snapshot_gate {
                if o.snapshot && o.rate < required {
                    snapshot_gate_ok = false;
                }
            }
            traj.row(vec![
                ("section", Json::str("snapshot")),
                ("mode", Json::str(mode)),
                ("theta", Json::Num(o.theta)),
                ("committed", Json::Num(o.committed as f64)),
                ("failed", Json::Num(o.failed as f64)),
                ("txn_per_sec", Json::Num(o.txn_per_sec)),
                ("snapshot_served", Json::Num(o.served as f64)),
                ("snapshot_refused", Json::Num(o.refused as f64)),
                ("snapshot_rate", Json::Num(o.rate)),
                ("serializable", Json::Bool(o.serializable)),
            ]);
            pair.push(o);
        }
        let speedup = pair[0].txn_per_sec / pair[1].txn_per_sec;
        println!(
            "    -> theta {theta:.2}: snapshot serve rate {:.2} of all commits, \
             {speedup:.2}x over all-coordinated",
            pair[0].rate
        );
        traj.meta(
            format!("snapshot_speedup_theta{theta:.2}"),
            Json::Num(speedup),
        );
    }

    if let Some(required) = gate {
        traj.meta("gate_live", Json::Num(required as f64));
        traj.meta("gate_passed", Json::Bool(transport_gate_ok && hold_gate_ok));
    }
    if let Some(required) = fastpath_gate {
        traj.meta("fastpath_gate_rate", Json::Num(required));
        traj.meta("fastpath_gate_passed", Json::Bool(fastpath_gate_ok));
    }
    if let Some(required) = snapshot_gate {
        traj.meta("snapshot_gate_rate", Json::Num(required));
        traj.meta("snapshot_gate_passed", Json::Bool(snapshot_gate_ok));
    }
    traj.emit();

    if let Some(required) = snapshot_gate {
        if !snapshot_gate_ok {
            eprintln!(
                "FAIL: a read-mostly snapshot cell served fewer than {required:.2} of \
                 its commits from the version chains"
            );
            std::process::exit(1);
        }
        println!(
            "\nsnapshot gate passed: every snapshot cell served >= {required:.2} of its \
             commits from the version chains (histories certified)"
        );
    }

    if let Some(required) = fastpath_gate {
        if !fastpath_gate_ok {
            eprintln!(
                "FAIL: an increment-heavy fast-path cell committed fewer than \
                 {required:.2} of its transactions through the bypass"
            );
            std::process::exit(1);
        }
        println!(
            "\nfast-path gate passed: every bypass cell committed >= {required:.2} of its \
             transactions through the confluent fast path (histories certified)"
        );
    }

    if let Some(required) = gate {
        println!();
        if !transport_gate_ok {
            eprintln!(
                "FAIL: no Section A cell held >= {required} live registrations \
                 with a clean (overflow-free, leak-free) reply plane"
            );
            std::process::exit(1);
        }
        if !hold_gate_ok {
            eprintln!(
                "FAIL: the engine did not hold >= {required} transactions open \
                 with mailbox_overflow_entries == 0"
            );
            std::process::exit(1);
        }
        println!(
            "gate passed: >= {required} concurrently open registrations stayed \
             entirely on the lock-free index (overflow 0, leaks 0)"
        );
    }
}
