//! E8 — sensitivity of PA to the backoff interval `INT`.
//!
//! The paper leaves `INT` as a free per-transaction parameter of the PA
//! protocol (Section 3.4). A small interval produces timestamps just above
//! the acceptance floor (more precise, but the issuer-side maximum may still
//! land below another queue's floor); a large interval overshoots and delays
//! the transaction behind unrelated requests. This ablation sweeps `INT` and
//! reports PA's mean system time and backoff counts.

use bench::{base_config, table};
use dbmodel::CcMethod;
use sim::{MethodPolicy, SimConfig, Simulation};

fn main() {
    let intervals: [u64; 5] = [10, 100, 1_000, 10_000, 100_000];
    let widths = [12usize, 14, 16, 16];
    println!("E8: PA backoff-interval sensitivity; lambda = 200/s");
    table::header(
        &["INT (us)", "S_PA (ms)", "backoff rounds", "msgs/commit"],
        &widths,
    );
    for &interval in &intervals {
        let config = SimConfig {
            arrival_rate: 200.0,
            pa_backoff_interval: interval,
            method_policy: MethodPolicy::Static(CcMethod::PrecedenceAgreement),
            ..base_config(88)
        };
        let report = Simulation::run(config);
        assert!(report.serializable().is_ok());
        assert_eq!(
            report
                .metrics
                .method(CcMethod::PrecedenceAgreement)
                .restarts(),
            0,
            "PA stays restart-free for every interval"
        );
        table::row(
            &[
                format!("{interval}"),
                format!("{:.2}", report.mean_system_time() * 1e3),
                format!(
                    "{}",
                    report
                        .metrics
                        .method(CcMethod::PrecedenceAgreement)
                        .backoff_rounds
                        .get()
                ),
                format!("{:.2}", report.messages_per_commit()),
            ],
            &widths,
        );
    }
}
