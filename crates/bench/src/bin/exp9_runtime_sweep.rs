//! E9 — live-runtime sweep: commit throughput and restart behaviour as a
//! function of client count × shard count × method mix.
//!
//! Unlike experiments E1–E8, which run on the discrete-event simulator,
//! this experiment exercises the `runtime` crate: real client threads
//! drive read-modify-write transactions through the sharded multi-threaded
//! engine, and every cell of the sweep replays its captured execution log
//! through the serializability oracle. The questions it answers are the
//! ones the simulator cannot: how does *real* parallel throughput scale
//! with cores (shards), how much does the method mix matter under genuine
//! contention — and what does adaptive selection cost? The `dyn-cache`
//! rows run the STL selector with the epoch-cached decision grid, the
//! `dyn-fresh` rows re-evaluate the full STL′ dynamic program per
//! transaction (the pre-cache behaviour); `sel us` and `hit%` report the
//! mean per-selection overhead and the decision-grid hit rate.
//!
//! Run with: `cargo run --release -p bench --bin exp9_runtime_sweep`

use std::time::Instant;

use bench::table;
use dbmodel::{CcMethod, LogicalItemId};
use runtime::{CcPolicy, Database, RuntimeConfig, TxnSpec};

const ITEMS: u64 = 96;
const TXNS_PER_CLIENT: u64 = 150;

/// One sweep configuration: an assignment policy plus, for the dynamic
/// policy, whether the selection cache is enabled.
#[derive(Clone, Copy)]
struct Cell {
    label: &'static str,
    policy: CcPolicy,
    cached: bool,
}

fn run_cell(clients: u64, shards: u32, cell: Cell) -> Vec<String> {
    let defaults = RuntimeConfig::default();
    let db = Database::open(RuntimeConfig {
        num_shards: shards,
        num_items: ITEMS,
        initial_value: 1_000,
        policy: cell.policy,
        selection_cache: if cell.cached {
            defaults.selection_cache
        } else {
            None
        },
        ..defaults
    })
    .expect("valid config");

    let begun = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for k in 0..TXNS_PER_CLIENT {
                    let i = t * 131 + k * 17;
                    let from = LogicalItemId(i % ITEMS);
                    let to = LogicalItemId((i * 5 + 1) % ITEMS);
                    if from == to {
                        continue;
                    }
                    let spec = TxnSpec::new().write(from).write(to);
                    db.run_transaction(&spec, |reads| {
                        vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
                    })
                    .expect("sweep transaction commits");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("sweep worker panicked");
    }
    let elapsed = begun.elapsed().as_secs_f64();

    let stats = db.stats();
    let report = db.shutdown().expect("shutdown");
    let serializable = report.serializable().is_ok();
    vec![
        clients.to_string(),
        shards.to_string(),
        cell.label.to_string(),
        stats.committed.to_string(),
        format!("{:.0}", stats.committed as f64 / elapsed),
        stats.restarts().to_string(),
        stats.backoff_rounds.to_string(),
        if stats.selections > 0 {
            format!("{:.1}", stats.selection_micros_per_txn())
        } else {
            "-".into()
        },
        if stats.cache.hits + stats.cache.misses > 0 {
            format!("{:.0}", stats.cache.hit_rate() * 100.0)
        } else {
            "-".into()
        },
        if serializable {
            "yes".into()
        } else {
            "NO".into()
        },
    ]
}

fn main() {
    println!("E9: live runtime sweep — clients x shards x method mix");
    println!(
        "    ({TXNS_PER_CLIENT} transfers per client over {ITEMS} items, read-modify-write)\n"
    );
    let widths = [7, 6, 9, 10, 10, 9, 9, 8, 5, 6];
    table::header(
        &[
            "clients",
            "shards",
            "policy",
            "committed",
            "txn/s",
            "restarts",
            "backoffs",
            "sel us",
            "hit%",
            "ser.",
        ],
        &widths,
    );
    let cells = [
        Cell {
            label: "2PL",
            policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
            cached: true,
        },
        Cell {
            label: "mixed",
            policy: CcPolicy::Mix {
                p_2pl: 0.34,
                p_to: 0.33,
            },
            cached: true,
        },
        Cell {
            label: "dyn-cache",
            policy: CcPolicy::DynamicStl,
            cached: true,
        },
        Cell {
            label: "dyn-fresh",
            policy: CcPolicy::DynamicStl,
            cached: false,
        },
    ];
    for &shards in &[1u32, 2, 4] {
        for &clients in &[1u64, 4, 8] {
            for &cell in &cells {
                table::row(&run_cell(clients, shards, cell), &widths);
            }
        }
        println!();
    }
}
