//! E9 — live-runtime sweep: commit throughput and restart behaviour as a
//! function of client count × shard count × method mix × message plane.
//!
//! Unlike experiments E1–E8, which run on the discrete-event simulator,
//! this experiment exercises the `runtime` crate: real client threads
//! drive read-modify-write transactions through the sharded multi-threaded
//! engine, and every cell of the sweep replays its captured execution log
//! through the serializability oracle. The questions it answers are the
//! ones the simulator cannot: how does *real* parallel throughput scale
//! with cores (shards), how much does the method mix matter under genuine
//! contention, what does adaptive selection cost — and what the message
//! plane is worth. The `plane` column compares `ring` (the batched
//! lock-free transport: per-shard send batching into an MPSC ring, whole
//! ring drained per shard wakeup) against `mpsc` (the pre-batching
//! `std::sync::mpsc` baseline, one message per send and one per recv).
//! The `reply` column does the same for the reply direction: `mail`
//! (the lock-free slab of reusable client mailboxes, PR 4) against
//! `mpsc` (per-incarnation channels behind a global locked map). The
//! `dyn-cache` rows run the STL selector with the epoch-cached
//! decision grid over striped commit-path-free metrics; the `dyn-fresh`
//! rows re-evaluate the full STL′ dynamic program per transaction against
//! freshly merged metrics (the pre-cache behaviour); `sel us` and `hit%`
//! report the mean per-selection overhead and the decision-grid hit rate.
//!
//! Run with: `cargo run --release -p bench --bin exp9_runtime_sweep`
//!
//! Environment knobs (used by the CI smoke step):
//!
//! * `EXP9_SMOKE=1` — restrict the sweep to the 8-clients × 4-shards
//!   cells only.
//! * `EXP9_GATE=<ratio>` — after the sweep, fail (exit 1) unless the
//!   batched ring plane achieved at least `<ratio>` × the mpsc baseline's
//!   txn/s on the 8 × 4 static-2PL cell.
//! * `EXP9_REPLY_GATE=<ratio>` — same for the reply plane: fail unless
//!   the mailbox registry achieved at least `<ratio>` × the
//!   mpsc-registry baseline on the same wide cell (both on the ring
//!   transport).
//!
//! Besides the table, the sweep emits a machine-readable trajectory,
//! `BENCH_exp9.json` (into `$BENCH_JSON_DIR`, default `.`): one row per
//! cell with the cell parameters and measured counters, plus the gate
//! medians in `meta`. See [`bench::traj`] for the document shape.

use std::time::Instant;

use bench::{table, Trajectory};
use dbmodel::{CcMethod, LogicalItemId};
use runtime::{
    CcPolicy, Database, ReplyPlaneKind, RuntimeConfig, StatsSnapshot, TransportKind, TxnSpec,
};
use trace::json::Json;

const ITEMS: u64 = 96;

/// Transfers per client thread; `EXP9_TXNS` overrides (longer runs give
/// stabler txn/s on noisy machines).
fn txns_per_client() -> u64 {
    std::env::var("EXP9_TXNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150)
}

/// One sweep configuration: an assignment policy, the message plane,
/// whether the dynamic policy runs cached, and the transaction shape.
#[derive(Clone, Copy)]
struct Cell {
    label: &'static str,
    policy: CcPolicy,
    cached: bool,
    transport: TransportKind,
    reply: ReplyPlaneKind,
    /// `false`: the classic 2-item transfer (one message per shard per
    /// phase — the plane's batcher has nothing to group). `true`: a wide
    /// 4-read + 4-write read-modify-write transaction, the message-heavy
    /// shape the plane comparison is gated on.
    wide: bool,
}

fn plane_name(transport: TransportKind) -> &'static str {
    match transport {
        TransportKind::BatchedRing => "ring",
        TransportKind::Mpsc => "mpsc",
    }
}

fn reply_name(reply: ReplyPlaneKind) -> &'static str {
    match reply {
        ReplyPlaneKind::Mailbox => "mail",
        ReplyPlaneKind::Mpsc => "mpsc",
    }
}

/// Everything one measured cell leaves behind: the formatted table row,
/// the throughput the gates compare, and the raw counters the JSON
/// trajectory and the reply-plane footer are built from.
struct CellOutcome {
    row: Vec<String>,
    txn_per_sec: f64,
    stats: StatsSnapshot,
    serializable: bool,
}

/// Run one cell; returns the table row and the measured counters.
fn run_cell(clients: u64, shards: u32, cell: Cell) -> CellOutcome {
    let defaults = RuntimeConfig::default();
    let db = Database::open(RuntimeConfig {
        num_shards: shards,
        num_items: ITEMS,
        initial_value: 1_000,
        policy: cell.policy,
        transport: cell.transport,
        reply_plane: cell.reply,
        selection_cache: if cell.cached {
            defaults.selection_cache
        } else {
            None
        },
        ..defaults
    })
    .expect("valid config");

    let begun = Instant::now();
    let per_client = txns_per_client();
    let workers: Vec<_> = (0..clients)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for k in 0..per_client {
                    let i = t * 131 + k * 17;
                    if cell.wide {
                        // 4 reads + 4 writes on disjoint items: eight
                        // messages per phase for the plane to batch.
                        let base = i % ITEMS;
                        let reads: Vec<_> = (0..4)
                            .map(|j| LogicalItemId((base + 2 * j) % ITEMS))
                            .collect();
                        let writes: Vec<_> = (0..4)
                            .map(|j| LogicalItemId((base + 2 * j + 1) % ITEMS))
                            .collect();
                        let spec = TxnSpec::new()
                            .reads(reads.iter().copied())
                            .writes(writes.iter().copied());
                        db.run_transaction(&spec, |seen| {
                            writes.iter().map(|&w| (w, seen[&w] + 1)).collect()
                        })
                        .expect("sweep transaction commits");
                    } else {
                        let from = LogicalItemId(i % ITEMS);
                        let to = LogicalItemId((i * 5 + 1) % ITEMS);
                        if from == to {
                            continue;
                        }
                        let spec = TxnSpec::new().write(from).write(to);
                        db.run_transaction(&spec, |reads| {
                            vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
                        })
                        .expect("sweep transaction commits");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("sweep worker panicked");
    }
    let elapsed = begun.elapsed().as_secs_f64();

    let stats = db.stats();
    let report = db.shutdown().expect("shutdown");
    let serializable = report.serializable().is_ok();
    let txn_per_sec = stats.committed as f64 / elapsed;
    let row = vec![
        clients.to_string(),
        shards.to_string(),
        cell.label.to_string(),
        plane_name(cell.transport).to_string(),
        reply_name(cell.reply).to_string(),
        stats.committed.to_string(),
        format!("{txn_per_sec:.0}"),
        stats.restarts().to_string(),
        stats.backoff_rounds.to_string(),
        if stats.selections > 0 {
            format!("{:.1}", stats.selection_micros_per_txn())
        } else {
            "-".into()
        },
        if stats.cache.hits + stats.cache.misses > 0 {
            format!("{:.0}", stats.cache.hit_rate() * 100.0)
        } else {
            "-".into()
        },
        if serializable {
            "yes".into()
        } else {
            "NO".into()
        },
    ];
    CellOutcome {
        row,
        txn_per_sec,
        stats,
        serializable,
    }
}

/// One JSON trajectory row for a measured sweep cell.
fn traj_row(clients: u64, shards: u32, cell: Cell, outcome: &CellOutcome) -> Vec<(String, Json)> {
    let stats = &outcome.stats;
    vec![
        ("clients".into(), Json::Num(clients as f64)),
        ("shards".into(), Json::num(shards)),
        ("policy".into(), Json::str(cell.label)),
        ("plane".into(), Json::str(plane_name(cell.transport))),
        ("reply".into(), Json::str(reply_name(cell.reply))),
        ("wide".into(), Json::Bool(cell.wide)),
        ("committed".into(), Json::Num(stats.committed as f64)),
        ("txn_per_sec".into(), Json::Num(outcome.txn_per_sec)),
        ("restarts".into(), Json::Num(stats.restarts() as f64)),
        (
            "backoff_rounds".into(),
            Json::Num(stats.backoff_rounds as f64),
        ),
        (
            "sel_us".into(),
            if stats.selections > 0 {
                Json::Num(stats.selection_micros_per_txn())
            } else {
                Json::Null
            },
        ),
        (
            "cache_hit_pct".into(),
            if stats.cache.hits + stats.cache.misses > 0 {
                Json::Num(stats.cache.hit_rate() * 100.0)
            } else {
                Json::Null
            },
        ),
        ("serializable".into(), Json::Bool(outcome.serializable)),
        (
            "stale_reply_events".into(),
            Json::Num(stats.stale_reply_events as f64),
        ),
        (
            "mailbox_overflow_entries".into(),
            Json::Num(stats.mailbox_overflow_entries as f64),
        ),
        ("trace_events".into(), Json::Num(stats.trace_events as f64)),
    ]
}

fn main() {
    let smoke = std::env::var("EXP9_SMOKE").is_ok_and(|v| v == "1");
    let gate: Option<f64> = std::env::var("EXP9_GATE").ok().and_then(|s| s.parse().ok());
    let reply_gate: Option<f64> = std::env::var("EXP9_REPLY_GATE")
        .ok()
        .and_then(|s| s.parse().ok());

    println!("E9: live runtime sweep — clients x shards x method mix x planes");
    println!(
        "    ({} transfers per client over {ITEMS} items, read-modify-write)\n",
        txns_per_client()
    );
    let widths = [7, 6, 9, 5, 5, 10, 10, 9, 9, 8, 5, 6];
    table::header(
        &[
            "clients",
            "shards",
            "policy",
            "plane",
            "reply",
            "committed",
            "txn/s",
            "restarts",
            "backoffs",
            "sel us",
            "hit%",
            "ser.",
        ],
        &widths,
    );
    let cells = [
        Cell {
            label: "2PL",
            policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
            cached: true,
            transport: TransportKind::BatchedRing,
            reply: ReplyPlaneKind::Mailbox,
            wide: false,
        },
        Cell {
            label: "2PL",
            policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
            cached: true,
            transport: TransportKind::Mpsc,
            reply: ReplyPlaneKind::Mailbox,
            wide: false,
        },
        Cell {
            label: "2PL-w8",
            policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
            cached: true,
            transport: TransportKind::BatchedRing,
            reply: ReplyPlaneKind::Mailbox,
            wide: true,
        },
        Cell {
            label: "2PL-w8",
            policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
            cached: true,
            transport: TransportKind::Mpsc,
            reply: ReplyPlaneKind::Mailbox,
            wide: true,
        },
        // The reply-plane A/B cell: same wide shape and ring transport
        // as the gate cell above, but replies through the per-incarnation
        // mpsc registry.
        Cell {
            label: "2PL-w8",
            policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
            cached: true,
            transport: TransportKind::BatchedRing,
            reply: ReplyPlaneKind::Mpsc,
            wide: true,
        },
        Cell {
            label: "mixed",
            policy: CcPolicy::Mix {
                p_2pl: 0.34,
                p_to: 0.33,
            },
            cached: true,
            transport: TransportKind::BatchedRing,
            reply: ReplyPlaneKind::Mailbox,
            wide: false,
        },
        Cell {
            label: "dyn-cache",
            policy: CcPolicy::DynamicStl,
            cached: true,
            transport: TransportKind::BatchedRing,
            reply: ReplyPlaneKind::Mailbox,
            wide: false,
        },
        Cell {
            label: "dyn-fresh",
            policy: CcPolicy::DynamicStl,
            cached: false,
            transport: TransportKind::BatchedRing,
            reply: ReplyPlaneKind::Mailbox,
            wide: false,
        },
    ];
    let shard_axis: &[u32] = if smoke { &[GATE_SHARDS] } else { &[1, 2, 4] };
    let client_axis: &[u64] = if smoke { &[GATE_CLIENTS] } else { &[1, 4, 8] };
    let mut traj = Trajectory::new("exp9");
    traj.meta("smoke", Json::Bool(smoke));
    traj.meta("txns_per_client", Json::Num(txns_per_client() as f64));
    traj.meta("items", Json::Num(ITEMS as f64));
    traj.meta("gate_reps", Json::Num(gate_reps() as f64));
    let mut stale_replies = 0u64;
    let mut overflow_entries = 0u64;
    for &shards in shard_axis {
        for &clients in client_axis {
            for &cell in &cells {
                let outcome = run_cell(clients, shards, cell);
                table::row(&outcome.row, &widths);
                stale_replies += outcome.stats.stale_reply_events;
                overflow_entries += outcome.stats.mailbox_overflow_entries;
                traj.row(traj_row(clients, shards, cell, &outcome));
            }
        }
        println!();
    }
    // The reply-plane health footer: stale deliveries are the benign
    // lost-race events the mailbox generation check absorbed; overflow
    // entries should stay zero on a healthy run (each one triggered a
    // postmortem dump when tracing was on).
    println!(
        "reply plane across all cells: {stale_replies} stale reply events, \
         {overflow_entries} mailbox overflow entries"
    );

    let medians = gate_medians(&cells);
    traj.meta("stale_reply_events_total", Json::Num(stale_replies as f64));
    traj.meta(
        "mailbox_overflow_entries_total",
        Json::Num(overflow_entries as f64),
    );
    traj.meta("gate_ring_mail_txn_s", Json::Num(medians.ring_mail));
    traj.meta("gate_mpsc_mail_txn_s", Json::Num(medians.mpsc_mail));
    traj.meta(
        "gate_ring_mpsc_reply_txn_s",
        Json::Num(medians.ring_mpsc_reply),
    );
    traj.emit();
    let check = |label: &str, required: Option<f64>, fast: f64, base: f64| {
        let ratio = fast / base;
        println!(
            "gate cell ({GATE_CLIENTS} clients x {GATE_SHARDS} shards, 2PL-w8, median of \
             {}) {label}: {fast:.0} txn/s vs {base:.0} txn/s — {ratio:.2}x",
            gate_reps()
        );
        if let Some(required) = required {
            if ratio < required {
                eprintln!("FAIL: {label} is below the required {required:.2}x of its baseline");
                std::process::exit(1);
            }
            println!("gate passed (required {required:.2}x)");
        }
    };
    check(
        "message plane, ring vs mpsc transport (reply=mail)",
        gate,
        medians.ring_mail,
        medians.mpsc_mail,
    );
    check(
        "reply plane, mailbox slab vs mpsc registry (plane=ring)",
        reply_gate,
        medians.ring_mail,
        medians.ring_mpsc_reply,
    );
}

/// The cell the CI gates compare across planes: the message-heavy wide
/// transaction, where the plane actually has batches to build.
const GATE_CLIENTS: u64 = 8;
const GATE_SHARDS: u32 = 4;

fn gate_reps() -> usize {
    std::env::var("EXP9_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Median txn/s of each wide gate cell. Both gates share the same
/// contender (ring transport + mailbox registry), so all three distinct
/// cells are measured once, round-robin across `EXP9_REPS` repetitions
/// — single runs on a loaded machine swing by tens of percent;
/// alternating medians cancel the drift.
struct GateMedians {
    ring_mail: f64,
    mpsc_mail: f64,
    ring_mpsc_reply: f64,
}

fn gate_medians(cells: &[Cell]) -> GateMedians {
    let gate_cell = |transport: TransportKind, reply: ReplyPlaneKind| {
        *cells
            .iter()
            .find(|c| c.wide && c.transport == transport && c.reply == reply)
            .expect("gate cells present")
    };
    let contenders = [
        gate_cell(TransportKind::BatchedRing, ReplyPlaneKind::Mailbox),
        gate_cell(TransportKind::Mpsc, ReplyPlaneKind::Mailbox),
        gate_cell(TransportKind::BatchedRing, ReplyPlaneKind::Mpsc),
    ];
    let mut runs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..gate_reps() {
        for (cell, runs) in contenders.iter().zip(runs.iter_mut()) {
            runs.push(run_cell(GATE_CLIENTS, GATE_SHARDS, *cell).txn_per_sec);
        }
    }
    let median = |runs: &mut Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let [ref mut a, ref mut b, ref mut c] = runs;
    GateMedians {
        ring_mail: median(a),
        mpsc_mail: median(b),
        ring_mpsc_reply: median(c),
    }
}
