//! E6 — dynamic (STL-based) selection versus static concurrency control.
//!
//! Paper (Section 5): static concurrency control "can only capture the
//! average behavior but fails to reflect the individual differences among
//! transactions"; the STL criterion picks, per transaction, the protocol
//! with the smallest estimated system throughput loss. This experiment
//! sweeps arrival rate and reports both the mean system time and the commit
//! throughput of each static choice and of the dynamic selector, plus the
//! mix the selector converged to.

use bench::{base_config, run_protocols, table};
use dbmodel::CcMethod;
use sim::SimConfig;

fn main() {
    let lambdas = [25.0, 80.0, 200.0, 300.0];
    let widths = [10usize, 11, 11, 11, 11, 24];
    println!("E6: mean system time S (ms): static vs STL-dynamic; selection mix shown for dynamic");
    table::header(
        &[
            "lambda",
            "2PL",
            "T/O",
            "PA",
            "dynamic",
            "dyn mix (2PL/T\\O/PA)",
        ],
        &widths,
    );
    for &lambda in &lambdas {
        let row = run_protocols(|| SimConfig {
            arrival_rate: lambda,
            ..base_config(66)
        });
        let s = row.mean_system_time_ms();
        let dynamic = &row.reports[3];
        let counts = &dynamic.selection_counts;
        let mix = format!(
            "{}/{}/{}",
            counts.get(&CcMethod::TwoPhaseLocking).copied().unwrap_or(0),
            counts
                .get(&CcMethod::TimestampOrdering)
                .copied()
                .unwrap_or(0),
            counts
                .get(&CcMethod::PrecedenceAgreement)
                .copied()
                .unwrap_or(0),
        );
        table::row(
            &[
                format!("{lambda:.0}"),
                format!("{:.2}", s[0]),
                format!("{:.2}", s[1]),
                format!("{:.2}", s[2]),
                format!("{:.2}", s[3]),
                mix,
            ],
            &widths,
        );
    }
    println!();
    println!("Throughput (committed txn/s) at the highest load:");
    let row = run_protocols(|| SimConfig {
        arrival_rate: 300.0,
        ..base_config(67)
    });
    let t = row.throughput();
    let widths = [10usize, 11, 11, 11, 11];
    table::header(&["", "2PL", "T/O", "PA", "dynamic"], &widths);
    table::row(
        &[
            "thrpt".to_string(),
            format!("{:.1}", t[0]),
            format!("{:.1}", t[1]),
            format!("{:.1}", t[2]),
            format!("{:.1}", t[3]),
        ],
        &widths,
    );
}
