//! E11 — chaos sweep: the fault plane turned on the live runtime, every
//! surviving history oracle-certified.
//!
//! PR 9 wrapped the transport boundary in a seeded fault plane
//! ([`runtime::FaultSchedule`]): per-link drop / duplicate / delay,
//! partition windows, and shard crashes with the partial-amnesia
//! recovery model. This experiment closes the loop on the hardening that
//! came with it — bounded request/commit deadlines, idempotent
//! re-delivery suppression, detector-driven cleanup of stranded
//! transactions. The grid crosses:
//!
//! * **drop rate** — 5% vs 20% of faultable messages silently discarded
//!   (the durable commit channel — `Release` / `Demote` — is exempt by
//!   construction, or committed writes could be lost);
//! * **partitions** — off, or one buffered window per link;
//! * **crashes** — none, or two scheduled crash points per link, each
//!   wiping the shard's ungranted queue entries after an outage.
//!
//! Every cell also arms a light duplicate + delay drizzle so the
//! idempotence and reorder paths stay live in every run. The
//! fully-armed cell additionally runs with the MVCC snapshot plane
//! (PR 10) exercised: an auditor thread reads every account through
//! coordination-free snapshot reads *while* the chaos schedule is live,
//! and every answer it gets must be a transaction-consistent cut (the
//! conserved bank total). A cell drives a mixed-protocol (2PL / T/O /
//! PA) bank-transfer workload, then:
//!
//! 1. quiesces the plane (flushes delayed / partition-buffered traffic),
//! 2. audits the conserved bank total (no lost or half-applied writes),
//! 3. checks no transaction is still registered after the drain,
//! 4. replays the merged execution log through the `sercheck` oracle.
//!
//! On a violation the cell dumps the tail of the flight recorder — the
//! phase-attributed lifecycle spans of the transactions in flight — and
//! exits nonzero.
//!
//! Run with: `cargo run --release -p bench --bin exp11_chaos_sweep`
//!
//! Environment knobs (used by the CI chaos-gate step):
//!
//! * `EXP11_SMOKE=1` — restrict the grid to its gate-relevant cells.
//! * `EXP11_TXNS=<n>` — transactions per client (default 50).
//! * `EXP11_GATE=1` — fail (exit 1) unless every cell's armed fault
//!   classes actually fired (counters nonzero): injected chaos that
//!   never lands would make the sweep's green meaningless.
//!
//! Besides the table, the sweep emits `BENCH_exp11.json` (into
//! `$BENCH_JSON_DIR`, default `.`): one row per cell with its fault
//! counters, recovery counters and oracle verdict. See [`bench::traj`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{table, Trajectory};
use dbmodel::{CcMethod, LogicalItemId, ReplicationPolicy};
use runtime::{CcPolicy, Database, FaultProfile, FaultSchedule, RuntimeConfig, TxnError, TxnSpec};
use trace::json::Json;

const SHARDS: u32 = 3;
const ACCOUNTS: u64 = 30;
const INITIAL: i64 = 1_000;
const CLIENTS: u64 = 6;
/// Fixed per-cell seed base: the grid is exactly replayable.
const SEED_BASE: u64 = 0xE11_0000;

fn txns_per_client() -> u64 {
    std::env::var("EXP11_TXNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50)
}

fn li(i: u64) -> LogicalItemId {
    LogicalItemId(i % ACCOUNTS)
}

/// One grid cell: which fault classes are armed and how hard, and
/// whether a snapshot auditor races the transfers (PR 10).
#[derive(Clone, Copy)]
struct Cell {
    drop_rate: f64,
    partition: bool,
    crashes: u32,
    snapshot: bool,
}

impl Cell {
    fn label(&self) -> String {
        format!(
            "drop{:.0}%{}{}",
            self.drop_rate * 100.0,
            if self.partition { "+part" } else { "" },
            if self.crashes > 0 { "+crash" } else { "" },
        ) + if self.snapshot { "+snap" } else { "" }
    }

    /// The materialized schedule: the cell's heavy knobs plus a light
    /// duplicate + delay drizzle so idempotence and reordering are live
    /// in every cell.
    fn schedule(&self, seed: u64) -> FaultSchedule {
        let profile = FaultProfile {
            drop_rate: self.drop_rate,
            dup_rate: 0.02,
            delay_rate: 0.02,
            delay_span: 6,
            partitions_per_link: if self.partition { 1 } else { 0 },
            partition_len: 24,
            crashes: self.crashes,
            crash_outage: Duration::from_millis(10),
            horizon: 256,
        };
        FaultSchedule::generate(profile, seed, SHARDS as usize)
    }
}

/// What one chaos cell measured.
struct ChaosOutcome {
    committed: u64,
    clean_failures: u64,
    txn_per_sec: f64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    partitioned: u64,
    crashes: u64,
    timeout_restarts: u64,
    shard_unavailable: u64,
    cleanup_aborts: u64,
    dup_suppressed: u64,
    snapshot_served: u64,
    conserved: bool,
    drained: bool,
    serializable: bool,
}

/// Dump the tail of the flight recorder when a cell violates an
/// invariant: the lifecycle spans of whatever was in flight are the
/// postmortem.
fn postmortem(db: &Database, cell: &Cell, seed: u64, why: &str) -> ! {
    eprintln!("FAIL [{}] seed {seed:#x}: {why}", cell.label());
    eprintln!("{:?}", db.stats());
    let events = db.trace_snapshot();
    let tail = events.len().saturating_sub(48);
    eprintln!(
        "flight recorder tail ({} of {} events):",
        events.len() - tail,
        events.len()
    );
    for event in &events[tail..] {
        eprintln!("  {event:?}");
    }
    std::process::exit(1);
}

/// Read the total balance after quiesce. A shard may still be sleeping
/// off its last crash outage, so bounded timeouts are retried.
fn audit_total(db: &Database) -> Option<i64> {
    let spec = TxnSpec::new().reads((0..ACCOUNTS).map(LogicalItemId));
    for _ in 0..20 {
        match db.run_transaction(&spec, |_| vec![]) {
            Ok(receipt) => return Some(receipt.reads.values().sum()),
            Err(TxnError::TooManyRestarts { .. }) | Err(TxnError::ShardUnavailable) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return None,
        }
    }
    None
}

fn run_cell(cell: Cell, seed: u64) -> ChaosOutcome {
    let db = Database::open(RuntimeConfig {
        num_shards: SHARDS,
        num_items: ACCOUNTS,
        initial_value: INITIAL,
        replication: ReplicationPolicy::SingleCopy,
        policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
        deadlock_scan_interval: Duration::from_millis(2),
        shard_inbox_capacity: 4096,
        request_timeout: Duration::from_millis(50),
        commit_timeout: Duration::from_millis(250),
        max_restarts: 8,
        restart_backoff: Duration::from_micros(200),
        faults: Some(cell.schedule(seed)),
        ..RuntimeConfig::default()
    })
    .expect("valid chaos config");

    let per_client = txns_per_client();
    let committed = Arc::new(AtomicU64::new(0));
    let clean_failures = Arc::new(AtomicU64::new(0));
    let begun = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let db = db.clone();
            let committed = Arc::clone(&committed);
            let clean_failures = Arc::clone(&clean_failures);
            std::thread::spawn(move || {
                for k in 0..per_client {
                    let method = CcMethod::ALL[((t + k) % 3) as usize];
                    let from = li(t * 7 + k);
                    let to = li(t * 3 + k * 11 + 1);
                    if from == to {
                        continue;
                    }
                    let amount = (1 + (t + k) % 9) as i64;
                    let spec = TxnSpec::new().write(from).write(to).method(method);
                    match db.run_transaction(&spec, |reads| {
                        vec![(from, reads[&from] - amount), (to, reads[&to] + amount)]
                    }) {
                        Ok(_) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TxnError::TooManyRestarts { .. }) | Err(TxnError::ShardUnavailable) => {
                            clean_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => panic!("unexpected transaction error under chaos: {err}"),
                    }
                }
            })
        })
        .collect();
    // PR 10: in snapshot cells an auditor thread reads every account
    // through the coordination-free snapshot plane while the transfers
    // (and the fault schedule) are live. Any successful answer must be a
    // transaction-consistent cut — the conserved bank total — and a
    // crashed shard may only surface as a bounded clean error.
    let snapshot_served = Arc::new(AtomicU64::new(0));
    let auditor = cell.snapshot.then(|| {
        let db = db.clone();
        let served = Arc::clone(&snapshot_served);
        std::thread::spawn(move || {
            let spec = TxnSpec::new().reads((0..ACCOUNTS).map(LogicalItemId));
            for _ in 0..per_client {
                match db.execute(&spec) {
                    Ok(receipt) => {
                        let total: i64 = receipt.reads.values().sum();
                        assert_eq!(
                            total,
                            ACCOUNTS as i64 * INITIAL,
                            "a live read observed a torn cut (snapshot={})",
                            receipt.snapshot,
                        );
                        if receipt.snapshot {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(TxnError::TooManyRestarts { .. }) | Err(TxnError::ShardUnavailable) => {}
                    Err(err) => panic!("unexpected snapshot auditor error under chaos: {err}"),
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    });
    for worker in workers.into_iter().chain(auditor) {
        worker.join().expect("chaos client panicked");
    }
    let elapsed = begun.elapsed().as_secs_f64();

    // Flush plane-held traffic, then audit the drained system.
    db.quiesce_faults();
    let drained = db.live_transactions() == 0;
    if !drained {
        postmortem(
            &db,
            &cell,
            seed,
            "transactions still registered after drain",
        );
    }
    let total = audit_total(&db);
    let conserved = total == Some(ACCOUNTS as i64 * INITIAL);
    if !conserved {
        postmortem(
            &db,
            &cell,
            seed,
            &format!(
                "bank total not conserved: {total:?} != {}",
                ACCOUNTS as i64 * INITIAL
            ),
        );
    }

    let stats = db.stats();
    let counters = db.fault_counters().expect("fault plane armed");
    let committed = committed.load(Ordering::Relaxed);
    let report = db.shutdown().expect("chaos cell drains");
    let serializable = report.serializable().is_ok();
    if !serializable {
        // The database is gone; the oracle verdict itself is the
        // postmortem here.
        eprintln!(
            "FAIL [{}] seed {seed:#x}: history not serializable: {:?}",
            cell.label(),
            report.serializable().err()
        );
        std::process::exit(1);
    }
    ChaosOutcome {
        committed,
        clean_failures: clean_failures.load(Ordering::Relaxed),
        txn_per_sec: committed as f64 / elapsed,
        dropped: counters.dropped,
        duplicated: counters.duplicated,
        delayed: counters.delayed,
        partitioned: counters.partitioned,
        crashes: counters.crashes,
        timeout_restarts: stats.timeout_restarts,
        shard_unavailable: stats.shard_unavailable,
        cleanup_aborts: stats.cleanup_aborts,
        dup_suppressed: stats.dup_suppressed,
        snapshot_served: snapshot_served.load(Ordering::Relaxed),
        conserved,
        drained,
        serializable,
    }
}

fn main() {
    let smoke = std::env::var("EXP11_SMOKE").is_ok_and(|v| v == "1");
    let gate = std::env::var("EXP11_GATE").is_ok_and(|v| v == "1");

    let mut traj = Trajectory::new("exp11");
    traj.meta("smoke", Json::Bool(smoke));
    traj.meta("txns_per_client", Json::Num(txns_per_client() as f64));
    traj.meta("seed_base", Json::Num(SEED_BASE as f64));

    println!(
        "E11: chaos sweep — drop x partition x crash over a mixed-protocol bank \
         ({CLIENTS} clients x {SHARDS} shards, {} txns/client, {ACCOUNTS} accounts)\n",
        txns_per_client()
    );
    let widths = [17, 10, 7, 8, 6, 5, 6, 6, 6, 7, 7, 7, 7, 5];
    table::header(
        &[
            "cell",
            "committed",
            "failed",
            "txn/s",
            "drops",
            "dups",
            "delay",
            "part",
            "crash",
            "t/outs",
            "unavl",
            "swept",
            "dedup",
            "ser.",
        ],
        &widths,
    );

    let full_grid: Vec<Cell> = {
        let mut cells = Vec::new();
        for &drop_rate in &[0.05, 0.20] {
            for &partition in &[false, true] {
                for &crashes in &[0u32, 2] {
                    cells.push(Cell {
                        drop_rate,
                        partition,
                        crashes,
                        snapshot: false,
                    });
                }
            }
        }
        // The fully-armed cell again with the snapshot auditor racing it.
        cells.push(Cell {
            drop_rate: 0.20,
            partition: true,
            crashes: 2,
            snapshot: true,
        });
        cells
    };
    // The smoke grid keeps one quiet cell and the two fully-armed ones:
    // enough to prove every fault class fires and recovers under gate.
    let smoke_grid = vec![
        Cell {
            drop_rate: 0.05,
            partition: false,
            crashes: 0,
            snapshot: false,
        },
        Cell {
            drop_rate: 0.20,
            partition: true,
            crashes: 0,
            snapshot: false,
        },
        Cell {
            drop_rate: 0.20,
            partition: true,
            crashes: 2,
            snapshot: true,
        },
    ];
    let grid = if smoke { smoke_grid } else { full_grid };

    let mut gate_ok = true;
    for (idx, cell) in grid.iter().enumerate() {
        let seed = SEED_BASE + idx as u64;
        let o = run_cell(*cell, seed);
        table::row(
            &[
                cell.label(),
                o.committed.to_string(),
                o.clean_failures.to_string(),
                format!("{:.0}", o.txn_per_sec),
                o.dropped.to_string(),
                o.duplicated.to_string(),
                o.delayed.to_string(),
                o.partitioned.to_string(),
                o.crashes.to_string(),
                o.timeout_restarts.to_string(),
                o.shard_unavailable.to_string(),
                o.cleanup_aborts.to_string(),
                o.dup_suppressed.to_string(),
                if o.serializable {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
            &widths,
        );

        // The gate: armed chaos must actually land, or a green sweep
        // proves nothing.
        let mut live = o.dropped > 0 && o.duplicated > 0 && o.delayed > 0;
        if cell.partition {
            live &= o.partitioned > 0;
        }
        if cell.crashes > 0 {
            live &= o.crashes > 0;
        }
        if cell.snapshot {
            live &= o.snapshot_served > 0;
        }
        if gate && !live {
            eprintln!(
                "gate: cell {} armed fault classes that never fired \
                 (drops {} dups {} delay {} part {} crash {} snap {})",
                cell.label(),
                o.dropped,
                o.duplicated,
                o.delayed,
                o.partitioned,
                o.crashes,
                o.snapshot_served
            );
            gate_ok = false;
        }

        traj.row(vec![
            ("cell", Json::str(cell.label())),
            ("seed", Json::Num(seed as f64)),
            ("drop_rate", Json::Num(cell.drop_rate)),
            ("partition", Json::Bool(cell.partition)),
            ("crash_points", Json::Num(cell.crashes as f64)),
            ("committed", Json::Num(o.committed as f64)),
            ("clean_failures", Json::Num(o.clean_failures as f64)),
            ("txn_per_sec", Json::Num(o.txn_per_sec)),
            ("dropped", Json::Num(o.dropped as f64)),
            ("duplicated", Json::Num(o.duplicated as f64)),
            ("delayed", Json::Num(o.delayed as f64)),
            ("partitioned", Json::Num(o.partitioned as f64)),
            ("crashes", Json::Num(o.crashes as f64)),
            ("timeout_restarts", Json::Num(o.timeout_restarts as f64)),
            ("shard_unavailable", Json::Num(o.shard_unavailable as f64)),
            ("cleanup_aborts", Json::Num(o.cleanup_aborts as f64)),
            ("dup_suppressed", Json::Num(o.dup_suppressed as f64)),
            ("snapshot_served", Json::Num(o.snapshot_served as f64)),
            ("conserved", Json::Bool(o.conserved)),
            ("drained", Json::Bool(o.drained)),
            ("serializable", Json::Bool(o.serializable)),
        ]);
    }

    traj.meta("gate_armed", Json::Bool(gate));
    traj.meta("gate_passed", Json::Bool(gate_ok));
    traj.emit();

    if gate {
        if !gate_ok {
            eprintln!("\nFAIL: a gated cell's armed fault classes never fired");
            std::process::exit(1);
        }
        println!(
            "\nchaos gate passed: every cell's armed fault classes fired, every bank \
             total conserved, every history certified serializable"
        );
    }
}
