//! E5 — ablation of the semi-lock protocol.
//!
//! Paper (Section 4.2): the naive way to unify enforcement is to "use locking
//! for all requests", which "sacrific[es] the degree of concurrency for T/O
//! transactions"; semi-locks preserve E2 *without* reducing T/O concurrency.
//! This experiment runs the same mixed workload under both enforcement modes
//! and reports the mean system time of the T/O transactions (and of
//! everyone) in each.

use bench::{base_config, table};
use dbmodel::CcMethod;
use sim::{MethodPolicy, SimConfig, Simulation};
use unified_cc::EnforcementMode;

fn run(enforcement: EnforcementMode, lambda: f64) -> sim::SimReport {
    let config = SimConfig {
        arrival_rate: lambda,
        enforcement,
        method_policy: MethodPolicy::Mix {
            p_2pl: 0.34,
            p_to: 0.33,
        },
        ..base_config(55)
    };
    let report = Simulation::run(config);
    assert!(report.serializable().is_ok());
    report
}

fn main() {
    let lambdas = [50.0, 100.0, 200.0, 300.0];
    let widths = [10usize, 18, 18, 18, 18];
    println!("E5: semi-lock vs lock-everything enforcement; mixed workload (1/3 each method)");
    table::header(
        &[
            "lambda",
            "S_T/O semi (ms)",
            "S_T/O lockall (ms)",
            "S_all semi (ms)",
            "S_all lockall (ms)",
        ],
        &widths,
    );
    for &lambda in &lambdas {
        let semi = run(EnforcementMode::SemiLock, lambda);
        let lockall = run(EnforcementMode::LockAll, lambda);
        table::row(
            &[
                format!("{lambda:.0}"),
                format!(
                    "{:.2}",
                    semi.metrics
                        .method(CcMethod::TimestampOrdering)
                        .mean_system_time()
                        * 1e3
                ),
                format!(
                    "{:.2}",
                    lockall
                        .metrics
                        .method(CcMethod::TimestampOrdering)
                        .mean_system_time()
                        * 1e3
                ),
                format!("{:.2}", semi.mean_system_time() * 1e3),
                format!("{:.2}", lockall.mean_system_time() * 1e3),
            ],
            &widths,
        );
    }
}
