//! Skewed-access workload shapes for the live-runtime scale sweeps.
//!
//! E9 drives uniformly spread transfers; the scale sweep (E10) needs the
//! opposite: Zipfian-skewed item choice (the YCSB-style hot set) crossed
//! with a small family of transaction shapes, so the reply plane and the
//! queue managers are measured under realistic contention rather than a
//! perfectly balanced load. This module is the shared vocabulary: a
//! seeded skewed item picker and the shape-to-[`TxnSpec`] builders.

use dbmodel::LogicalItemId;
use runtime::TxnSpec;
use simkit::dist::Zipfian;
use simkit::rng::SimRng;

/// Transaction shapes the mixed sweep crosses with access skew.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnShape {
    /// 4 reads + 1 read-modify-write: the lookup-dominated shape.
    ReadHeavy,
    /// The classic 2-item read-modify-write transfer.
    Rmw,
    /// 4 reads + 4 writes: the message-heavy shape the plane gates use.
    Wide,
}

impl TxnShape {
    pub fn label(self) -> &'static str {
        match self {
            TxnShape::ReadHeavy => "read-heavy",
            TxnShape::Rmw => "rmw",
            TxnShape::Wide => "wide",
        }
    }

    /// Read-only items per transaction.
    pub fn reads(self) -> usize {
        match self {
            TxnShape::ReadHeavy => 4,
            TxnShape::Rmw => 0,
            TxnShape::Wide => 4,
        }
    }

    /// Written (read-modify-write) items per transaction.
    pub fn writes(self) -> usize {
        match self {
            TxnShape::ReadHeavy => 1,
            TxnShape::Rmw => 2,
            TxnShape::Wide => 4,
        }
    }
}

/// A Zipfian-skewed picker over item ids `0..items`; `theta = 0` is the
/// uniform distribution, `theta = 0.99` the standard YCSB hot set.
pub struct SkewedItems {
    items: u64,
    zipf: Zipfian,
}

impl SkewedItems {
    pub fn new(items: u64, theta: f64) -> Self {
        SkewedItems {
            items,
            zipf: Zipfian::new(items as usize, theta),
        }
    }

    /// One skew-weighted item.
    pub fn pick(&self, rng: &mut SimRng) -> LogicalItemId {
        LogicalItemId(self.zipf.sample_index(rng) as u64)
    }

    /// `k` *distinct* skew-weighted items. A collision re-samples a
    /// bounded number of times (keeping the hot head hot), then falls
    /// back to a linear sweep from the last sample — so the degenerate
    /// high-theta case where `k` approaches the item count terminates in
    /// `O(k · items)` worst case instead of degrading into unbounded
    /// rejection. `k > items` is a caller bug and panics in every build
    /// (the old debug-only assert let release builds spin forever).
    pub fn pick_distinct(&self, rng: &mut SimRng, k: usize) -> Vec<LogicalItemId> {
        assert!(
            k as u64 <= self.items,
            "cannot pick {k} distinct items out of {}",
            self.items
        );
        const MAX_RESAMPLES: u32 = 8;
        let mut picked: Vec<LogicalItemId> = Vec::with_capacity(k);
        for _ in 0..k {
            let mut id = self.zipf.sample_index(rng) as u64;
            let mut resamples = 0;
            while picked.iter().any(|p| p.0 == id) {
                if resamples < MAX_RESAMPLES {
                    resamples += 1;
                    id = self.zipf.sample_index(rng) as u64;
                } else {
                    id = (id + 1) % self.items;
                }
            }
            picked.push(LogicalItemId(id));
        }
        picked
    }

    /// Build one transaction of the given shape on distinct skew-picked
    /// items; returns the spec and its write set (the body increments
    /// every written item).
    pub fn spec(&self, rng: &mut SimRng, shape: TxnShape) -> (TxnSpec, Vec<LogicalItemId>) {
        let picked = self.pick_distinct(rng, shape.reads() + shape.writes());
        let (reads, writes) = picked.split_at(shape.reads());
        let spec = TxnSpec::new()
            .reads(reads.iter().copied())
            .writes(writes.iter().copied());
        (spec, writes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_distinct_items_and_declared_sizes() {
        let skew = SkewedItems::new(64, 0.99);
        let mut rng = SimRng::new(7);
        for shape in [TxnShape::ReadHeavy, TxnShape::Rmw, TxnShape::Wide] {
            for _ in 0..200 {
                let picked = skew.pick_distinct(&mut rng, shape.reads() + shape.writes());
                let mut ids: Vec<u64> = picked.iter().map(|i| i.0).collect();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), shape.reads() + shape.writes());
                assert!(ids.iter().all(|&i| i < 64));
            }
        }
    }

    /// The degenerate case the old rejection loop mishandled: `k` equal
    /// to the whole item count under heavy skew must return every item
    /// exactly once, quickly, for any seed.
    #[test]
    fn pick_distinct_survives_k_equal_to_item_count() {
        for theta in [0.0, 0.99, 1.2] {
            let skew = SkewedItems::new(32, theta);
            for seed in 0..20 {
                let mut rng = SimRng::new(seed);
                let picked = skew.pick_distinct(&mut rng, 32);
                let mut ids: Vec<u64> = picked.iter().map(|i| i.0).collect();
                ids.sort_unstable();
                assert_eq!(
                    ids,
                    (0..32).collect::<Vec<u64>>(),
                    "theta {theta} seed {seed}: all 32 items, each once"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn pick_distinct_rejects_k_beyond_item_count() {
        let skew = SkewedItems::new(4, 0.5);
        let mut rng = SimRng::new(1);
        let _ = skew.pick_distinct(&mut rng, 5);
    }

    #[test]
    fn high_theta_concentrates_low_theta_spreads() {
        let mut rng = SimRng::new(11);
        let mut hot_share = |theta: f64| {
            let skew = SkewedItems::new(1024, theta);
            let hits = (0..4000).filter(|_| skew.pick(&mut rng).0 < 16).count();
            hits as f64 / 4000.0
        };
        let uniform = hot_share(0.0);
        let skewed = hot_share(0.99);
        assert!(
            skewed > 0.3 && uniform < 0.1,
            "theta=0.99 must concentrate on the hot head \
             (hot-16 share: skewed {skewed:.2} vs uniform {uniform:.2})"
        );
    }
}
