//! Experiment presets and sweep helpers.

use dbmodel::CcMethod;
use sim::{MethodPolicy, SimConfig, SimReport, Simulation};

/// Labels for the four policies every comparative experiment reports, in
/// presentation order.
pub const PROTOCOL_LABELS: [&str; 4] = ["2PL", "T/O", "PA", "dynamic"];

/// The shared baseline configuration of the experiment suite. Individual
/// experiments override the swept parameter(s).
pub fn base_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        num_sites: 4,
        num_items: 60,
        arrival_rate: 80.0,
        txn_size: 4,
        read_fraction: 0.6,
        num_transactions: 1_200,
        restart_delay: simkit::time::Duration::from_millis(30),
        local_compute: simkit::time::Duration::from_millis(10),
        remote_delay: network::DelaySpec::Uniform(2_000, 8_000),
        ..SimConfig::default()
    }
}

/// One row of a protocol-comparison sweep.
#[derive(Debug)]
pub struct ProtocolRow {
    /// Reports in [`PROTOCOL_LABELS`] order: 2PL, T/O, PA, dynamic.
    pub reports: Vec<SimReport>,
}

impl ProtocolRow {
    /// Mean system time (ms) per policy.
    pub fn mean_system_time_ms(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.mean_system_time() * 1e3)
            .collect()
    }

    /// Committed-transaction throughput per policy.
    pub fn throughput(&self) -> Vec<f64> {
        self.reports.iter().map(|r| r.throughput()).collect()
    }

    /// Messages per committed transaction per policy.
    pub fn messages_per_commit(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.messages_per_commit())
            .collect()
    }
}

/// Run the same configuration under static 2PL, static T/O, static PA and
/// STL-dynamic assignment, asserting that every run commits its whole
/// workload and stays serializable.
pub fn run_protocols(mut make_config: impl FnMut() -> SimConfig) -> ProtocolRow {
    let policies = [
        MethodPolicy::Static(CcMethod::TwoPhaseLocking),
        MethodPolicy::Static(CcMethod::TimestampOrdering),
        MethodPolicy::Static(CcMethod::PrecedenceAgreement),
        MethodPolicy::DynamicStl,
    ];
    let reports = policies
        .into_iter()
        .map(|policy| {
            let mut config = make_config();
            config.method_policy = policy;
            let report = Simulation::run(config);
            assert!(
                report.serializable().is_ok(),
                "experiment produced a non-serializable execution"
            );
            report
        })
        .collect();
    ProtocolRow { reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_valid() {
        assert!(base_config(1).validate().is_ok());
    }

    #[test]
    fn run_protocols_produces_four_reports() {
        let row = run_protocols(|| SimConfig {
            num_transactions: 60,
            arrival_rate: 50.0,
            num_items: 60,
            ..base_config(3)
        });
        assert_eq!(row.reports.len(), 4);
        assert_eq!(row.mean_system_time_ms().len(), 4);
        assert!(row.throughput().iter().all(|&t| t > 0.0));
        assert!(row.messages_per_commit().iter().all(|&m| m > 0.0));
    }
}
