//! Machine-readable benchmark trajectories: `BENCH_<name>.json` emitters.
//!
//! Every experiment binary and Criterion bench prints a human-readable
//! table; this module writes the same numbers as a small JSON document so
//! regression tooling can diff runs without scraping stdout. The layout is
//! deliberately flat:
//!
//! ```json
//! {
//!   "bench": "exp9",
//!   "meta": { "smoke": true, "txns_per_cell": 160 },
//!   "rows": [ { "cell": "ring+mail", "txn_per_sec": 41250.0, ... }, ... ]
//! }
//! ```
//!
//! `bench` names the experiment, `meta` carries the sweep parameters that
//! applied to every row (rep counts, smoke mode, gate thresholds), and
//! `rows` holds one object per measured cell. Files land next to the
//! invocation (or in `$BENCH_JSON_DIR` when set) as `BENCH_<name>.json`.

use std::io;
use std::path::{Path, PathBuf};

use trace::json::Json;

/// Builder for one `BENCH_<name>.json` trajectory document.
#[derive(Debug, Clone)]
pub struct Trajectory {
    name: String,
    meta: Vec<(String, Json)>,
    rows: Vec<Json>,
}

impl Trajectory {
    /// Start a trajectory for the experiment `name` (`exp9`, `m8`, …).
    pub fn new(name: impl Into<String>) -> Self {
        Trajectory {
            name: name.into(),
            meta: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Attach a sweep-level parameter (applies to every row).
    pub fn meta(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        self.meta.push((key.into(), value));
        self
    }

    /// Append one measured cell. `fields` become the row object's members.
    pub fn row(
        &mut self,
        fields: impl IntoIterator<Item = (impl Into<String>, Json)>,
    ) -> &mut Self {
        self.rows.push(Json::obj(fields));
        self
    }

    /// How many rows have been recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The assembled document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str(self.name.clone())),
            ("meta", Json::Obj(self.meta.clone())),
            ("rows", Json::Arr(self.rows.clone())),
        ])
    }

    /// Write `BENCH_<name>.json` into `dir` and return the path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, format!("{}\n", self.to_json()))?;
        Ok(path)
    }

    /// Write the trajectory into `$BENCH_JSON_DIR` (falling back to the
    /// current directory) and print where it went. Emission is best-effort:
    /// benches must not fail because the output directory is read-only.
    pub fn emit(&self) {
        let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
        match self.write_to(Path::new(&dir)) {
            Ok(path) => println!("  trajectory: {}", path.display()),
            Err(err) => eprintln!(
                "  trajectory: failed to write BENCH_{}.json: {err}",
                self.name
            ),
        }
    }
}

/// Validate the shape every `BENCH_*.json` document must have: a `"bench"`
/// string, a `"meta"` object and a non-empty `"rows"` array of objects.
pub fn validate_bench_doc(doc: &Json) -> Result<(), String> {
    let name = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing string member \"bench\"")?;
    if name.is_empty() {
        return Err("empty \"bench\" name".into());
    }
    match doc.get("meta") {
        Some(Json::Obj(_)) => {}
        _ => return Err("missing object member \"meta\"".into()),
    }
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("missing array member \"rows\"")?;
    if rows.is_empty() {
        return Err("\"rows\" is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        if !matches!(row, Json::Obj(_)) {
            return Err(format!("row {i} is not an object"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_round_trips_a_valid_document() {
        let mut traj = Trajectory::new("demo");
        traj.meta("reps", Json::num(3u32));
        traj.row([("cell", Json::str("a")), ("txn_per_sec", Json::Num(1234.5))]);
        traj.row([("cell", Json::str("b")), ("txn_per_sec", Json::Num(99.0))]);
        assert_eq!(traj.len(), 2);
        let text = traj.to_json().to_string();
        let back = Json::parse(&text).expect("emitted document parses");
        validate_bench_doc(&back).expect("emitted document validates");
        assert_eq!(back.get("bench").and_then(Json::as_str), Some("demo"));
        let rows = back.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows[0].get("cell").and_then(Json::as_str), Some("a"));
    }

    #[test]
    fn write_to_produces_the_named_file() {
        let dir = std::env::temp_dir().join(format!("traj_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut traj = Trajectory::new("unit");
        traj.row([("x", Json::num(1u32))]);
        let path = traj.write_to(&dir).expect("writes");
        assert!(path.ends_with("BENCH_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        validate_bench_doc(&Json::parse(text.trim()).unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate_bench_doc(&Json::parse("{}").unwrap()).is_err());
        assert!(
            validate_bench_doc(&Json::parse(r#"{"bench":"x","meta":{},"rows":[]}"#).unwrap())
                .is_err()
        );
        assert!(
            validate_bench_doc(&Json::parse(r#"{"bench":"x","meta":{},"rows":[1]}"#).unwrap())
                .is_err()
        );
        assert!(validate_bench_doc(
            &Json::parse(r#"{"bench":"x","meta":{},"rows":[{}]}"#).unwrap()
        )
        .is_ok());
    }
}
