//! Shared harness code for the experiment binaries (`src/bin/exp*.rs`) and
//! the Criterion micro-benchmarks (`benches/`).
//!
//! Every experiment binary reproduces one claim of the paper's evaluation
//! (see `DESIGN.md` §3 and `EXPERIMENTS.md`); this library provides the
//! common pieces: configuration presets, protocol sweeps and fixed-width
//! table printing.

pub mod harness;
pub mod table;
pub mod traj;
pub mod workload;

pub use harness::{base_config, run_protocols, ProtocolRow, PROTOCOL_LABELS};
pub use traj::{validate_bench_doc, Trajectory};
pub use workload::{SkewedItems, TxnShape};
