//! Minimal fixed-width table printer used by every experiment binary.

/// Print a header row followed by a separator.
pub fn header(cols: &[&str], widths: &[usize]) {
    let row: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", row.join("  "));
    println!("{}", "-".repeat(row.join("  ").len()));
}

/// Print one data row.
pub fn row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", row.join("  "));
}
