//! M6 — micro/macro benchmark: the message plane in isolation.
//!
//! End-to-end transaction throughput (m5, exp9) mixes the engine's cost
//! (queue-manager handles, issuer state machine, per-transaction setup)
//! with the plane's; on a machine where the engine dominates, even an
//! infinitely fast transport moves the total only a little. This bench
//! strips the engine away and measures the plane itself: 8 producer
//! threads push the message sets of read-modify-write transactions
//! (8 `RequestMsg`s over 4 shard consumers, 2 per shard — the `exp9`
//! wide-transaction shape) through each plane as fast as it accepts them.
//!
//! * `ring-batched` — the `transport::ring` plane as the runtime drives
//!   it: per-shard groups in inline [`SmallBatch`]es, one enqueue per
//!   shard per transaction, consumers draining whole rings per wakeup.
//! * `mpsc-single` — the PR-2 baseline: one `std::sync::mpsc`
//!   sync-channel send per message, one recv per message.
//!
//! One benchmark iteration is one wave of `WAVE_TXNS` transactions from
//! all producers, timed until the consumers have drained every message,
//! so txns/sec is `WAVE_TXNS / (ns-per-iter * 1e-9)`. The closing summary
//! prints both planes' txn/s and the ratio — the number behind the
//! "batched transport vs mpsc baseline" ROADMAP entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;

use bench::Trajectory;
use criterion::{criterion_group, criterion_main, Criterion};
use dbmodel::{
    AccessMode, CcMethod, LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId,
};
use pam::RequestMsg;
use trace::json::Json;
use transport::batch::SmallBatch;
use transport::ring::{self, RingReceiver, RingSender};

const SHARDS: usize = 4;
const PRODUCERS: u64 = 8;
const WAVE_TXNS: u64 = 2048;
const MSGS_PER_TXN: u64 = 8;
const CAPACITY: usize = 256;

/// What travels through the plane: the commands the runtime's shards see.
enum Cmd {
    Batch(SmallBatch<RequestMsg>),
    One(RequestMsg),
    Stop,
}

fn msg(txn: u64, item: u64, shard: usize) -> RequestMsg {
    RequestMsg::Access {
        txn: TxnId(txn),
        item: PhysicalItemId::new(LogicalItemId(item), SiteId(shard as u32)),
        mode: AccessMode::Write,
        method: CcMethod::TwoPhaseLocking,
        ts: TsTuple::new(Timestamp(txn), 10),
    }
}

/// A running plane: producers hand transactions in, consumers count
/// messages out.
trait Plane {
    fn push_txn(&self, producer: u64, txn: u64);
    fn stop(self: Box<Self>);
}

struct RingPlane {
    txs: Vec<RingSender<Cmd>>,
}

impl Plane for RingPlane {
    fn push_txn(&self, _producer: u64, txn: u64) {
        // 2 messages per shard, grouped exactly like `Database::route_all`.
        for (shard, tx) in self.txs.iter().enumerate() {
            let mut batch = SmallBatch::new();
            batch.push(msg(txn, txn % 64, shard));
            batch.push(msg(txn, (txn + 1) % 64, shard));
            if tx.send(Cmd::Batch(batch)).is_err() {
                panic!("consumer vanished");
            }
        }
    }

    fn stop(self: Box<Self>) {
        for tx in &self.txs {
            let _ = tx.send(Cmd::Stop);
        }
    }
}

struct MpscPlane {
    txs: Vec<SyncSender<Cmd>>,
}

impl Plane for MpscPlane {
    fn push_txn(&self, _producer: u64, txn: u64) {
        for (shard, tx) in self.txs.iter().enumerate() {
            if tx.send(Cmd::One(msg(txn, txn % 64, shard))).is_err()
                || tx.send(Cmd::One(msg(txn, (txn + 1) % 64, shard))).is_err()
            {
                panic!("consumer vanished");
            }
        }
    }

    fn stop(self: Box<Self>) {
        for tx in &self.txs {
            let _ = tx.send(Cmd::Stop);
        }
    }
}

fn count_cmd(cmd: &Cmd, counted: &AtomicU64) -> bool {
    match cmd {
        Cmd::Batch(batch) => {
            counted.fetch_add(batch.len() as u64, Ordering::Relaxed);
            true
        }
        Cmd::One(m) => {
            std::hint::black_box(m);
            counted.fetch_add(1, Ordering::Relaxed);
            true
        }
        Cmd::Stop => false,
    }
}

fn spawn_ring_plane(
    counted: Arc<AtomicU64>,
) -> (Box<dyn Plane + Sync>, Vec<std::thread::JoinHandle<()>>) {
    let mut txs = Vec::new();
    let mut joins = Vec::new();
    for _ in 0..SHARDS {
        let (tx, mut rx): (RingSender<Cmd>, RingReceiver<Cmd>) = ring::channel(CAPACITY);
        let counted = Arc::clone(&counted);
        joins.push(std::thread::spawn(move || {
            let mut buf = Vec::with_capacity(64);
            'outer: loop {
                buf.clear();
                if rx.drain_blocking(&mut buf).is_err() {
                    break;
                }
                for cmd in &buf {
                    if !count_cmd(cmd, &counted) {
                        break 'outer;
                    }
                }
            }
        }));
        txs.push(tx);
    }
    (Box::new(RingPlane { txs }), joins)
}

fn spawn_mpsc_plane(
    counted: Arc<AtomicU64>,
) -> (Box<dyn Plane + Sync>, Vec<std::thread::JoinHandle<()>>) {
    let mut txs = Vec::new();
    let mut joins = Vec::new();
    for _ in 0..SHARDS {
        let (tx, rx): (SyncSender<Cmd>, Receiver<Cmd>) = std::sync::mpsc::sync_channel(CAPACITY);
        let counted = Arc::clone(&counted);
        joins.push(std::thread::spawn(move || {
            while let Ok(cmd) = rx.recv() {
                if !count_cmd(&cmd, &counted) {
                    break;
                }
            }
        }));
        txs.push(tx);
    }
    (Box::new(MpscPlane { txs }), joins)
}

/// Push one wave of transactions from all producers and wait until the
/// consumers have drained every message.
fn run_wave(plane: &(dyn Plane + Sync), counted: &AtomicU64, wave: u64) {
    let start = counted.load(Ordering::Relaxed);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let plane = &plane;
            scope.spawn(move || {
                for k in 0..WAVE_TXNS / PRODUCERS {
                    plane.push_txn(p, wave * WAVE_TXNS + p * 1_000 + k);
                }
            });
        }
    });
    let target = start + WAVE_TXNS * MSGS_PER_TXN;
    while counted.load(Ordering::Relaxed) < target {
        std::thread::yield_now();
    }
}

fn measured_txn_per_sec(label: &str, counted: &Arc<AtomicU64>, plane: &(dyn Plane + Sync)) -> f64 {
    // A dedicated timed pass (outside criterion's loop) for the summary.
    const WAVES: u64 = 20;
    let begun = Instant::now();
    for w in 0..WAVES {
        run_wave(plane, counted, 1_000 + w);
    }
    let txn_per_sec = (WAVES * WAVE_TXNS) as f64 / begun.elapsed().as_secs_f64();
    println!("    -> {label}: {txn_per_sec:.0} txn/s of message traffic");
    txn_per_sec
}

fn throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("m6_transport_wave2048_latency");
    let mut summary: Vec<(&str, f64)> = Vec::new();

    {
        let counted = Arc::new(AtomicU64::new(0));
        let (plane, joins) = spawn_ring_plane(Arc::clone(&counted));
        let mut wave = 0;
        group.bench_function("ring-batched/8producers-4shards", |b| {
            b.iter(|| {
                wave += 1;
                run_wave(plane.as_ref(), &counted, wave);
            });
        });
        summary.push((
            "ring-batched",
            measured_txn_per_sec("ring-batched", &counted, plane.as_ref()),
        ));
        plane.stop();
        for j in joins {
            let _ = j.join();
        }
    }
    {
        let counted = Arc::new(AtomicU64::new(0));
        let (plane, joins) = spawn_mpsc_plane(Arc::clone(&counted));
        let mut wave = 0;
        group.bench_function("mpsc-single/8producers-4shards", |b| {
            b.iter(|| {
                wave += 1;
                run_wave(plane.as_ref(), &counted, wave);
            });
        });
        summary.push((
            "mpsc-single",
            measured_txn_per_sec("mpsc-single", &counted, plane.as_ref()),
        ));
        plane.stop();
        for j in joins {
            let _ = j.join();
        }
    }
    group.finish();

    let mut traj = Trajectory::new("m6");
    traj.meta("producers", Json::Num(PRODUCERS as f64));
    traj.meta("shards", Json::num(SHARDS as u32));
    traj.meta("wave_txns", Json::Num(WAVE_TXNS as f64));
    for &(plane, txn_per_sec) in &summary {
        traj.row([
            ("plane", Json::str(plane)),
            ("txn_per_sec", Json::Num(txn_per_sec)),
        ]);
    }
    if let [(_, ring), (_, mpsc)] = summary[..] {
        println!(
            "    -> plane ratio at 8 producers x 4 shards: {:.2}x (ring-batched vs mpsc-single)",
            ring / mpsc
        );
        traj.meta("plane_ratio", Json::Num(ring / mpsc));
    }
    traj.emit();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
