//! M1 — micro-benchmark: unified queue-manager operation throughput.
//!
//! Measures the cost of one request/grant/release round trip through the
//! unified item state under each of the three protocols, and the cost of a
//! contended round where a waiter is promoted on release. The item state
//! pushes into a reusable [`QmSink`], so the numbers isolate the state
//! transitions themselves (the engine-level batched-vs-per-message
//! comparison lives in `m8_engine_core`).

use criterion::{criterion_group, criterion_main, Criterion};
use dbmodel::{
    AccessMode, CcMethod, LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId,
};
use unified_cc::{EnforcementMode, ItemState, QmSink};

fn item() -> PhysicalItemId {
    PhysicalItemId::new(LogicalItemId(1), SiteId(0))
}

fn uncontended_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("m1_uncontended_request_release");
    for method in CcMethod::ALL {
        group.bench_function(method.label(), |b| {
            let mut state = ItemState::new(item(), 0, EnforcementMode::SemiLock);
            let mut sink = QmSink::new();
            let mut ts = 0u64;
            let mut id = 0u64;
            b.iter(|| {
                ts += 1;
                id += 1;
                let txn = TxnId(id);
                sink.clear();
                state.handle_access(
                    txn,
                    SiteId(0),
                    AccessMode::Write,
                    method,
                    TsTuple::new(Timestamp(ts), 10),
                    &mut sink,
                );
                state.handle_release(
                    txn,
                    Some(ts as i64),
                    Timestamp::ZERO,
                    Timestamp::ZERO,
                    &mut sink,
                );
                std::hint::black_box(sink.replies.len());
            });
        });
    }
    group.finish();
}

fn contended_round(c: &mut Criterion) {
    c.bench_function("m1_contended_writer_queue_of_8", |b| {
        let mut sink = QmSink::new();
        let mut ts = 0u64;
        let mut id = 0u64;
        b.iter(|| {
            let mut state = ItemState::new(item(), 0, EnforcementMode::SemiLock);
            let base = id;
            sink.clear();
            for k in 0..8 {
                ts += 1;
                id += 1;
                state.handle_access(
                    TxnId(id),
                    SiteId((k % 4) as u32),
                    AccessMode::Write,
                    CcMethod::PrecedenceAgreement,
                    TsTuple::new(Timestamp(ts), 10),
                    &mut sink,
                );
            }
            for k in 1..=8 {
                state.handle_release(
                    TxnId(base + k),
                    Some(k as i64),
                    Timestamp::ZERO,
                    Timestamp::ZERO,
                    &mut sink,
                );
            }
            std::hint::black_box(state.value());
        });
    });
}

criterion_group!(benches, uncontended_round, contended_round);
criterion_main!(benches);
