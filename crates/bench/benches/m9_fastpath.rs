//! M9 — micro-benchmark: the coordination-avoidance fast path.
//!
//! The commutative-increment Zipfian shape (two `add` ops per transaction
//! on skew-picked distinct items — the confluent analogue of exp10's
//! `rmw` transfer) is driven through the live runtime twice, over one
//! shard each:
//!
//! * `fastpath` — `confluence_fastpath = true`: the classifier routes
//!   every increment around the queue manager into the shard's
//!   direct-apply bypass (one `ApplyConfluent` command + one oneshot
//!   reply; no registry registration, no grants, no release
//!   conversation).
//! * `coordinated` — `confluence_fastpath = false`: the identical spec
//!   stream runs the full `begin`/stage/`commit` machinery (register,
//!   per-item access fan-out, write grants, releases).
//!
//! Unlike m1–m8 this harness does **not** use the adaptive Criterion
//! loop: every committed transaction appends to the per-item
//! implementation logs (the serializability oracle's input), so the
//! workload must be a *fixed, bounded* history — both to keep memory
//! flat and so the closing `serializable()` certification stays
//! tractable. The measurement is the same alternating-blocks-of-waves
//! median scheme the m7/m8 gates use, just with a fixed block count.
//!
//! The closing summary prints both modes' txn/s and the ratio;
//! `M9_GATE=<ratio>` (the CI floor, set to 2.0 per the PR 8 acceptance
//! bar) fails the process if `fastpath` falls below `<ratio>` ×
//! `coordinated`. Both runs must finish with a serializability-certified
//! history and — on the fast side — a 100% fast-path application rate,
//! so the speedup being measured is the safe bypass, not a broken one.
//! The summary lands in `BENCH_m9.json` (see [`bench::traj`]).

use std::time::Instant;

use bench::{SkewedItems, Trajectory};
use dbmodel::Value;
use runtime::{Database, RuntimeConfig, TxnSpec};
use simkit::rng::SimRng;
use trace::json::Json;

const ITEMS: u64 = 1024;
const THETA: f64 = 0.99;
/// Adds per transaction (the 2-item increment shape).
const OPS_PER_TXN: usize = 2;
const WAVE_TXNS: u64 = 256;
const REPS: usize = 5;
const BLOCK_WAVES: u64 = 8;

fn open(fastpath: bool) -> Database {
    Database::open(RuntimeConfig {
        num_shards: 1,
        num_items: ITEMS,
        confluence_fastpath: fastpath,
        ..RuntimeConfig::default()
    })
    .expect("config is valid")
}

/// Drive one wave of skew-picked 2-add increments through `db.execute`.
fn run_wave(db: &Database, skew: &SkewedItems, rng: &mut SimRng) {
    for _ in 0..WAVE_TXNS {
        let picked = skew.pick_distinct(rng, OPS_PER_TXN);
        let mut spec = TxnSpec::new();
        for item in picked {
            spec = spec.add(item, 1);
        }
        let receipt = db.execute(&spec).expect("increment commits");
        std::hint::black_box(receipt.id);
    }
}

/// One measurement block: `BLOCK_WAVES` waves, returning txn/s.
fn measure(db: &Database, skew: &SkewedItems, rng: &mut SimRng) -> f64 {
    let begun = Instant::now();
    for _ in 0..BLOCK_WAVES {
        run_wave(db, skew, rng);
    }
    (BLOCK_WAVES * WAVE_TXNS) as f64 / begun.elapsed().as_secs_f64()
}

fn main() {
    println!("m9: coordination-avoidance fast path vs full coordination");
    let fast_db = open(true);
    let coord_db = open(false);
    let skew = SkewedItems::new(ITEMS, THETA);
    let mut fast_rng = SimRng::new(42);
    let mut coord_rng = SimRng::new(42);

    // Warm-up block per mode (allocator, thread parking, branch state).
    run_wave(&fast_db, &skew, &mut fast_rng);
    run_wave(&coord_db, &skew, &mut coord_rng);

    // Alternating measurement blocks, medians compared (same rationale
    // as the m7/m8 gates).
    let mut fast_runs = Vec::new();
    let mut coord_runs = Vec::new();
    for rep in 0..REPS {
        let f = measure(&fast_db, &skew, &mut fast_rng);
        let c = measure(&coord_db, &skew, &mut coord_rng);
        println!("    rep {rep}: fastpath {f:>10.0} txn/s   coordinated {c:>10.0} txn/s");
        fast_runs.push(f);
        coord_runs.push(c);
    }
    let median = |runs: &mut Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let (fast, coord) = (median(&mut fast_runs), median(&mut coord_runs));

    // Correctness backstop: the speedup only counts if the fast side
    // actually bypassed (100% application rate on this single-site
    // shape) and both histories certify serializable.
    let fast_stats = fast_db.stats();
    assert_eq!(
        fast_stats.fastpath_refused, 0,
        "uncontended single-client increments must never be refused"
    );
    assert_eq!(fast_stats.fastpath_applied, fast_stats.committed);
    let coord_stats = coord_db.stats();
    assert_eq!(coord_stats.fastpath_applied, 0, "baseline must coordinate");
    let committed_each = fast_stats.committed;
    let fast_report = fast_db.shutdown().expect("fast shutdown");
    let coord_report = coord_db.shutdown().expect("coordinated shutdown");
    fast_report
        .serializable()
        .expect("fast-path history certifies");
    coord_report
        .serializable()
        .expect("coordinated history certifies");
    let total_adds: Value = fast_report
        .logs
        .iter()
        .map(|(_, log)| log.entries().len() as Value)
        .sum();
    assert_eq!(
        total_adds,
        committed_each as Value * OPS_PER_TXN as Value,
        "every applied add must be in the execution log"
    );

    println!(
        "    -> fastpath: {fast:.0} 2-add txn/s through the bypass (median of {REPS}, \
         {} applied / {} refused, history certified)",
        fast_stats.fastpath_applied, fast_stats.fastpath_refused
    );
    println!(
        "    -> coordinated: {coord:.0} 2-add txn/s through grants (median of {REPS}, \
         history certified)"
    );
    let ratio = fast / coord;
    println!(
        "    -> fast-path ratio on the {OPS_PER_TXN}-add Zipfian(θ={THETA}) shape: \
         {ratio:.2}x (fastpath vs coordinated, alternating medians)"
    );

    let mut traj = Trajectory::new("m9");
    traj.meta("reps", Json::num(REPS as u32));
    traj.meta("block_waves", Json::Num(BLOCK_WAVES as f64));
    traj.meta("wave_txns", Json::Num(WAVE_TXNS as f64));
    traj.meta("theta", Json::Num(THETA));
    traj.meta("fastpath_ratio", Json::Num(ratio));
    for (mode, txn_per_sec) in [("fastpath", fast), ("coordinated", coord)] {
        traj.row([
            ("mode", Json::str(mode)),
            ("txn_per_sec", Json::Num(txn_per_sec)),
        ]);
    }
    traj.emit();

    if let Some(gate) = std::env::var("M9_GATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        if ratio < gate {
            eprintln!(
                "FAIL: the coordination-avoidance fast path is below the required \
                 {gate:.2}x of the all-coordinated baseline"
            );
            std::process::exit(1);
        }
        println!("    -> m9 gate passed (required {gate:.2}x)");
    }
}
