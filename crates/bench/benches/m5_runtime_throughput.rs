//! M5 — macro-benchmark: live runtime commit throughput vs. thread count.
//!
//! Runs batches of read-modify-write transactions against a 4-shard
//! [`runtime::Database`] from 1/2/4/8 client threads, once with every
//! transaction pinned to static 2PL, once under the unified mixed
//! assignment (one third of the traffic per protocol), and once under the
//! cached dynamic STL policy. One benchmark iteration is one batch of 64
//! transactions, so committed txns/sec is `64 / (ns-per-iter * 1e-9)`.
//! Each dynamic cell also prints the selector overhead (µs per selection,
//! cache hit rate) — the number that demonstrates the selection cache
//! closed the ~500× per-transaction gap to the static policies.
//!
//! For CI smoke runs, `M5_THREADS=<n>` restricts the sweep to one thread
//! count and `M5_POLICY=<label>` to one policy.

use bench::Trajectory;
use criterion::{criterion_group, criterion_main, Criterion};
use dbmodel::{CcMethod, LogicalItemId};
use runtime::{CcPolicy, Database, RuntimeConfig, TransportKind, TxnSpec};
use trace::json::Json;

const ITEMS: u64 = 64;
const BATCH: u64 = 64;

fn db(policy: CcPolicy, transport: TransportKind) -> Database {
    Database::open(RuntimeConfig {
        num_shards: 4,
        num_items: ITEMS,
        initial_value: 100,
        policy,
        transport,
        ..RuntimeConfig::default()
    })
    .expect("valid config")
}

/// Run one batch of `BATCH` transfers spread over `threads` client threads.
fn run_batch(db: &Database, threads: u64, round: u64) {
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for k in 0..BATCH / threads {
                    let i = t * 31 + k * 7 + round;
                    let from = LogicalItemId(i % ITEMS);
                    let to = LogicalItemId((i * 3 + 1) % ITEMS);
                    if from == to {
                        continue;
                    }
                    let spec = TxnSpec::new().write(from).write(to);
                    db.run_transaction(&spec, |reads| {
                        vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
                    })
                    .expect("benchmark transaction commits");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("benchmark worker panicked");
    }
}

fn throughput(c: &mut Criterion) {
    let thread_filter: Option<u64> = std::env::var("M5_THREADS")
        .ok()
        .and_then(|s| s.parse().ok());
    let policy_filter: Option<String> = std::env::var("M5_POLICY").ok();

    let mut group = c.benchmark_group("m5_runtime_batch64_latency");
    let mut traj = Trajectory::new("m5");
    traj.meta("batch", Json::Num(BATCH as f64));
    traj.meta("items", Json::Num(ITEMS as f64));
    for (label, policy, transport) in [
        (
            "static-2pl",
            CcPolicy::Static(CcMethod::TwoPhaseLocking),
            TransportKind::BatchedRing,
        ),
        (
            // The pre-batching baseline plane, for the transport
            // before/after comparison on the same workload.
            "static-2pl-mpsc",
            CcPolicy::Static(CcMethod::TwoPhaseLocking),
            TransportKind::Mpsc,
        ),
        (
            "unified-mixed",
            CcPolicy::Mix {
                p_2pl: 0.34,
                p_to: 0.33,
            },
            TransportKind::BatchedRing,
        ),
        (
            "dynamic-stl",
            CcPolicy::DynamicStl,
            TransportKind::BatchedRing,
        ),
    ] {
        if policy_filter.as_deref().is_some_and(|p| p != label) {
            continue;
        }
        for threads in [1u64, 2, 4, 8] {
            if thread_filter.is_some_and(|t| t != threads) {
                continue;
            }
            let database = db(policy, transport);
            let mut round = 0u64;
            group.bench_function(format!("{label}/{threads}threads"), |b| {
                b.iter(|| {
                    round += 1;
                    run_batch(&database, threads, round);
                });
            });
            // A dedicated timed pass outside criterion's loop for the
            // summary and the JSON trajectory.
            const SUMMARY_BATCHES: u64 = 5;
            let begun = std::time::Instant::now();
            for _ in 0..SUMMARY_BATCHES {
                round += 1;
                run_batch(&database, threads, round);
            }
            let txn_per_sec = (SUMMARY_BATCHES * BATCH) as f64 / begun.elapsed().as_secs_f64();
            let stats = database.stats();
            let report = database.shutdown().expect("shutdown");
            assert!(report.serializable().is_ok());
            println!(
                "    -> {label}/{threads}threads: {} committed, {} restarts, {} PA backoffs, \
                 {txn_per_sec:.0} txn/s over the summary pass",
                stats.committed,
                stats.restarts(),
                stats.backoff_rounds
            );
            if stats.selections > 0 {
                println!(
                    "       selector: {} selections, {:.1} µs/selection, {:.1}% cache hits, {} refits",
                    stats.selections,
                    stats.selection_micros_per_txn(),
                    stats.cache.hit_rate() * 100.0,
                    stats.cache.refits
                );
            }
            traj.row([
                ("policy", Json::str(label)),
                ("threads", Json::Num(threads as f64)),
                ("txn_per_sec", Json::Num(txn_per_sec)),
                ("committed", Json::Num(stats.committed as f64)),
                ("restarts", Json::Num(stats.restarts() as f64)),
                ("backoff_rounds", Json::Num(stats.backoff_rounds as f64)),
                (
                    "sel_us",
                    if stats.selections > 0 {
                        Json::Num(stats.selection_micros_per_txn())
                    } else {
                        Json::Null
                    },
                ),
                (
                    "cache_hit_pct",
                    if stats.cache.hits + stats.cache.misses > 0 {
                        Json::Num(stats.cache.hit_rate() * 100.0)
                    } else {
                        Json::Null
                    },
                ),
                ("trace_events", Json::Num(stats.trace_events as f64)),
            ]);
        }
    }
    group.finish();
    if !traj.is_empty() {
        traj.emit();
    }
}

criterion_group!(benches, throughput);
criterion_main!(benches);
