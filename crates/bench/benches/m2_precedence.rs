//! M2 — micro-benchmark: unified precedence assignment and data-queue
//! maintenance (the paper's Section 4.1 machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use dbmodel::{AccessMode, CcMethod, SiteId, Timestamp, TxnId};
use pam::precedence::AssignmentPolicy;
use pam::queue::{DataQueue, EntryStatus, QueueEntry};

fn assignment(c: &mut Criterion) {
    c.bench_function("m2_precedence_assignment_mixed", |b| {
        let mut policy = AssignmentPolicy::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let method = CcMethod::ALL[(i % 3) as usize];
            let p = policy.assign(method, Timestamp(i), SiteId((i % 8) as u32), TxnId(i));
            std::hint::black_box(p);
        });
    });
}

fn queue_insert_remove(c: &mut Criterion) {
    c.bench_function("m2_data_queue_insert_grant_remove_64", |b| {
        let mut policy = AssignmentPolicy::new();
        let mut i = 0u64;
        b.iter(|| {
            let mut queue = DataQueue::new();
            let base = i;
            for _ in 0..64 {
                i += 1;
                let method = CcMethod::ALL[(i % 3) as usize];
                let precedence = policy.assign(
                    method,
                    Timestamp(i ^ 0x5a5a),
                    SiteId((i % 8) as u32),
                    TxnId(i),
                );
                queue.insert(QueueEntry {
                    txn: TxnId(i),
                    mode: if i.is_multiple_of(4) {
                        AccessMode::Write
                    } else {
                        AccessMode::Read
                    },
                    method,
                    precedence,
                    status: EntryStatus::Accepted,
                    granted: false,
                });
            }
            for k in 1..=64 {
                queue.mark_granted(TxnId(base + k));
                queue.remove(TxnId(base + k));
            }
            std::hint::black_box(queue.len());
        });
    });
}

criterion_group!(benches, assignment, queue_insert_remove);
criterion_main!(benches);
