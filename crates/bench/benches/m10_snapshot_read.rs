//! M10 — micro-benchmark: the MVCC snapshot-read plane.
//!
//! A read-heavy Zipfian mix (waves of 4-item read-only transactions with
//! a sprinkle of skew-picked coordinated puts — the read-mostly analogue
//! of m9's increment shape) is driven through the live runtime twice,
//! over one shard each:
//!
//! * `snapshot` — `snapshot_reads = true`: every read-only transaction is
//!   classified at the client and served from the version chains at the
//!   read watermark (one `SnapshotRead` command + one oneshot reply; no
//!   registration, no grants, no wait edges, no restarts).
//! * `coordinated` — `snapshot_reads = false`: the identical spec stream
//!   acquires real share grants through the queue managers (register,
//!   per-item access fan-out, release conversation).
//!
//! The confluence fast path is off in **both** modes so the comparison
//! isolates the read plane; the writer sprinkle coordinates identically
//! on each side and keeps the version chains advancing (every snapshot
//! answer is a real chain walk, not a frozen seed version).
//!
//! Like m9 this harness does not use the adaptive Criterion loop: every
//! committed transaction appends to the implementation logs feeding the
//! serializability oracle, so the workload is a fixed, bounded history
//! measured with alternating blocks and compared by medians.
//!
//! The closing summary prints both modes' txn/s and the ratio;
//! `M10_GATE=<ratio>` (the CI floor, 1.5 per the PR 10 acceptance bar)
//! fails the process if `snapshot` falls below `<ratio>` × `coordinated`.
//! Both runs must finish serializability-certified, and on the snapshot
//! side with a 100% serve rate (zero refusals), so the speedup being
//! measured is the safe watermark read, not a broken one. The summary
//! lands in `BENCH_m10.json` (see [`bench::traj`]).

use std::time::Instant;

use bench::{SkewedItems, Trajectory};
use runtime::{Database, RuntimeConfig, TxnSpec};
use simkit::rng::SimRng;
use trace::json::Json;

const ITEMS: u64 = 1024;
const THETA: f64 = 0.99;
/// Reads per read-only transaction.
const READS_PER_TXN: usize = 4;
/// One coordinated put per this many read transactions (read-mostly).
const WRITE_EVERY: u64 = 16;
const WAVE_TXNS: u64 = 256;
const REPS: usize = 5;
const BLOCK_WAVES: u64 = 8;

fn open(snapshot: bool) -> Database {
    Database::open(RuntimeConfig {
        num_shards: 1,
        num_items: ITEMS,
        snapshot_reads: snapshot,
        confluence_fastpath: false,
        ..RuntimeConfig::default()
    })
    .expect("config is valid")
}

/// Drive one wave of the read-mostly mix through `db.execute`.
fn run_wave(db: &Database, skew: &SkewedItems, rng: &mut SimRng) {
    for k in 0..WAVE_TXNS {
        if k % WRITE_EVERY == WRITE_EVERY - 1 {
            let item = skew.pick_distinct(rng, 1)[0];
            let receipt = db
                .execute(&TxnSpec::new().put(item, k as i64))
                .expect("put commits");
            std::hint::black_box(receipt.id);
            continue;
        }
        let mut spec = TxnSpec::new();
        for item in skew.pick_distinct(rng, READS_PER_TXN) {
            spec = spec.read(item);
        }
        let receipt = db.execute(&spec).expect("read-only txn commits");
        std::hint::black_box(receipt.reads.len());
    }
}

/// One measurement block: `BLOCK_WAVES` waves, returning txn/s.
fn measure(db: &Database, skew: &SkewedItems, rng: &mut SimRng) -> f64 {
    let begun = Instant::now();
    for _ in 0..BLOCK_WAVES {
        run_wave(db, skew, rng);
    }
    (BLOCK_WAVES * WAVE_TXNS) as f64 / begun.elapsed().as_secs_f64()
}

fn main() {
    println!("m10: MVCC snapshot reads vs all-coordinated share grants");
    let snap_db = open(true);
    let coord_db = open(false);
    let skew = SkewedItems::new(ITEMS, THETA);
    let mut snap_rng = SimRng::new(42);
    let mut coord_rng = SimRng::new(42);

    // Warm-up block per mode (allocator, thread parking, branch state).
    run_wave(&snap_db, &skew, &mut snap_rng);
    run_wave(&coord_db, &skew, &mut coord_rng);

    // Alternating measurement blocks, medians compared (same rationale
    // as the m7/m8/m9 gates).
    let mut snap_runs = Vec::new();
    let mut coord_runs = Vec::new();
    for rep in 0..REPS {
        let s = measure(&snap_db, &skew, &mut snap_rng);
        let c = measure(&coord_db, &skew, &mut coord_rng);
        println!("    rep {rep}: snapshot {s:>10.0} txn/s   coordinated {c:>10.0} txn/s");
        snap_runs.push(s);
        coord_runs.push(c);
    }
    let median = |runs: &mut Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let (snap, coord) = (median(&mut snap_runs), median(&mut coord_runs));

    // Correctness backstop: the speedup only counts if the snapshot side
    // actually served every read-only transaction from the chains (zero
    // refusals — a quiesced watermark version is always retained) and
    // both histories certify serializable.
    let snap_stats = snap_db.stats();
    let read_txns = snap_stats.committed - snap_stats.committed / WRITE_EVERY;
    assert_eq!(
        snap_stats.snapshot_refused, 0,
        "a quiesced single-client mix must never be refused"
    );
    assert_eq!(snap_stats.snapshot_reads, read_txns);
    assert_eq!(snap_stats.grants, snap_stats.committed / WRITE_EVERY);
    let coord_stats = coord_db.stats();
    assert_eq!(coord_stats.snapshot_reads, 0, "baseline must coordinate");
    let snap_report = snap_db.shutdown().expect("snapshot shutdown");
    let coord_report = coord_db.shutdown().expect("coordinated shutdown");
    snap_report
        .serializable()
        .expect("snapshot history certifies");
    coord_report
        .serializable()
        .expect("coordinated history certifies");

    println!(
        "    -> snapshot: {snap:.0} {READS_PER_TXN}-read txn/s from the version chains \
         (median of {REPS}, {} served / {} refused, history certified)",
        snap_stats.snapshot_reads, snap_stats.snapshot_refused
    );
    println!(
        "    -> coordinated: {coord:.0} {READS_PER_TXN}-read txn/s through share grants \
         (median of {REPS}, history certified)"
    );
    let ratio = snap / coord;
    println!(
        "    -> snapshot-read ratio on the {READS_PER_TXN}-read Zipfian(θ={THETA}) \
         read-mostly shape: {ratio:.2}x (snapshot vs coordinated, alternating medians)"
    );

    let mut traj = Trajectory::new("m10");
    traj.meta("reps", Json::num(REPS as u32));
    traj.meta("block_waves", Json::Num(BLOCK_WAVES as f64));
    traj.meta("wave_txns", Json::Num(WAVE_TXNS as f64));
    traj.meta("theta", Json::Num(THETA));
    traj.meta("reads_per_txn", Json::num(READS_PER_TXN as u32));
    traj.meta("write_every", Json::Num(WRITE_EVERY as f64));
    traj.meta("snapshot_ratio", Json::Num(ratio));
    for (mode, txn_per_sec) in [("snapshot", snap), ("coordinated", coord)] {
        traj.row([
            ("mode", Json::str(mode)),
            ("txn_per_sec", Json::Num(txn_per_sec)),
        ]);
    }
    traj.emit();

    if let Some(gate) = std::env::var("M10_GATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        if ratio < gate {
            eprintln!(
                "FAIL: the snapshot-read plane is below the required {gate:.2}x of \
                 the all-coordinated baseline"
            );
            std::process::exit(1);
        }
        println!("    -> m10 gate passed (required {gate:.2}x)");
    }
}
