//! M7 — micro/macro benchmark: the reply plane in isolation.
//!
//! The m6 bench isolated the client→shard direction; this one isolates
//! the way back. One registration + delivery round-trip is what every
//! transaction incarnation pays before its first grant can reach it:
//! bind the transaction id to a reply endpoint, have shards route reply
//! batches to it, wake the waiting client, tear the binding down. Two
//! implementations:
//!
//! * `mailbox-slab` — the lock-free plane as the runtime drives it:
//!   each client holds one reusable slab [`Mailbox`] for the whole run;
//!   a round-trip is `register` (one CAS into the packed index), one
//!   coalesced reply batch delivered by each shard (index load +
//!   ring push, no lock), a filtered consumer drain, `deregister`
//!   (one CAS).
//! * `mpsc-registry` — the PR-3 baseline: a global `Mutex<HashMap>` of
//!   per-incarnation `std::sync::mpsc` senders; a round-trip allocates
//!   a fresh channel, inserts under the lock, and every shard's
//!   delivery locks the map again to find the sender.
//!
//! 8 client threads run round-trips against 4 shard threads; each
//! transaction's request fans out to all shards and each shard answers
//! with one coalesced batch of 2 replies (the exp9 wide-transaction
//! reply shape). One benchmark iteration is one wave of `WAVE_TXNS`
//! round-trips; the closing summary prints both planes' round-trips/s
//! and the ratio. `M7_GATE=<ratio>` (the CI floor) fails the process if
//! `mailbox-slab` falls below `<ratio>` × `mpsc-registry`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bench::Trajectory;
use criterion::{criterion_group, criterion_main, Criterion};
use dbmodel::{LogicalItemId, PhysicalItemId, SiteId, TxnId};
use pam::ReplyMsg;
use trace::json::Json;
use transport::batch::SmallBatch;
use transport::mailbox::{MailboxOptions, MailboxRegistry};
use transport::ring::{self, RingReceiver, RingSender};

const SHARDS: usize = 4;
const CLIENTS: u64 = 8;
const WAVE_TXNS: u64 = 2048;
const REPLIES_PER_SHARD: usize = 2;

/// One coalesced reply event, as `Registry::deliver_all` produces it.
type ReplyBatch = SmallBatch<ReplyMsg>;

fn reply(txn: u64, item: u64, shard: usize) -> ReplyMsg {
    ReplyMsg::Ack {
        txn: TxnId(txn),
        item: PhysicalItemId::new(LogicalItemId(item), SiteId(shard as u32)),
    }
}

fn batch_for(txn: u64, shard: usize) -> ReplyBatch {
    (0..REPLIES_PER_SHARD as u64)
        .map(|i| reply(txn, txn % 64 + i, shard))
        .collect()
}

/// What a shard consumes: "transaction `txn` expects your reply batch".
#[derive(Debug)]
enum Work {
    Reply { txn: u64 },
    Stop,
}

/// A running reply plane: clients drive registration+delivery
/// round-trips through it.
trait Plane: Sync {
    /// Register `txn`, ask every shard for its reply batch, wait for all
    /// of them, deregister. `client` identifies the calling thread.
    fn round_trip(&self, client: u64, txn: u64);
    fn stop(&self);
}

/// The lock-free slab plane.
struct MailboxPlane {
    registry: MailboxRegistry<ReplyBatch>,
    shards: Vec<RingSender<Work>>,
    /// One reusable mailbox per client thread, parked here between
    /// waves (acquired once for the whole benchmark).
    mailboxes: Vec<Mutex<transport::mailbox::Mailbox<ReplyBatch>>>,
}

impl Plane for MailboxPlane {
    fn round_trip(&self, client: u64, txn: u64) {
        let mut mailbox = self.mailboxes[client as usize]
            .try_lock()
            .expect("one thread per client mailbox");
        self.registry.register(txn, 0, &mut mailbox);
        for shard in &self.shards {
            shard.send(Work::Reply { txn }).expect("shard alive");
        }
        let mut got = 0;
        while got < SHARDS {
            if mailbox
                .recv_timeout(txn, std::time::Duration::from_secs(5))
                .is_some()
            {
                got += 1;
            } else {
                panic!("reply batch lost");
            }
        }
        self.registry.deregister(txn);
    }

    fn stop(&self) {
        for shard in &self.shards {
            let _ = shard.send(Work::Stop);
        }
    }
}

/// The mpsc baseline: global locked map + per-incarnation channels.
struct MpscPlane {
    registry: Arc<Mutex<HashMap<u64, Sender<ReplyBatch>>>>,
    shards: Vec<SyncSender<Work>>,
}

impl Plane for MpscPlane {
    fn round_trip(&self, _client: u64, txn: u64) {
        let (tx, rx): (Sender<ReplyBatch>, Receiver<ReplyBatch>) = std::sync::mpsc::channel();
        self.registry
            .lock()
            .expect("registry poisoned")
            .insert(txn, tx);
        for shard in &self.shards {
            shard.send(Work::Reply { txn }).expect("shard alive");
        }
        for _ in 0..SHARDS {
            rx.recv_timeout(std::time::Duration::from_secs(5))
                .expect("reply batch lost");
        }
        self.registry
            .lock()
            .expect("registry poisoned")
            .remove(&txn);
    }

    fn stop(&self) {
        for shard in &self.shards {
            let _ = shard.send(Work::Stop);
        }
    }
}

fn spawn_mailbox_plane() -> (Arc<MailboxPlane>, Vec<std::thread::JoinHandle<()>>) {
    let registry = MailboxRegistry::with_options(MailboxOptions {
        max_clients: CLIENTS as usize,
        ..MailboxOptions::default()
    });
    let mut shards = Vec::new();
    let mut joins = Vec::new();
    for shard_id in 0..SHARDS {
        let (tx, mut rx): (RingSender<Work>, RingReceiver<Work>) = ring::channel(256);
        let registry = registry.clone();
        joins.push(std::thread::spawn(move || {
            let mut buf = Vec::with_capacity(64);
            'outer: loop {
                buf.clear();
                if rx.drain_blocking(&mut buf).is_err() {
                    break;
                }
                for work in buf.drain(..) {
                    match work {
                        Work::Reply { txn } => {
                            registry.deliver(txn, batch_for(txn, shard_id));
                        }
                        Work::Stop => break 'outer,
                    }
                }
            }
        }));
        shards.push(tx);
    }
    let mailboxes = (0..CLIENTS)
        .map(|_| Mutex::new(registry.acquire().expect("mailbox slab exhausted")))
        .collect();
    (
        Arc::new(MailboxPlane {
            registry,
            shards,
            mailboxes,
        }),
        joins,
    )
}

fn spawn_mpsc_plane() -> (Arc<MpscPlane>, Vec<std::thread::JoinHandle<()>>) {
    let registry: Arc<Mutex<HashMap<u64, Sender<ReplyBatch>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let mut shards = Vec::new();
    let mut joins = Vec::new();
    for shard_id in 0..SHARDS {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Work>(256);
        let registry = Arc::clone(&registry);
        joins.push(std::thread::spawn(move || {
            while let Ok(work) = rx.recv() {
                match work {
                    Work::Reply { txn } => {
                        // One lock per delivery, as `Registry::deliver_all`
                        // pays per flush on the mpsc plane.
                        let map = registry.lock().expect("registry poisoned");
                        if let Some(sender) = map.get(&txn) {
                            let _ = sender.send(batch_for(txn, shard_id));
                        }
                    }
                    Work::Stop => break,
                }
            }
        }));
        shards.push(tx);
    }
    (Arc::new(MpscPlane { registry, shards }), joins)
}

/// One wave: all clients run their share of round-trips concurrently.
fn run_wave(plane: &dyn Plane, txn_base: &AtomicU64) {
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let plane = &plane;
            let txn_base = &txn_base;
            scope.spawn(move || {
                for _ in 0..WAVE_TXNS / CLIENTS {
                    // Ids must be unique forever (the slab's tag relies
                    // on it, like the runtime's monotone TxnIds).
                    let txn = txn_base.fetch_add(1, Ordering::Relaxed);
                    plane.round_trip(client, txn);
                }
            });
        }
    });
}

/// Round-trips/s over one block of `waves` waves.
fn measure_block(plane: &dyn Plane, txn_base: &AtomicU64, waves: u64) -> f64 {
    let begun = Instant::now();
    for _ in 0..waves {
        run_wave(plane, txn_base);
    }
    (waves * WAVE_TXNS) as f64 / begun.elapsed().as_secs_f64()
}

fn throughput(c: &mut Criterion) {
    // Both planes run for the whole benchmark (idle shard consumers
    // park) so the gate comparison below can alternate between them.
    let mail_base = AtomicU64::new(1);
    let mpsc_base = AtomicU64::new(1);
    let (mail_plane, mail_joins) = spawn_mailbox_plane();
    let (mpsc_plane, mpsc_joins) = spawn_mpsc_plane();

    let mut group = c.benchmark_group("m7_reply_wave2048_latency");
    group.bench_function("mailbox-slab/8clients-4shards", |b| {
        b.iter(|| run_wave(mail_plane.as_ref(), &mail_base));
    });
    group.bench_function("mpsc-registry/8clients-4shards", |b| {
        b.iter(|| run_wave(mpsc_plane.as_ref(), &mpsc_base));
    });
    group.finish();

    // The gated comparison alternates measurement blocks between the two
    // planes and compares medians — a sequential pair of one-shot
    // measurements on a shared runner swings by tens of percent, which a
    // 1.0x floor cannot absorb (same rationale as exp9's gate cells).
    const REPS: usize = 5;
    const BLOCK_WAVES: u64 = 5;
    let mut mail_runs = Vec::new();
    let mut mpsc_runs = Vec::new();
    for _ in 0..REPS {
        mail_runs.push(measure_block(mail_plane.as_ref(), &mail_base, BLOCK_WAVES));
        mpsc_runs.push(measure_block(mpsc_plane.as_ref(), &mpsc_base, BLOCK_WAVES));
    }
    let median = |runs: &mut Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let (mailbox, mpsc) = (median(&mut mail_runs), median(&mut mpsc_runs));
    println!(
        "    -> mailbox-slab: {mailbox:.0} registration+reply round-trips/s (median of {REPS})"
    );
    println!("    -> mpsc-registry: {mpsc:.0} registration+reply round-trips/s (median of {REPS})");

    mail_plane.stop();
    mpsc_plane.stop();
    for j in mail_joins.into_iter().chain(mpsc_joins) {
        let _ = j.join();
    }

    let ratio = mailbox / mpsc;
    println!(
        "    -> reply-plane ratio at {CLIENTS} clients x {SHARDS} shards: \
         {ratio:.2}x (mailbox-slab vs mpsc-registry, alternating medians)"
    );
    let mut traj = Trajectory::new("m7");
    traj.meta("clients", Json::Num(CLIENTS as f64));
    traj.meta("shards", Json::num(SHARDS as u32));
    traj.meta("wave_txns", Json::Num(WAVE_TXNS as f64));
    traj.meta("reps", Json::num(REPS as u32));
    traj.meta("reply_ratio", Json::Num(ratio));
    for (plane, round_trips_per_sec) in [("mailbox-slab", mailbox), ("mpsc-registry", mpsc)] {
        traj.row([
            ("plane", Json::str(plane)),
            ("round_trips_per_sec", Json::Num(round_trips_per_sec)),
        ]);
    }
    traj.emit();
    if let Some(gate) = std::env::var("M7_GATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        if ratio < gate {
            eprintln!(
                "FAIL: mailbox-slab reply plane is below the required \
                 {gate:.2}x of the mpsc-registry baseline"
            );
            std::process::exit(1);
        }
        println!("    -> m7 gate passed (required {gate:.2}x)");
    }
}

criterion_group!(benches, throughput);
criterion_main!(benches);
