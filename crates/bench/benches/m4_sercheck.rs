//! M4 — micro-benchmark: serializability-oracle cost.
//!
//! The oracle is run after every simulation in the experiment suite; this
//! measures conflict-graph construction plus topological sort on a synthetic
//! execution of configurable size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbmodel::{AccessMode, LogSet, LogicalItemId, PhysicalItemId, SiteId, TxnId};
use sercheck::check_serializable;
use simkit::rng::SimRng;

/// Build a serializable execution of `txns` transactions over `items` items
/// (each transaction touches 4 items, implemented in transaction-id order so
/// the graph is acyclic).
fn synthetic_logs(txns: u64, items: u64, seed: u64) -> LogSet {
    let mut logs = LogSet::new();
    let mut rng = SimRng::new(seed);
    for t in 0..txns {
        for _ in 0..4 {
            let item = PhysicalItemId::new(
                LogicalItemId(rng.next_below(items)),
                SiteId((rng.next_below(4)) as u32),
            );
            let mode = if rng.next_bool(0.4) {
                AccessMode::Write
            } else {
                AccessMode::Read
            };
            logs.record(item, TxnId(t), mode);
        }
    }
    logs
}

fn oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("m4_serializability_check");
    for &txns in &[100u64, 500, 2_000] {
        let logs = synthetic_logs(txns, txns / 2, 7);
        group.bench_with_input(BenchmarkId::from_parameter(txns), &logs, |b, logs| {
            b.iter(|| {
                let verdict = check_serializable(std::hint::black_box(logs));
                std::hint::black_box(verdict.is_ok());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, oracle);
criterion_main!(benches);
