//! M8 — micro-benchmark: the engine core in isolation.
//!
//! m6 isolated the client→shard plane and m7 the way back; this one
//! isolates what sits between them — the queue-manager engine itself, on
//! the exp9 wide-transaction gate shape (one 8-item write transaction =
//! 8 `Access` + 8 `Release` messages against one site). Two engines
//! consume identical message streams:
//!
//! * `dense-batched` — the engine as the runtime drives it since the
//!   sink refactor: a [`QueueManager`] resolving items through its dense
//!   slot table, one `handle_batch` call per transaction phase pushing
//!   into a reusable [`QmSink`] (zero allocations per steady-state
//!   batch).
//! * `btree-per-message` — the seed engine's shape, reconstructed over
//!   the same item-state core: a `BTreeMap<PhysicalItemId, ItemState>`
//!   looked up per message, with every message materialising an owned
//!   `QmOutput { Vec<ReplyMsg>, Vec<QmEvent> }` exactly like the seed's
//!   per-message `handle` did.
//!
//! One benchmark iteration is one wave of `WAVE_TXNS` transactions. The
//! closing summary prints both engines' txn/s and the ratio;
//! `M8_GATE=<ratio>` (the CI floor) fails the process if `dense-batched`
//! falls below `<ratio>` × `btree-per-message` (medians of alternating
//! measurement blocks, same rationale as the m7/exp9 gates).
//!
//! A third variant, `dense-traced`, reruns the dense-batched engine with a
//! [`trace::TracePlane`] at `TraceLevel::Full` recording the shard-side
//! events the runtime's shard loop emits (one `ShardRecv` per batch, one
//! `Granted` per fold) — the flight recorder's worst-case overhead on the
//! hottest loop we have. `M8_TRACE_GATE=<ratio>` fails the process if the
//! traced engine falls below `<ratio>` × the untraced one. The closing
//! summary also lands in `BENCH_m8.json` (see [`bench::traj`]).

use std::collections::BTreeMap;
use std::time::Instant;

use bench::Trajectory;
use criterion::{criterion_group, criterion_main, Criterion};
use dbmodel::{
    AccessMode, CcMethod, LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId, Value,
};
use pam::RequestMsg;
use trace::json::Json;
use trace::{Phase, TraceConfig, TracePlane};
use unified_cc::{EnforcementMode, ItemState, QmOutput, QmSink, QueueManager};

const SITE: SiteId = SiteId(0);
const ITEMS: u64 = 8;
const WAVE_TXNS: u64 = 2048;
const INITIAL: Value = 100;

fn pi(i: u64) -> PhysicalItemId {
    PhysicalItemId::new(LogicalItemId(i), SITE)
}

/// The seed engine's shape: item states behind a `BTreeMap`, one owned
/// `QmOutput` allocated per message.
struct BTreeEngine {
    items: BTreeMap<PhysicalItemId, ItemState>,
}

impl BTreeEngine {
    fn new() -> Self {
        BTreeEngine {
            items: (0..ITEMS)
                .map(|i| {
                    (
                        pi(i),
                        ItemState::new(pi(i), INITIAL, EnforcementMode::SemiLock),
                    )
                })
                .collect(),
        }
    }

    fn handle(&mut self, origin: SiteId, msg: &RequestMsg) -> QmOutput {
        let mut sink = QmSink::new();
        let item = self.items.get_mut(&msg.item()).expect("item exists");
        match msg {
            RequestMsg::Access {
                txn,
                mode,
                method,
                ts,
                ..
            } => item.handle_access(*txn, origin, *mode, *method, *ts, &mut sink),
            RequestMsg::UpdatedTs { txn, new_ts, .. } => {
                item.handle_updated_ts(*txn, *new_ts, &mut sink)
            }
            RequestMsg::Release {
                txn,
                write_value,
                commit_ts,
                ..
            } => item.handle_release(*txn, *write_value, *commit_ts, Timestamp::ZERO, &mut sink),
            RequestMsg::Demote {
                txn,
                write_value,
                commit_ts,
                ..
            } => item.handle_demote(*txn, *write_value, *commit_ts, Timestamp::ZERO, &mut sink),
            RequestMsg::Abort { txn, .. } => item.handle_abort(*txn, &mut sink),
        }
        QmOutput {
            replies: sink.replies,
            events: sink.events,
        }
    }
}

/// Fill the scratch buffers with one wide transaction's two message
/// phases (the shard receives exactly these two `HandleBatch` commands).
fn fill_txn(txn: u64, access: &mut Vec<RequestMsg>, release: &mut Vec<RequestMsg>) {
    access.clear();
    release.clear();
    for i in 0..ITEMS {
        access.push(RequestMsg::Access {
            txn: TxnId(txn),
            item: pi(i),
            mode: AccessMode::Write,
            method: CcMethod::TwoPhaseLocking,
            ts: TsTuple::new(Timestamp(1), 10),
        });
        release.push(RequestMsg::Release {
            txn: TxnId(txn),
            item: pi(i),
            write_value: Some((txn % 1000) as Value),
            commit_ts: Timestamp::ZERO,
        });
    }
}

struct Scratch {
    access: Vec<RequestMsg>,
    release: Vec<RequestMsg>,
    sink: QmSink,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            access: Vec::with_capacity(ITEMS as usize),
            release: Vec::with_capacity(ITEMS as usize),
            sink: QmSink::new(),
        }
    }
}

fn run_wave_batched(qm: &mut QueueManager, next_txn: &mut u64, s: &mut Scratch) {
    for _ in 0..WAVE_TXNS {
        let txn = *next_txn;
        *next_txn += 1;
        fill_txn(txn, &mut s.access, &mut s.release);
        s.sink.clear();
        qm.handle_batch(SITE, s.access.iter(), &mut s.sink);
        std::hint::black_box(s.sink.replies.len());
        s.sink.clear();
        qm.handle_batch(SITE, s.release.iter(), &mut s.sink);
        std::hint::black_box(s.sink.events.len());
    }
}

/// The dense-batched wave with the flight recorder on: the same events
/// the runtime's shard loop records per drained batch (`ShardRecv` with
/// the command count) and per sink fold (`Granted` with the grant count).
fn run_wave_traced(qm: &mut QueueManager, next_txn: &mut u64, s: &mut Scratch, plane: &TracePlane) {
    for _ in 0..WAVE_TXNS {
        let txn = *next_txn;
        *next_txn += 1;
        fill_txn(txn, &mut s.access, &mut s.release);
        s.sink.clear();
        plane.record(0, txn, Phase::ShardRecv, s.access.len() as u32);
        qm.handle_batch(SITE, s.access.iter(), &mut s.sink);
        plane.record(0, txn, Phase::Granted, s.sink.events.len() as u32);
        std::hint::black_box(s.sink.replies.len());
        s.sink.clear();
        plane.record(0, txn, Phase::ShardRecv, s.release.len() as u32);
        qm.handle_batch(SITE, s.release.iter(), &mut s.sink);
        std::hint::black_box(s.sink.events.len());
    }
}

fn run_wave_btree(engine: &mut BTreeEngine, next_txn: &mut u64, s: &mut Scratch) {
    for _ in 0..WAVE_TXNS {
        let txn = *next_txn;
        *next_txn += 1;
        fill_txn(txn, &mut s.access, &mut s.release);
        for msg in s.access.iter().chain(s.release.iter()) {
            let out = engine.handle(SITE, msg);
            std::hint::black_box(out.replies.len() + out.events.len());
        }
    }
}

fn build_qm() -> QueueManager {
    let mut qm = QueueManager::new(SITE);
    for i in 0..ITEMS {
        qm.add_item(pi(i), INITIAL, EnforcementMode::SemiLock);
    }
    qm
}

fn throughput(c: &mut Criterion) {
    let mut qm = build_qm();
    let mut traced_qm = build_qm();
    let mut btree = BTreeEngine::new();
    let mut qm_txn = 1u64;
    let mut traced_txn = 1u64;
    let mut btree_txn = 1u64;
    let mut scratch = Scratch::new();
    let plane = TracePlane::new(&TraceConfig::default(), 1);

    let mut group = c.benchmark_group("m8_engine_wave2048_latency");
    group.bench_function("dense-batched/8-item-txn", |b| {
        b.iter(|| run_wave_batched(&mut qm, &mut qm_txn, &mut scratch));
    });
    group.bench_function("dense-traced/8-item-txn", |b| {
        b.iter(|| run_wave_traced(&mut traced_qm, &mut traced_txn, &mut scratch, &plane));
    });
    group.bench_function("btree-per-message/8-item-txn", |b| {
        b.iter(|| run_wave_btree(&mut btree, &mut btree_txn, &mut scratch));
    });
    group.finish();

    // The gated comparison alternates measurement blocks between the two
    // engines and compares medians (single-shot pairs on a shared runner
    // swing too much for a 1.0x floor — same rationale as m7/exp9).
    const REPS: usize = 5;
    const BLOCK_WAVES: u64 = 10;
    let measure = |f: &mut dyn FnMut()| {
        let begun = Instant::now();
        for _ in 0..BLOCK_WAVES {
            f();
        }
        (BLOCK_WAVES * WAVE_TXNS) as f64 / begun.elapsed().as_secs_f64()
    };
    let mut dense_runs = Vec::new();
    let mut traced_runs = Vec::new();
    let mut btree_runs = Vec::new();
    for _ in 0..REPS {
        dense_runs.push(measure(&mut || {
            run_wave_batched(&mut qm, &mut qm_txn, &mut scratch)
        }));
        traced_runs.push(measure(&mut || {
            run_wave_traced(&mut traced_qm, &mut traced_txn, &mut scratch, &plane)
        }));
        btree_runs.push(measure(&mut || {
            run_wave_btree(&mut btree, &mut btree_txn, &mut scratch)
        }));
    }
    let median = |runs: &mut Vec<f64>| {
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let (dense, traced, btree) = (
        median(&mut dense_runs),
        median(&mut traced_runs),
        median(&mut btree_runs),
    );
    println!("    -> dense-batched: {dense:.0} wide txn/s through one engine (median of {REPS})");
    println!(
        "    -> dense-traced: {traced:.0} wide txn/s with the flight recorder on \
         (median of {REPS}, {} events recorded)",
        plane.events_recorded()
    );
    println!(
        "    -> btree-per-message: {btree:.0} wide txn/s through one engine (median of {REPS})"
    );
    let ratio = dense / btree;
    let trace_ratio = traced / dense;
    println!(
        "    -> engine-core ratio on the {ITEMS}-item wide-transaction shape: \
         {ratio:.2}x (dense-batched vs btree-per-message, alternating medians)"
    );
    println!(
        "    -> trace-overhead ratio: {trace_ratio:.2}x \
         (dense-traced vs dense-batched, alternating medians)"
    );

    let mut traj = Trajectory::new("m8");
    traj.meta("reps", Json::num(REPS as u32));
    traj.meta("block_waves", Json::Num(BLOCK_WAVES as f64));
    traj.meta("wave_txns", Json::Num(WAVE_TXNS as f64));
    traj.meta("engine_ratio", Json::Num(ratio));
    traj.meta("trace_ratio", Json::Num(trace_ratio));
    for (engine, txn_per_sec) in [
        ("dense-batched", dense),
        ("dense-traced", traced),
        ("btree-per-message", btree),
    ] {
        traj.row([
            ("engine", Json::str(engine)),
            ("txn_per_sec", Json::Num(txn_per_sec)),
        ]);
    }
    traj.emit();

    if let Some(gate) = std::env::var("M8_GATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        if ratio < gate {
            eprintln!(
                "FAIL: the batched dense-table engine is below the required \
                 {gate:.2}x of the per-message BTreeMap baseline"
            );
            std::process::exit(1);
        }
        println!("    -> m8 gate passed (required {gate:.2}x)");
    }
    if let Some(gate) = std::env::var("M8_TRACE_GATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        if trace_ratio < gate {
            eprintln!(
                "FAIL: the flight recorder costs too much on the engine core — \
                 dense-traced is below the required {gate:.2}x of dense-batched"
            );
            std::process::exit(1);
        }
        println!("    -> m8 trace gate passed (required {gate:.2}x)");
    }
}

criterion_group!(benches, throughput);
criterion_main!(benches);
