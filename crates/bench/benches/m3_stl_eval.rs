//! M3 — micro-benchmark: cost of evaluating the STL model.
//!
//! The paper argues STL′ "can be evaluated efficiently through Dynamic
//! Programming techniques"; this benchmark measures one STL′ evaluation and
//! one full three-way selection decision, which is the work added to every
//! transaction's admission path under dynamic concurrency control.

use criterion::{criterion_group, criterion_main, Criterion};
use selection::{stl_2pl, stl_pa, stl_to, ProtocolParams, StlModel, TxnShape};

fn model() -> StlModel {
    StlModel {
        lambda_a: 400.0,
        lambda_r: 8.0,
        lambda_w: 5.0,
        q_r: 0.6,
        k: 4.0,
    }
}

fn shape() -> TxnShape {
    TxnShape {
        read_items: vec![(8.0, 5.0); 3],
        write_items: vec![(8.0, 5.0); 2],
    }
}

fn stl_prime_eval(c: &mut Criterion) {
    let m = model();
    c.bench_function("m3_stl_prime_single_eval", |b| {
        let mut u = 0.01;
        b.iter(|| {
            u = if u > 0.5 { 0.01 } else { u + 0.001 };
            std::hint::black_box(m.stl_prime(std::hint::black_box(25.0), u));
        });
    });
}

fn full_selection(c: &mut Criterion) {
    let m = model();
    let s = shape();
    let params = ProtocolParams {
        u_ok: 0.04,
        u_denied: 0.06,
        p_abort: 0.05,
        p_read_denial: 0.1,
        p_write_denial: 0.15,
    };
    c.bench_function("m3_three_way_stl_decision", |b| {
        b.iter(|| {
            let a = stl_2pl(&m, &s, &params);
            let t = stl_to(&m, &s, &params);
            let p = stl_pa(&m, &s, &params);
            std::hint::black_box(a.min(t).min(p));
        });
    });
}

criterion_group!(benches, stl_prime_eval, full_selection);
criterion_main!(benches);
