//! M3 — micro-benchmark: cost of evaluating the STL model.
//!
//! The paper argues STL′ "can be evaluated efficiently through Dynamic
//! Programming techniques"; this benchmark measures one STL′ evaluation and
//! one full three-way selection decision, which is the work added to every
//! transaction's admission path under dynamic concurrency control — and
//! then the same decision served by the selection cache, which is what the
//! runtime actually pays per transaction once the grid is warm. The ratio
//! between `m3_three_way_stl_decision` and `m3_cached_decision_hit` is the
//! amortization factor of the cache.

use criterion::{criterion_group, criterion_main, Criterion};
use selection::{
    evaluate_decision, stl_2pl, stl_pa, stl_to, MethodParamSet, ProtocolParams, SelectionCache,
    ShapeSummary, StlModel, TxnShape,
};

fn model() -> StlModel {
    StlModel {
        lambda_a: 400.0,
        lambda_r: 8.0,
        lambda_w: 5.0,
        q_r: 0.6,
        k: 4.0,
    }
}

fn shape() -> TxnShape {
    TxnShape {
        read_items: vec![(8.0, 5.0); 3],
        write_items: vec![(8.0, 5.0); 2],
    }
}

fn stl_prime_eval(c: &mut Criterion) {
    let m = model();
    c.bench_function("m3_stl_prime_single_eval", |b| {
        let mut u = 0.01;
        b.iter(|| {
            u = if u > 0.5 { 0.01 } else { u + 0.001 };
            std::hint::black_box(m.stl_prime(std::hint::black_box(25.0), u));
        });
    });
}

fn full_selection(c: &mut Criterion) {
    let m = model();
    let s = shape();
    let params = ProtocolParams {
        u_ok: 0.04,
        u_denied: 0.06,
        p_abort: 0.05,
        p_read_denial: 0.1,
        p_write_denial: 0.15,
    };
    c.bench_function("m3_three_way_stl_decision", |b| {
        b.iter(|| {
            let a = stl_2pl(&m, &s, &params);
            let t = stl_to(&m, &s, &params);
            let p = stl_pa(&m, &s, &params);
            std::hint::black_box(a.min(t).min(p));
        });
    });
}

fn cached_selection(c: &mut Criterion) {
    let m = model();
    let params = ProtocolParams {
        u_ok: 0.04,
        u_denied: 0.06,
        p_abort: 0.05,
        p_read_denial: 0.1,
        p_write_denial: 0.15,
    };
    let set = MethodParamSet {
        p2pl: params,
        to: params,
        pa: params,
    };

    // Hit path: every shape already memoized — the steady-state cost the
    // runtime pays per dynamic selection within an epoch.
    let mut cache = SelectionCache::new(0.05, 8192);
    let shapes: Vec<ShapeSummary> = (0..64)
        .map(|i| ShapeSummary {
            m: 1 + i % 4,
            n: 1 + (i / 4) % 4,
            read_loss: 5.0 + i as f64,
            write_loss: 10.0 + i as f64 * 2.0,
        })
        .collect();
    for s in &shapes {
        cache.decide(&m, &set, s);
    }
    c.bench_function("m3_cached_decision_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % shapes.len();
            std::hint::black_box(cache.decide(&m, &set, std::hint::black_box(&shapes[i])));
        });
    });

    // Miss path: one uncached decision through the shared pure core — the
    // per-epoch cost of populating one grid cell (equals the fresh
    // three-way decision plus the memoization bookkeeping).
    c.bench_function("m3_cached_decision_miss", |b| {
        let mut fresh = SelectionCache::new(0.05, 8192);
        let s = ShapeSummary::of(&shape());
        b.iter(|| {
            // An emptied grid makes every lookup a miss.
            fresh.clear();
            std::hint::black_box(fresh.decide(&m, &set, std::hint::black_box(&s)));
        });
    });

    // The pure evaluation the miss path amortizes, for reference.
    c.bench_function("m3_evaluate_decision_fresh", |b| {
        let s = ShapeSummary::of(&shape());
        b.iter(|| {
            std::hint::black_box(evaluate_decision(&m, std::hint::black_box(&s), &set));
        });
    });
}

criterion_group!(benches, stl_prime_eval, full_selection, cached_selection);
criterion_main!(benches);
