//! The data-queue manager: one per site, owning the [`ItemState`] of every
//! physical item stored at that site.
//!
//! The queue manager is a pure message processor: it consumes
//! [`RequestMsg`]s addressed to its items and produces [`ReplyMsg`]s for the
//! issuing transactions plus [`QmEvent`]s (grants and implemented operations)
//! that the driver uses to update metrics and the execution logs.

use std::collections::BTreeMap;

use dbmodel::{AccessMode, Catalog, PhysicalItemId, SiteId, TxnId, Value};
use pam::{GrantClass, LockMode, ReplyMsg, RequestMsg};

use crate::item::{EnforcementMode, ItemEvent, ItemState};

/// Side-band events for metrics and logging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QmEvent {
    /// A lock was granted on an item.
    GrantIssued {
        /// Item the lock was granted on.
        item: PhysicalItemId,
        /// Transaction granted.
        txn: TxnId,
        /// The access mode of the request.
        access: AccessMode,
        /// The lock mode granted.
        lock: LockMode,
        /// Normal or pre-scheduled.
        class: GrantClass,
    },
    /// An operation was implemented on an item (it enters the item's log at
    /// this point).
    Implemented {
        /// Item the operation was implemented on.
        item: PhysicalItemId,
        /// Transaction whose operation was implemented.
        txn: TxnId,
        /// Read or write.
        access: AccessMode,
    },
}

/// The output of processing one message.
#[derive(Debug, Clone, Default)]
pub struct QmOutput {
    /// Replies to send back to request issuers.
    pub replies: Vec<ReplyMsg>,
    /// Metric / log events.
    pub events: Vec<QmEvent>,
}

/// The queue manager of one site.
#[derive(Debug, Clone)]
pub struct QueueManager {
    site: SiteId,
    items: BTreeMap<PhysicalItemId, ItemState>,
}

impl QueueManager {
    /// Create an empty queue manager for `site`.
    pub fn new(site: SiteId) -> Self {
        QueueManager {
            site,
            items: BTreeMap::new(),
        }
    }

    /// Create a queue manager for `site` holding every physical copy the
    /// catalog places there, each initialised to `initial_value`.
    pub fn from_catalog(
        site: SiteId,
        catalog: &Catalog,
        initial_value: Value,
        enforcement: EnforcementMode,
    ) -> Self {
        let mut qm = QueueManager::new(site);
        for item in catalog.all_physical_items() {
            if item.site == site {
                qm.add_item(item, initial_value, enforcement);
            }
        }
        qm
    }

    /// The site this queue manager serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Register a physical item managed by this site.
    pub fn add_item(
        &mut self,
        item: PhysicalItemId,
        initial_value: Value,
        enforcement: EnforcementMode,
    ) {
        assert_eq!(item.site, self.site, "item must belong to this site");
        self.items
            .insert(item, ItemState::new(item, initial_value, enforcement));
    }

    /// Number of items managed.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Inspect one item's state (for tests, examples and the deadlock
    /// detector).
    pub fn item(&self, item: PhysicalItemId) -> Option<&ItemState> {
        self.items.get(&item)
    }

    /// Iterate over all item states.
    pub fn items(&self) -> impl Iterator<Item = &ItemState> + '_ {
        self.items.values()
    }

    /// The wait-for edges contributed by every item at this site.
    pub fn wait_edges(&self) -> Vec<(TxnId, TxnId)> {
        self.items.values().flat_map(|i| i.wait_edges()).collect()
    }

    /// Every transaction queued at some item of this site without a grant
    /// yet (sorted, deduplicated). Used by the runtime's diagnostics and
    /// blocked-transaction accounting.
    pub fn waiting_txns(&self) -> Vec<TxnId> {
        let mut waiting: Vec<TxnId> = self.items.values().flat_map(|i| i.waiting_txns()).collect();
        waiting.sort_unstable();
        waiting.dedup();
        waiting
    }

    /// Current committed value of an item (for examples and tests).
    pub fn value_of(&self, item: PhysicalItemId) -> Option<Value> {
        self.items.get(&item).map(|i| i.value())
    }

    /// Process one request message. The issuing site is needed only for
    /// precedence tie-breaking of timestamped requests.
    pub fn handle(&mut self, origin_site: SiteId, msg: &RequestMsg) -> QmOutput {
        let item_id = msg.item();
        let Some(item) = self.items.get_mut(&item_id) else {
            // Message addressed to an item this site does not hold; in the
            // simulator this indicates a routing bug, so fail loudly in debug
            // builds and ignore in release.
            debug_assert!(
                false,
                "message for unknown item {item_id} at site {}",
                self.site
            );
            return QmOutput::default();
        };
        let events = match msg {
            RequestMsg::Access {
                txn,
                mode,
                method,
                ts,
                ..
            } => item.handle_access(*txn, origin_site, *mode, *method, *ts),
            RequestMsg::UpdatedTs { txn, new_ts, .. } => item.handle_updated_ts(*txn, *new_ts),
            RequestMsg::Release {
                txn, write_value, ..
            } => item.handle_release(*txn, *write_value),
            RequestMsg::Demote {
                txn, write_value, ..
            } => item.handle_demote(*txn, *write_value),
            RequestMsg::Abort { txn, .. } => item.handle_abort(*txn),
        };
        Self::translate(item_id, events)
    }

    fn translate(item: PhysicalItemId, events: Vec<ItemEvent>) -> QmOutput {
        let mut out = QmOutput::default();
        for ev in events {
            match ev {
                ItemEvent::Granted {
                    txn,
                    lock,
                    class,
                    value,
                    access,
                    at,
                } => {
                    out.replies.push(ReplyMsg::Grant {
                        txn,
                        item,
                        lock,
                        class,
                        value,
                        at,
                    });
                    out.events.push(QmEvent::GrantIssued {
                        item,
                        txn,
                        access,
                        lock,
                        class,
                    });
                }
                ItemEvent::BecameNormal { txn, lock, at } => {
                    out.replies.push(ReplyMsg::Grant {
                        txn,
                        item,
                        lock,
                        class: GrantClass::Normal,
                        value: None,
                        at,
                    });
                }
                ItemEvent::Rejected { txn } => {
                    out.replies.push(ReplyMsg::Reject { txn, item });
                }
                ItemEvent::PaAccepted { txn } => {
                    out.replies.push(ReplyMsg::Ack { txn, item });
                }
                ItemEvent::BackedOff { txn, new_ts } => {
                    out.replies.push(ReplyMsg::Backoff { txn, item, new_ts });
                }
                ItemEvent::Implemented { txn, access } => {
                    out.events.push(QmEvent::Implemented { item, txn, access });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{CcMethod, LogicalItemId, ReplicationPolicy, Timestamp, TsTuple};

    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    fn access(
        txn: u64,
        item: PhysicalItemId,
        mode: AccessMode,
        method: CcMethod,
        ts: u64,
    ) -> RequestMsg {
        RequestMsg::Access {
            txn: TxnId(txn),
            item,
            mode,
            method,
            ts: TsTuple::new(Timestamp(ts), 10),
        }
    }

    #[test]
    fn from_catalog_holds_only_local_items() {
        let catalog = Catalog::generate(3, 9, ReplicationPolicy::SingleCopy);
        let qm = QueueManager::from_catalog(SiteId(1), &catalog, 0, EnforcementMode::SemiLock);
        assert_eq!(qm.site(), SiteId(1));
        assert_eq!(qm.num_items(), 3);
        assert!(qm.items().all(|i| i.item().site == SiteId(1)));
    }

    #[test]
    fn handle_translates_grants_and_implementations() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 5, EnforcementMode::SemiLock);
        let out = qm.handle(
            SiteId(0),
            &access(1, pi(1, 0), AccessMode::Read, CcMethod::TwoPhaseLocking, 0),
        );
        assert_eq!(out.replies.len(), 1);
        assert!(matches!(
            out.replies[0],
            ReplyMsg::Grant {
                txn: TxnId(1),
                value: Some(5),
                ..
            }
        ));
        assert_eq!(out.events.len(), 1);
        let out = qm.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(1),
                item: pi(1, 0),
                write_value: None,
            },
        );
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, QmEvent::Implemented { txn: TxnId(1), .. })));
    }

    #[test]
    fn reject_and_backoff_become_replies() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 0, EnforcementMode::SemiLock);
        // Raise W-TS to 100 via a granted+released T/O write.
        qm.handle(
            SiteId(0),
            &access(
                1,
                pi(1, 0),
                AccessMode::Write,
                CcMethod::TimestampOrdering,
                100,
            ),
        );
        qm.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(1),
                item: pi(1, 0),
                write_value: Some(3),
            },
        );
        let out = qm.handle(
            SiteId(1),
            &access(
                2,
                pi(1, 0),
                AccessMode::Read,
                CcMethod::TimestampOrdering,
                50,
            ),
        );
        assert!(matches!(
            out.replies[0],
            ReplyMsg::Reject { txn: TxnId(2), .. }
        ));
        let out = qm.handle(
            SiteId(1),
            &access(
                3,
                pi(1, 0),
                AccessMode::Read,
                CcMethod::PrecedenceAgreement,
                50,
            ),
        );
        assert!(matches!(
            out.replies[0],
            ReplyMsg::Backoff {
                txn: TxnId(3),
                new_ts: Timestamp(110),
                ..
            }
        ));
    }

    #[test]
    fn wait_edges_aggregate_across_items() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 0, EnforcementMode::SemiLock);
        qm.add_item(pi(2, 0), 0, EnforcementMode::SemiLock);
        qm.handle(
            SiteId(0),
            &access(1, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &access(2, pi(2, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &access(2, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &access(1, pi(2, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        let edges = qm.wait_edges();
        assert!(edges.contains(&(TxnId(2), TxnId(1))));
        assert!(edges.contains(&(TxnId(1), TxnId(2))));
    }

    #[test]
    fn value_of_reflects_releases() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(7, 0), 1, EnforcementMode::SemiLock);
        assert_eq!(qm.value_of(pi(7, 0)), Some(1));
        assert_eq!(qm.value_of(pi(8, 0)), None);
        qm.handle(
            SiteId(0),
            &access(1, pi(7, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(1),
                item: pi(7, 0),
                write_value: Some(99),
            },
        );
        assert_eq!(qm.value_of(pi(7, 0)), Some(99));
    }
}
