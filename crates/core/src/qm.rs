//! The data-queue manager: one per site, owning the [`ItemState`] of every
//! physical item stored at that site.
//!
//! The queue manager is a pure message processor: it consumes
//! [`RequestMsg`]s addressed to its items and produces [`ReplyMsg`]s for the
//! issuing transactions plus [`QmEvent`]s (grants and implemented operations)
//! that the driver uses to update metrics and the execution logs.
//!
//! ## The dense item table
//!
//! Item states live in a dense `Vec<ItemState>` sorted by item id; the
//! `PhysicalItemId → slot` resolution is a direct-mapped table indexed by
//! the logical item id (catalog-generated ids are small and contiguous),
//! with a sorted spill vector as the correctness net for ids past the
//! direct-map bound. Resolving a message's item is an array load instead
//! of the seed's `BTreeMap` pointer chase — measured by the `m8` bench
//! together with the sink refactor.
//!
//! ## Batched, allocation-free processing
//!
//! The hot path is [`QueueManager::handle_batch`]: a whole drained batch
//! of messages flows into one caller-owned [`QmSink`], and the item
//! handlers push replies/events straight into it — zero heap allocations
//! per steady-state batch. [`QueueManager::handle`] survives as a thin
//! per-message wrapper returning an owned [`QmOutput`] for the simulator,
//! examples and tests.

use dbmodel::{Catalog, PhysicalItemId, SiteId, Timestamp, TxnId, Value};
use pam::{GrantClass, LockMode, RequestMsg};

pub use crate::sink::QmSink;

use crate::item::{EnforcementMode, ItemState};
use dbmodel::AccessMode;

/// Side-band events for metrics and logging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QmEvent {
    /// A lock was granted on an item.
    GrantIssued {
        /// Item the lock was granted on.
        item: PhysicalItemId,
        /// Transaction granted.
        txn: TxnId,
        /// The access mode of the request.
        access: AccessMode,
        /// The lock mode granted.
        lock: LockMode,
        /// Normal or pre-scheduled.
        class: GrantClass,
    },
    /// An operation was implemented on an item (it enters the item's log at
    /// this point).
    Implemented {
        /// Item the operation was implemented on.
        item: PhysicalItemId,
        /// Transaction whose operation was implemented.
        txn: TxnId,
        /// Read or write.
        access: AccessMode,
        /// For stamped writes: the global commit timestamp the value was
        /// installed at (`None` for reads and on the unstamped simulator
        /// path). Flows into the execution log so the serializability
        /// oracle can order snapshot reads against writers.
        commit_ts: Option<Timestamp>,
    },
}

/// The owned output of processing one message through the compatibility
/// wrapper [`QueueManager::handle`]. The batched hot path accumulates into
/// a reusable [`QmSink`] instead.
#[derive(Debug, Clone, Default)]
pub struct QmOutput {
    /// Replies to send back to request issuers.
    pub replies: Vec<pam::ReplyMsg>,
    /// Metric / log events.
    pub events: Vec<QmEvent>,
}

/// Logical item ids below this bound resolve through the direct-mapped
/// table; ids at or above it fall back to the sorted spill vector. The
/// bound caps the direct map at 4 MiB per shard even for adversarial id
/// spaces; catalog-generated ids are contiguous from zero and never spill.
const DENSE_LIMIT: u64 = 1 << 20;

/// One operation of an invariant-confluent fast-path transaction,
/// applied directly through the dense slot table by
/// [`QueueManager::apply_confluent`] — no grants, no precedence entries,
/// no queue transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfluentOp {
    /// Read the item's current committed value.
    Read(PhysicalItemId),
    /// Commutative increment/decrement: `value += delta` (wrapping).
    Add(PhysicalItemId, Value),
    /// Blind absolute write: `value = v` (last-writer-wins).
    Put(PhysicalItemId, Value),
}

impl ConfluentOp {
    /// The physical item this op touches.
    pub fn item(&self) -> PhysicalItemId {
        match *self {
            ConfluentOp::Read(item) | ConfluentOp::Add(item, _) | ConfluentOp::Put(item, _) => item,
        }
    }
}

/// The queue manager of one site.
#[derive(Debug, Clone)]
pub struct QueueManager {
    site: SiteId,
    /// Item states, sorted by `PhysicalItemId` (so iteration order matches
    /// the seed's `BTreeMap` exactly).
    items: Vec<ItemState>,
    /// Direct map: `logical id → slot + 1` (`0` = no such item here).
    dense: Vec<u32>,
    /// Sorted `(logical id, slot)` pairs for ids `>= DENSE_LIMIT`.
    spill: Vec<(u64, u32)>,
    /// Suppress a second `Access` from an incarnation already queued at
    /// the item (transport-level duplicate delivery). See
    /// [`QueueManager::set_dedup_access`].
    dedup_access: bool,
    /// Duplicate `Access` messages suppressed so far (drained by
    /// [`QueueManager::take_dup_suppressed`]).
    dup_suppressed: u64,
    /// The global read watermark as last published by the owning shard
    /// (see [`QueueManager::set_watermark`]): version-chain pruning never
    /// drops the newest version at or below it.
    watermark: Timestamp,
    /// Versions retained per item above the watermark; forwarded to items
    /// on [`QueueManager::set_version_retain`] and applied to items added
    /// later.
    version_retain: usize,
    /// When false (the mutation switch), snapshot reads serve the raw
    /// chain head instead of the newest version at or below the requested
    /// timestamp — torn reads, demonstrably non-serializable.
    snapshot_validation: bool,
}

impl QueueManager {
    /// Create an empty queue manager for `site`.
    pub fn new(site: SiteId) -> Self {
        QueueManager {
            site,
            items: Vec::new(),
            dense: Vec::new(),
            spill: Vec::new(),
            dedup_access: true,
            dup_suppressed: 0,
            watermark: Timestamp::ZERO,
            version_retain: crate::item::DEFAULT_VERSION_RETAIN,
            snapshot_validation: true,
        }
    }

    /// Create a queue manager for `site` holding every physical copy the
    /// catalog places there, each initialised to `initial_value`.
    pub fn from_catalog(
        site: SiteId,
        catalog: &Catalog,
        initial_value: Value,
        enforcement: EnforcementMode,
    ) -> Self {
        let mut qm = QueueManager::new(site);
        for item in catalog.all_physical_items() {
            if item.site == site {
                qm.add_item(item, initial_value, enforcement);
            }
        }
        qm
    }

    /// The site this queue manager serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Register a physical item managed by this site. Re-adding an item
    /// replaces its state (matching the seed's map-insert semantics).
    pub fn add_item(
        &mut self,
        item: PhysicalItemId,
        initial_value: Value,
        enforcement: EnforcementMode,
    ) {
        assert_eq!(item.site, self.site, "item must belong to this site");
        let mut state = ItemState::new(item, initial_value, enforcement);
        state.set_version_retain(self.version_retain);
        if let Some(slot) = self.slot_of(item) {
            self.items[slot] = state;
            return;
        }
        let pos = self.items.partition_point(|i| i.item() < item);
        self.items.insert(pos, state);
        assert!(
            self.items.len() < u32::MAX as usize,
            "item table exceeds slot-index range"
        );
        // Re-point the index entries of the new item and everything it
        // shifted right (catalog construction appends in sorted order, so
        // this is the new entry alone in the common case).
        for slot in pos..self.items.len() {
            let logical = self.items[slot].item().logical.0;
            self.set_slot(logical, slot as u32);
        }
        debug_assert!(self.spill.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// Point the id → slot resolution of `logical` at `slot`
    /// (construction-time only; the hot path never calls this).
    fn set_slot(&mut self, logical: u64, slot: u32) {
        if logical < DENSE_LIMIT {
            let idx = logical as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            self.dense[idx] = slot + 1;
        } else {
            match self.spill.binary_search_by_key(&logical, |&(l, _)| l) {
                Ok(i) => self.spill[i].1 = slot,
                Err(i) => self.spill.insert(i, (logical, slot)),
            }
        }
    }

    /// Resolve an item id to its slot in the dense table.
    #[inline]
    fn slot_of(&self, item: PhysicalItemId) -> Option<usize> {
        if item.site != self.site {
            return None;
        }
        let logical = item.logical.0;
        if logical < DENSE_LIMIT {
            match self.dense.get(logical as usize) {
                Some(&slot) if slot != 0 => Some(slot as usize - 1),
                _ => None,
            }
        } else {
            self.spill
                .binary_search_by_key(&logical, |&(l, _)| l)
                .ok()
                .map(|i| self.spill[i].1 as usize)
        }
    }

    /// Number of items managed.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Inspect one item's state (for tests, examples and the deadlock
    /// detector).
    pub fn item(&self, item: PhysicalItemId) -> Option<&ItemState> {
        self.slot_of(item).map(|slot| &self.items[slot])
    }

    /// Iterate over all item states, in item-id order.
    pub fn items(&self) -> impl Iterator<Item = &ItemState> + '_ {
        self.items.iter()
    }

    /// Append the wait-for edges contributed by every item at this site to
    /// `edges` (the detector's allocation-lean entry point).
    pub fn wait_edges_into(&self, edges: &mut Vec<(TxnId, TxnId)>) {
        for item in &self.items {
            item.wait_edges_into(edges);
        }
    }

    /// The wait-for edges contributed by every item at this site, as a
    /// fresh vector.
    pub fn wait_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        self.wait_edges_into(&mut edges);
        edges
    }

    /// Append every transaction queued at some item of this site without a
    /// grant yet, then sort and deduplicate the whole buffer. Callers pass
    /// an empty (capacity-retaining) buffer.
    pub fn waiting_txns_into(&self, out: &mut Vec<TxnId>) {
        for item in &self.items {
            item.waiting_txns_into(out);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Every transaction queued at some item of this site without a grant
    /// yet (sorted, deduplicated). Used by the runtime's diagnostics and
    /// blocked-transaction accounting.
    pub fn waiting_txns(&self) -> Vec<TxnId> {
        let mut waiting = Vec::new();
        self.waiting_txns_into(&mut waiting);
        waiting
    }

    /// Current committed value of an item (for examples and tests).
    pub fn value_of(&self, item: PhysicalItemId) -> Option<Value> {
        self.item(item).map(|i| i.value())
    }

    /// Toggle duplicate-`Access` suppression. On by default; turning it
    /// off exists only as the mutation switch demonstrating that the
    /// guard is load-bearing under duplicate injection (a re-admitted
    /// `Access` double-queues its entry).
    pub fn set_dedup_access(&mut self, dedup: bool) {
        self.dedup_access = dedup;
    }

    /// Publish the current global read watermark. The owning shard calls
    /// this before processing a batch; version-chain pruning keeps the
    /// newest version at or below it answerable.
    pub fn set_watermark(&mut self, watermark: Timestamp) {
        self.watermark = watermark;
    }

    /// Set how many versions each item retains above the watermark
    /// (clamped to at least one); applies to current and future items.
    pub fn set_version_retain(&mut self, retain: usize) {
        self.version_retain = retain.max(1);
        for item in &mut self.items {
            item.set_version_retain(retain);
        }
    }

    /// Toggle the snapshot watermark check. On by default; turning it off
    /// exists only as the mutation switch demonstrating the check is
    /// load-bearing: unvalidated snapshot reads serve each item's raw
    /// chain head, which tears across a multi-item commit.
    pub fn set_snapshot_validation(&mut self, validate: bool) {
        self.snapshot_validation = validate;
    }

    /// Serve a snapshot read at `ts`: for every item, the newest committed
    /// version with stamp at or below `ts`, appended to `out` as
    /// `(item, value, served_ts)` — `served_ts` is the stamp of the version
    /// actually served, which is what enters the execution log (the oracle
    /// orders the read against writers by it). Touches no queue, no locks,
    /// no timestamps: this is the coordination-free read plane.
    ///
    /// All-or-nothing: returns `false` and rolls `out` back to its length
    /// on entry when any item is unknown at this site or its chain has
    /// been pruned past `ts` — the caller falls back to the coordinated
    /// path. With validation off (the mutation switch) each item serves
    /// its raw head instead, whatever the head's stamp.
    pub fn snapshot_read_into(
        &self,
        ts: Timestamp,
        items: &[PhysicalItemId],
        out: &mut Vec<(PhysicalItemId, Value, Timestamp)>,
    ) -> bool {
        let mark = out.len();
        for &id in items {
            let Some(slot) = self.slot_of(id) else {
                out.truncate(mark);
                return false;
            };
            let item = &self.items[slot];
            let version = if self.snapshot_validation {
                match item.snapshot_value_at(ts) {
                    Some(v) => v,
                    None => {
                        out.truncate(mark);
                        return false;
                    }
                }
            } else {
                item.head_version()
            };
            out.push((id, version.value, version.ts));
        }
        true
    }

    /// Duplicate `Access` messages suppressed since the last call, and
    /// reset the counter (drained into the runtime's stats per batch).
    pub fn take_dup_suppressed(&mut self) -> u64 {
        std::mem::take(&mut self.dup_suppressed)
    }

    /// Duplicate `Access` messages suppressed since the last drain.
    pub fn dup_suppressed(&self) -> u64 {
        self.dup_suppressed
    }

    /// Crash this site with partial amnesia: every item drops its
    /// *ungranted* queue entries while keeping granted entries, held
    /// locks, values and timestamp thresholds (the durable half of the
    /// state — see [`ItemState::crash_recover`]). Returns how many
    /// entries were wiped across all items.
    pub fn crash_recover(&mut self, sink: &mut QmSink) -> u64 {
        let mut wiped = 0;
        for item in &mut self.items {
            wiped += item.crash_recover(sink) as u64;
        }
        wiped
    }

    /// Append every transaction holding any state at this site (queue
    /// entries or locks at any item), then sort and deduplicate the whole
    /// buffer. The detector diffs this against the registry to find
    /// transactions stranded by crashes or lost messages.
    pub fn present_txns_into(&self, out: &mut Vec<TxnId>) {
        for item in &self.items {
            item.present_txns_into(out);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Abort `txn` at every item it still touches — the detector-driven
    /// cleanup for transactions whose client is gone (deregistered) but
    /// whose shard-side state was stranded by a crash, a lost `Abort` or
    /// a late-delivered `Access`. Semantically identical to the client's
    /// own abort: nothing is implemented, waiters are re-granted through
    /// `sink`. Returns how many items were cleaned.
    pub fn cleanup_txn(&mut self, txn: TxnId, sink: &mut QmSink) -> u64 {
        let mut cleaned = 0;
        for item in &mut self.items {
            if item.involves(txn) {
                item.handle_abort(txn, sink);
                cleaned += 1;
            }
        }
        cleaned
    }

    /// Process one request message into the caller's reusable sink. The
    /// issuing site is needed only for precedence tie-breaking of
    /// timestamped requests.
    pub fn handle_into(&mut self, origin_site: SiteId, msg: &RequestMsg, sink: &mut QmSink) {
        let item_id = msg.item();
        let Some(slot) = self.slot_of(item_id) else {
            // Message addressed to an item this site does not hold; in the
            // simulator this indicates a routing bug, so fail loudly in debug
            // builds and ignore in release.
            debug_assert!(
                false,
                "message for unknown item {item_id} at site {}",
                self.site
            );
            return;
        };
        // Idempotent re-delivery: a transaction issues at most one `Access`
        // per item per incarnation and TxnIds are never reused, so a second
        // `Access` from an incarnation already queued at the item is always
        // a transport-level duplicate — re-admitting it would double-queue
        // the entry (the insert below asserts exactly that in debug
        // builds). All other message classes are naturally idempotent.
        if self.dedup_access {
            if let RequestMsg::Access { txn, .. } = msg {
                if self.items[slot].has_queued(*txn) {
                    self.dup_suppressed += 1;
                    return;
                }
            }
        }
        let watermark = self.watermark;
        let item = &mut self.items[slot];
        match msg {
            RequestMsg::Access {
                txn,
                mode,
                method,
                ts,
                ..
            } => item.handle_access(*txn, origin_site, *mode, *method, *ts, sink),
            RequestMsg::UpdatedTs { txn, new_ts, .. } => {
                item.handle_updated_ts(*txn, *new_ts, sink)
            }
            RequestMsg::Release {
                txn,
                write_value,
                commit_ts,
                ..
            } => item.handle_release(*txn, *write_value, *commit_ts, watermark, sink),
            RequestMsg::Demote {
                txn,
                write_value,
                commit_ts,
                ..
            } => item.handle_demote(*txn, *write_value, *commit_ts, watermark, sink),
            RequestMsg::Abort { txn, .. } => item.handle_abort(*txn, sink),
        }
    }

    /// Process a whole batch of messages in order, accumulating every reply
    /// and event into `sink`. This is the runtime's hot path: one drained
    /// inbox batch → one `handle_batch` call → one reply flush straight
    /// from the sink, with zero heap allocations in steady state.
    pub fn handle_batch<'a, I>(&mut self, origin_site: SiteId, msgs: I, sink: &mut QmSink)
    where
        I: IntoIterator<Item = &'a RequestMsg>,
    {
        for msg in msgs {
            self.handle_into(origin_site, msg, sink);
        }
    }

    /// Apply an invariant-confluent transaction directly through the dense
    /// slot table — the coordination-avoidance bypass. No grants, no
    /// precedence entries, no queue transitions; only [`QmEvent::Implemented`]
    /// events flow into `sink` so the execution logs stay complete for the
    /// serializability oracle.
    ///
    /// Safety rests on an all-or-nothing refusal check performed *before*
    /// any mutation (when `check` is true):
    ///
    /// * `Add`/`Put` refuse unless the touched slot is fully idle (no held
    ///   locks, no queued work) — a bypass write racing granted or queued
    ///   coordinated work could be serialized on neither side of it;
    /// * `Read` refuses if any held lock is write-kind **or any queued
    ///   entry requests write access** — reading past a queued writer
    ///   orders the bypass before it, but the writer's later implement
    ///   would need to order before any coordinated work the bypass
    ///   already observed, closing a precedence cycle.
    ///
    /// Returns `Some(reads)` (the `(item, value)` pairs observed by `Read`
    /// ops, in op order) when applied, `None` when refused — the caller
    /// falls back to the coordinated path. Ops addressing items this site
    /// does not hold always refuse (routing bug or replicated copy; both
    /// belong on the coordinated path). With `check == false` the refusal
    /// rules are skipped — the mutation switch used to demonstrate that an
    /// unchecked bypass admits non-serializable histories.
    ///
    /// Timestamps (`r_ts`/`w_ts`) are deliberately untouched: the bypass
    /// only applies to slots with no coordinated work in flight, and a
    /// later T/O or PA request conflicting with a *committed* bypass write
    /// sees the item's value exactly as it would after an idle-site
    /// restart.
    pub fn apply_confluent(
        &mut self,
        _origin: SiteId,
        txn: TxnId,
        ops: &[ConfluentOp],
        check: bool,
        commit_ts: Timestamp,
        sink: &mut QmSink,
    ) -> Option<Vec<(PhysicalItemId, Value)>> {
        // Pass 1: resolve every slot and test blockedness before touching
        // anything — refusal must leave the site exactly as it was.
        for op in ops {
            let slot = self.slot_of(op.item())?;
            if check {
                let item = &self.items[slot];
                let blocked = match op {
                    ConfluentOp::Read(_) => item.confluent_read_blocked(),
                    ConfluentOp::Add(..) | ConfluentOp::Put(..) => !item.is_idle(),
                };
                if blocked {
                    return None;
                }
            }
        }
        // Pass 2: apply. Every op emits `Implemented` so the shard folds it
        // into the execution logs. Writes install into the version chain at
        // `commit_ts` — drawn by the owning shard at apply time, so chain
        // stamps stay monotone even across fast-path/coordinated interleave.
        let watermark = self.watermark;
        let write_stamp = (commit_ts != Timestamp::ZERO).then_some(commit_ts);
        let mut reads = Vec::new();
        for op in ops {
            let slot = self
                .slot_of(op.item())
                .expect("slot resolved in the check pass");
            let item = &mut self.items[slot];
            let (access, stamp) = match *op {
                ConfluentOp::Read(id) => {
                    reads.push((id, item.value()));
                    (AccessMode::Read, None)
                }
                ConfluentOp::Add(_, delta) => {
                    item.apply_confluent_write(
                        item.value().wrapping_add(delta),
                        commit_ts,
                        watermark,
                    );
                    (AccessMode::Write, write_stamp)
                }
                ConfluentOp::Put(_, value) => {
                    item.apply_confluent_write(value, commit_ts, watermark);
                    (AccessMode::Write, write_stamp)
                }
            };
            sink.events.push(QmEvent::Implemented {
                item: op.item(),
                txn,
                access,
                commit_ts: stamp,
            });
        }
        Some(reads)
    }

    /// Process one request message into an owned [`QmOutput`] — the thin
    /// compatibility wrapper over [`QueueManager::handle_into`] the sim
    /// driver, examples and tests keep using.
    pub fn handle(&mut self, origin_site: SiteId, msg: &RequestMsg) -> QmOutput {
        let mut sink = QmSink::new();
        self.handle_into(origin_site, msg, &mut sink);
        QmOutput {
            replies: sink.replies,
            events: sink.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{CcMethod, LogicalItemId, ReplicationPolicy, Timestamp, TsTuple};
    use pam::ReplyMsg;

    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(s))
    }

    fn access(
        txn: u64,
        item: PhysicalItemId,
        mode: AccessMode,
        method: CcMethod,
        ts: u64,
    ) -> RequestMsg {
        RequestMsg::Access {
            txn: TxnId(txn),
            item,
            mode,
            method,
            ts: TsTuple::new(Timestamp(ts), 10),
        }
    }

    /// Grant a write lock and release it with a stamped value.
    fn stamped_write(qm: &mut QueueManager, txn: u64, item: PhysicalItemId, value: Value, ts: u64) {
        qm.handle(
            SiteId(0),
            &access(txn, item, AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(txn),
                item,
                write_value: Some(value),
                commit_ts: Timestamp(ts),
            },
        );
    }

    #[test]
    fn stamped_release_builds_a_version_chain() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 100, EnforcementMode::SemiLock);
        stamped_write(&mut qm, 1, pi(1, 0), 111, 3);
        stamped_write(&mut qm, 2, pi(1, 0), 222, 7);
        let item = qm.item(pi(1, 0)).unwrap();
        let chain: Vec<(u64, Value)> = item.versions().map(|v| (v.ts.0, v.value)).collect();
        assert_eq!(chain, vec![(0, 100), (3, 111), (7, 222)]);
        // Snapshot reads serve the newest version at or below the asked ts.
        let mut out = Vec::new();
        assert!(qm.snapshot_read_into(Timestamp(5), &[pi(1, 0)], &mut out));
        assert_eq!(out, vec![(pi(1, 0), 111, Timestamp(3))]);
        out.clear();
        assert!(qm.snapshot_read_into(Timestamp(7), &[pi(1, 0)], &mut out));
        assert_eq!(out, vec![(pi(1, 0), 222, Timestamp(7))]);
        out.clear();
        assert!(qm.snapshot_read_into(Timestamp(1), &[pi(1, 0)], &mut out));
        assert_eq!(out, vec![(pi(1, 0), 100, Timestamp(0))], "seed version");
    }

    #[test]
    fn snapshot_read_is_all_or_nothing() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 10, EnforcementMode::SemiLock);
        let mut out = vec![(pi(9, 0), 0, Timestamp::ZERO)];
        // Unknown item refuses and rolls back to the entry length.
        assert!(!qm.snapshot_read_into(Timestamp(5), &[pi(1, 0), pi(2, 0)], &mut out));
        assert_eq!(out.len(), 1, "refusal truncates back to the entry mark");
    }

    #[test]
    fn version_chain_is_pruned_to_retain_above_watermark() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 0, EnforcementMode::SemiLock);
        qm.set_version_retain(2);
        // Watermark advances with the writes: shadowed versions are pruned
        // down to the retain bound.
        for ts in 1..=10u64 {
            qm.set_watermark(Timestamp(ts.saturating_sub(1)));
            stamped_write(&mut qm, ts, pi(1, 0), ts as Value * 10, ts);
        }
        let item = qm.item(pi(1, 0)).unwrap();
        let len = item.versions().count();
        assert!(len <= 3, "retain 2 (+ the in-flight head), got {len}");
        // The newest version at the watermark is still answerable…
        let mut out = Vec::new();
        assert!(qm.snapshot_read_into(Timestamp(9), &[pi(1, 0)], &mut out));
        assert_eq!(out, vec![(pi(1, 0), 90, Timestamp(9))]);
        // …but a read far below the pruned range refuses (fallback).
        out.clear();
        assert!(!qm.snapshot_read_into(Timestamp(1), &[pi(1, 0)], &mut out));
    }

    #[test]
    fn version_chain_hard_cap_bounds_a_stalled_watermark() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 0, EnforcementMode::SemiLock);
        qm.set_version_retain(2);
        // Watermark never advances (e.g. a decided-but-unacknowledged commit
        // pins it): the chain still cannot grow past the hard cap.
        for ts in 1..=100u64 {
            stamped_write(&mut qm, ts, pi(1, 0), ts as Value, ts);
        }
        let len = qm.item(pi(1, 0)).unwrap().versions().count();
        assert!(
            len <= 2 * crate::item::VERSION_HARD_CAP_FACTOR,
            "hard cap must bound a stalled watermark, got {len}"
        );
        // Reads at the stalled watermark refuse rather than serve a wrong
        // value — the caller falls back to the coordinated path.
        let mut out = Vec::new();
        assert!(!qm.snapshot_read_into(Timestamp(0), &[pi(1, 0)], &mut out));
    }

    #[test]
    fn snapshot_validation_off_serves_the_raw_head() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 10, EnforcementMode::SemiLock);
        stamped_write(&mut qm, 1, pi(1, 0), 55, 8);
        let mut out = Vec::new();
        // Validated: a read at ts 3 sees the seed value.
        assert!(qm.snapshot_read_into(Timestamp(3), &[pi(1, 0)], &mut out));
        assert_eq!(out, vec![(pi(1, 0), 10, Timestamp(0))]);
        // Mutation switch off: the same read serves the head — a value from
        // the future of its snapshot. The served ts exposes the tear to the
        // oracle.
        qm.set_snapshot_validation(false);
        out.clear();
        assert!(qm.snapshot_read_into(Timestamp(3), &[pi(1, 0)], &mut out));
        assert_eq!(out, vec![(pi(1, 0), 55, Timestamp(8))]);
    }

    #[test]
    fn confluent_writes_stamp_versions_at_the_shard() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 10, EnforcementMode::SemiLock);
        let mut sink = QmSink::new();
        let ops = [ConfluentOp::Add(pi(1, 0), 5)];
        qm.apply_confluent(SiteId(0), TxnId(7), &ops, true, Timestamp(4), &mut sink)
            .expect("idle item accepts the bypass");
        assert!(sink.events.iter().any(|e| matches!(
            e,
            QmEvent::Implemented {
                commit_ts: Some(Timestamp(4)),
                ..
            }
        )));
        let mut out = Vec::new();
        assert!(qm.snapshot_read_into(Timestamp(4), &[pi(1, 0)], &mut out));
        assert_eq!(out, vec![(pi(1, 0), 15, Timestamp(4))]);
        out.clear();
        assert!(qm.snapshot_read_into(Timestamp(3), &[pi(1, 0)], &mut out));
        assert_eq!(out, vec![(pi(1, 0), 10, Timestamp(0))]);
    }

    #[test]
    fn from_catalog_holds_only_local_items() {
        let catalog = Catalog::generate(3, 9, ReplicationPolicy::SingleCopy);
        let qm = QueueManager::from_catalog(SiteId(1), &catalog, 0, EnforcementMode::SemiLock);
        assert_eq!(qm.site(), SiteId(1));
        assert_eq!(qm.num_items(), 3);
        assert!(qm.items().all(|i| i.item().site == SiteId(1)));
    }

    #[test]
    fn handle_translates_grants_and_implementations() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 5, EnforcementMode::SemiLock);
        let out = qm.handle(
            SiteId(0),
            &access(1, pi(1, 0), AccessMode::Read, CcMethod::TwoPhaseLocking, 0),
        );
        assert_eq!(out.replies.len(), 1);
        assert!(matches!(
            out.replies[0],
            ReplyMsg::Grant {
                txn: TxnId(1),
                value: Some(5),
                ..
            }
        ));
        assert_eq!(out.events.len(), 1);
        let out = qm.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(1),
                item: pi(1, 0),
                write_value: None,
                commit_ts: Timestamp::ZERO,
            },
        );
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, QmEvent::Implemented { txn: TxnId(1), .. })));
    }

    #[test]
    fn handle_batch_accumulates_into_one_sink() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 5, EnforcementMode::SemiLock);
        qm.add_item(pi(2, 0), 7, EnforcementMode::SemiLock);
        let msgs = [
            access(1, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
            access(1, pi(2, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
            RequestMsg::Release {
                txn: TxnId(1),
                item: pi(1, 0),
                write_value: Some(50),
                commit_ts: Timestamp::ZERO,
            },
            RequestMsg::Release {
                txn: TxnId(1),
                item: pi(2, 0),
                write_value: Some(70),
                commit_ts: Timestamp::ZERO,
            },
        ];
        let mut sink = QmSink::new();
        qm.handle_batch(SiteId(0), msgs.iter(), &mut sink);
        assert_eq!(sink.replies.len(), 2, "two grants");
        assert_eq!(sink.events.len(), 4, "two grants + two implementations");
        assert_eq!(qm.value_of(pi(1, 0)), Some(50));
        assert_eq!(qm.value_of(pi(2, 0)), Some(70));
        // The sink is reusable: clearing keeps capacity and the next batch
        // appends from the start.
        sink.clear();
        qm.handle_batch(
            SiteId(0),
            [access(
                2,
                pi(1, 0),
                AccessMode::Read,
                CcMethod::TwoPhaseLocking,
                0,
            )]
            .iter(),
            &mut sink,
        );
        assert_eq!(sink.replies.len(), 1);
    }

    #[test]
    fn dense_table_resolves_sparse_and_spilled_ids() {
        let mut qm = QueueManager::new(SiteId(0));
        // Sparse dense-range ids, inserted out of order.
        qm.add_item(pi(512, 0), 1, EnforcementMode::SemiLock);
        qm.add_item(pi(3, 0), 2, EnforcementMode::SemiLock);
        // An id past the direct-map bound exercises the spill path.
        let big = DENSE_LIMIT + 17;
        qm.add_item(pi(big, 0), 3, EnforcementMode::SemiLock);
        assert_eq!(qm.num_items(), 3);
        assert_eq!(qm.value_of(pi(3, 0)), Some(2));
        assert_eq!(qm.value_of(pi(512, 0)), Some(1));
        assert_eq!(qm.value_of(pi(big, 0)), Some(3));
        assert_eq!(qm.value_of(pi(4, 0)), None);
        assert_eq!(qm.value_of(pi(big + 1, 0)), None);
        assert_eq!(qm.value_of(pi(3, 1)), None, "wrong site never resolves");
        // Iteration stays in item-id order regardless of insertion order.
        let order: Vec<u64> = qm.items().map(|i| i.item().logical.0).collect();
        assert_eq!(order, vec![3, 512, big]);
        // Messages route through both paths.
        let out = qm.handle(
            SiteId(0),
            &access(
                1,
                pi(big, 0),
                AccessMode::Write,
                CcMethod::TwoPhaseLocking,
                0,
            ),
        );
        assert_eq!(out.replies.len(), 1);
        // Re-adding replaces the state (map-insert semantics).
        qm.add_item(pi(3, 0), 99, EnforcementMode::SemiLock);
        assert_eq!(qm.value_of(pi(3, 0)), Some(99));
        assert_eq!(qm.num_items(), 3);
    }

    #[test]
    fn reject_and_backoff_become_replies() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 0, EnforcementMode::SemiLock);
        // Raise W-TS to 100 via a granted+released T/O write.
        qm.handle(
            SiteId(0),
            &access(
                1,
                pi(1, 0),
                AccessMode::Write,
                CcMethod::TimestampOrdering,
                100,
            ),
        );
        qm.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(1),
                item: pi(1, 0),
                write_value: Some(3),
                commit_ts: Timestamp::ZERO,
            },
        );
        let out = qm.handle(
            SiteId(1),
            &access(
                2,
                pi(1, 0),
                AccessMode::Read,
                CcMethod::TimestampOrdering,
                50,
            ),
        );
        assert!(matches!(
            out.replies[0],
            ReplyMsg::Reject { txn: TxnId(2), .. }
        ));
        let out = qm.handle(
            SiteId(1),
            &access(
                3,
                pi(1, 0),
                AccessMode::Read,
                CcMethod::PrecedenceAgreement,
                50,
            ),
        );
        assert!(matches!(
            out.replies[0],
            ReplyMsg::Backoff {
                txn: TxnId(3),
                new_ts: Timestamp(110),
                ..
            }
        ));
    }

    #[test]
    fn wait_edges_aggregate_across_items() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 0, EnforcementMode::SemiLock);
        qm.add_item(pi(2, 0), 0, EnforcementMode::SemiLock);
        qm.handle(
            SiteId(0),
            &access(1, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &access(2, pi(2, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &access(2, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &access(1, pi(2, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        let edges = qm.wait_edges();
        assert!(edges.contains(&(TxnId(2), TxnId(1))));
        assert!(edges.contains(&(TxnId(1), TxnId(2))));
        let mut buf = Vec::new();
        qm.wait_edges_into(&mut buf);
        assert_eq!(buf, edges, "the `_into` variant appends the same edges");
    }

    #[test]
    fn apply_confluent_applies_on_idle_items() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 10, EnforcementMode::SemiLock);
        qm.add_item(pi(2, 0), 20, EnforcementMode::SemiLock);
        let mut sink = QmSink::new();
        let ops = [
            ConfluentOp::Add(pi(1, 0), 5),
            ConfluentOp::Put(pi(2, 0), 99),
            ConfluentOp::Read(pi(1, 0)),
        ];
        let reads = qm
            .apply_confluent(SiteId(0), TxnId(7), &ops, true, Timestamp::ZERO, &mut sink)
            .expect("idle items must accept the bypass");
        assert_eq!(reads, vec![(pi(1, 0), 15)], "read sees the applied add");
        assert_eq!(qm.value_of(pi(1, 0)), Some(15));
        assert_eq!(qm.value_of(pi(2, 0)), Some(99));
        assert!(sink.replies.is_empty(), "the bypass never replies via PAM");
        assert_eq!(sink.events.len(), 3, "one Implemented per op");
        assert!(sink
            .events
            .iter()
            .all(|e| matches!(e, QmEvent::Implemented { txn: TxnId(7), .. })));
    }

    #[test]
    fn apply_confluent_write_refuses_any_coordination() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 10, EnforcementMode::SemiLock);
        // A granted read lock is enough to block a bypass write.
        qm.handle(
            SiteId(0),
            &access(1, pi(1, 0), AccessMode::Read, CcMethod::TwoPhaseLocking, 0),
        );
        let mut sink = QmSink::new();
        for op in [ConfluentOp::Add(pi(1, 0), 1), ConfluentOp::Put(pi(1, 0), 0)] {
            assert!(
                qm.apply_confluent(SiteId(0), TxnId(9), &[op], true, Timestamp::ZERO, &mut sink)
                    .is_none(),
                "{op:?} must refuse on a locked item"
            );
        }
        assert_eq!(qm.value_of(pi(1, 0)), Some(10), "refusal mutates nothing");
        assert!(sink.events.is_empty());
    }

    #[test]
    fn apply_confluent_read_refuses_writers_but_not_readers() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 10, EnforcementMode::SemiLock);
        qm.add_item(pi(2, 0), 20, EnforcementMode::SemiLock);
        // Item 1: held read lock — a bypass read is fine.
        qm.handle(
            SiteId(0),
            &access(1, pi(1, 0), AccessMode::Read, CcMethod::TwoPhaseLocking, 0),
        );
        let mut sink = QmSink::new();
        let reads = qm
            .apply_confluent(
                SiteId(0),
                TxnId(9),
                &[ConfluentOp::Read(pi(1, 0))],
                true,
                Timestamp::ZERO,
                &mut sink,
            )
            .expect("held read locks do not block a bypass read");
        assert_eq!(reads, vec![(pi(1, 0), 10)]);
        // Item 2: held write lock — refuse.
        qm.handle(
            SiteId(0),
            &access(2, pi(2, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        assert!(qm
            .apply_confluent(
                SiteId(0),
                TxnId(9),
                &[ConfluentOp::Read(pi(2, 0))],
                true,
                Timestamp::ZERO,
                &mut sink,
            )
            .is_none());
        // Item 1 again, now with a *queued* writer behind the read lock:
        // reading past it would close a precedence cycle — refuse.
        qm.handle(
            SiteId(0),
            &access(3, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        assert!(qm
            .apply_confluent(
                SiteId(0),
                TxnId(9),
                &[ConfluentOp::Read(pi(1, 0))],
                true,
                Timestamp::ZERO,
                &mut sink,
            )
            .is_none());
    }

    #[test]
    fn apply_confluent_is_all_or_nothing() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 10, EnforcementMode::SemiLock);
        qm.add_item(pi(2, 0), 20, EnforcementMode::SemiLock);
        qm.handle(
            SiteId(0),
            &access(1, pi(2, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        let mut sink = QmSink::new();
        // First op targets an idle item, second a locked one: nothing may
        // be applied.
        let ops = [ConfluentOp::Add(pi(1, 0), 5), ConfluentOp::Add(pi(2, 0), 5)];
        assert!(qm
            .apply_confluent(SiteId(0), TxnId(9), &ops, true, Timestamp::ZERO, &mut sink)
            .is_none());
        assert_eq!(qm.value_of(pi(1, 0)), Some(10));
        assert!(sink.events.is_empty());
        // Unknown items refuse too, before any mutation.
        let ops = [
            ConfluentOp::Add(pi(1, 0), 5),
            ConfluentOp::Add(pi(77, 0), 5),
        ];
        assert!(qm
            .apply_confluent(SiteId(0), TxnId(9), &ops, true, Timestamp::ZERO, &mut sink)
            .is_none());
        assert_eq!(qm.value_of(pi(1, 0)), Some(10));
    }

    #[test]
    fn apply_confluent_unchecked_ignores_coordination() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 10, EnforcementMode::SemiLock);
        qm.handle(
            SiteId(0),
            &access(1, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        let mut sink = QmSink::new();
        // check = false: the mutation switch writes straight through the
        // held write lock (this is what the non-serializable-history test
        // in the runtime exploits).
        let reads = qm
            .apply_confluent(
                SiteId(0),
                TxnId(9),
                &[ConfluentOp::Add(pi(1, 0), 5)],
                false,
                Timestamp::ZERO,
                &mut sink,
            )
            .expect("unchecked bypass never refuses on blockedness");
        assert!(reads.is_empty());
        assert_eq!(qm.value_of(pi(1, 0)), Some(15));
        // Unknown items still refuse even unchecked.
        assert!(qm
            .apply_confluent(
                SiteId(0),
                TxnId(9),
                &[ConfluentOp::Read(pi(88, 0))],
                false,
                Timestamp::ZERO,
                &mut sink,
            )
            .is_none());
    }

    #[test]
    fn value_of_reflects_releases() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(7, 0), 1, EnforcementMode::SemiLock);
        assert_eq!(qm.value_of(pi(7, 0)), Some(1));
        assert_eq!(qm.value_of(pi(8, 0)), None);
        qm.handle(
            SiteId(0),
            &access(1, pi(7, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(1),
                item: pi(7, 0),
                write_value: Some(99),
                commit_ts: Timestamp::ZERO,
            },
        );
        assert_eq!(qm.value_of(pi(7, 0)), Some(99));
    }

    #[test]
    fn duplicate_access_is_suppressed_when_dedup_is_on() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 5, EnforcementMode::SemiLock);
        let msg = access(1, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0);
        let out = qm.handle(SiteId(0), &msg);
        assert_eq!(out.replies.len(), 1, "first delivery grants");
        // A duplicated delivery of the very same Access must vanish without
        // a second queue entry or a second reply.
        let out = qm.handle(SiteId(0), &msg);
        assert!(out.replies.is_empty(), "duplicate produces no reply");
        assert_eq!(qm.dup_suppressed(), 1);
        assert_eq!(qm.take_dup_suppressed(), 1);
        assert_eq!(qm.dup_suppressed(), 0, "take drains the counter");
        // The queue still holds exactly one entry for the transaction.
        let item = qm.items().next().unwrap();
        assert_eq!(item.queue_len(), 1);
    }

    #[test]
    fn dedup_mutation_double_entry_is_demonstrable() {
        // Mutation check with teeth: switching duplicate suppression OFF
        // must produce an observably broken queue manager under the same
        // duplicated delivery. In debug builds the engine's internal
        // "already queued" assertion fires (a panic); in release builds the
        // duplicate lands as a second queue entry. Either outcome is a
        // demonstrable failure that the dedup guard prevents.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut qm = QueueManager::new(SiteId(0));
            qm.add_item(pi(1, 0), 5, EnforcementMode::SemiLock);
            qm.set_dedup_access(false);
            let msg = access(1, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0);
            qm.handle(SiteId(0), &msg);
            qm.handle(SiteId(0), &msg);
            let len = qm.items().next().unwrap().queue_len();
            len
        }));
        match outcome {
            Err(_) => {} // debug_assert tripped: duplicate corrupted the queue
            Ok(len) => assert!(
                len > 1,
                "with dedup disabled the duplicate must double-queue, got len {len}"
            ),
        }
    }

    #[test]
    fn crash_recover_wipes_waiters_across_items() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 5, EnforcementMode::SemiLock);
        qm.add_item(pi(2, 0), 7, EnforcementMode::SemiLock);
        // Txn 1 holds write locks on both items; txns 2 and 3 wait.
        for item in [pi(1, 0), pi(2, 0)] {
            qm.handle(
                SiteId(0),
                &access(1, item, AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
            );
            qm.handle(
                SiteId(0),
                &access(2, item, AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
            );
        }
        qm.handle(
            SiteId(0),
            &access(3, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        let mut sink = QmSink::new();
        let wiped = qm.crash_recover(&mut sink);
        assert_eq!(wiped, 3, "two waiters on item 1, one on item 2");
        // The granted holder survives with its locks and can still commit.
        let out = qm.handle(
            SiteId(0),
            &RequestMsg::Release {
                txn: TxnId(1),
                item: pi(1, 0),
                write_value: Some(50),
                commit_ts: Timestamp::ZERO,
            },
        );
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, QmEvent::Implemented { txn: TxnId(1), .. })));
        assert_eq!(qm.value_of(pi(1, 0)), Some(50));
    }

    #[test]
    fn present_txns_and_cleanup_remove_stranded_state() {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(pi(1, 0), 5, EnforcementMode::SemiLock);
        qm.add_item(pi(2, 0), 7, EnforcementMode::SemiLock);
        qm.handle(
            SiteId(0),
            &access(1, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &access(1, pi(2, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        qm.handle(
            SiteId(0),
            &access(2, pi(1, 0), AccessMode::Write, CcMethod::TwoPhaseLocking, 0),
        );
        let mut present = Vec::new();
        qm.present_txns_into(&mut present);
        assert_eq!(present, vec![TxnId(1), TxnId(2)], "sorted and deduped");
        // Cleaning up the stranded holder frees both items and grants the
        // waiter that was stuck behind it.
        let mut sink = QmSink::new();
        let touched = qm.cleanup_txn(TxnId(1), &mut sink);
        assert_eq!(touched, 2, "txn 1 involved both items");
        assert!(
            sink.replies
                .iter()
                .any(|r| matches!(r, ReplyMsg::Grant { txn: TxnId(2), .. })),
            "cleanup unblocks the waiter"
        );
        present.clear();
        qm.present_txns_into(&mut present);
        assert_eq!(present, vec![TxnId(2)]);
        assert_eq!(
            qm.cleanup_txn(TxnId(1), &mut sink),
            0,
            "cleanup is idempotent"
        );
        assert_eq!(qm.value_of(pi(1, 0)), Some(5), "abort implements nothing");
    }
}
