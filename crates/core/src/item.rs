//! Per-item state: unified precedence assignment, the data queue, and the
//! semi-lock table (paper, Sections 4.1–4.2).
//!
//! One [`ItemState`] exists for every physical data item. It owns
//!
//! * the item's [`DataQueue`] (`QUEUE(j)`),
//! * the unified [`AssignmentPolicy`] (timestamp space, 2PL tail insertion),
//! * the `R-TS(j)` / `W-TS(j)` acceptance thresholds of T/O and PA,
//! * the table of currently held locks (RL / WL / SRL / SWL, normal or
//!   pre-scheduled), and
//! * the item's current value.
//!
//! The grant rules implement the semi-lock protocol:
//!
//! | head request            | may be granted when …                                   | lock granted |
//! |-------------------------|----------------------------------------------------------|--------------|
//! | read by 2PL or PA       | no unreleased WL or SWL                                   | RL           |
//! | write by 2PL or PA      | no unreleased lock of any kind                            | WL           |
//! | read by T/O             | no unreleased WL (SWL does **not** block)                 | SRL          |
//! | write by T/O            | no unreleased RL or WL (SRL/SWL do **not** block)         | WL           |
//!
//! A grant issued while a *conflicting* lock is still outstanding is
//! *pre-scheduled*; when the last such conflicting lock is released the item
//! issues a second, *normal* grant for it. T/O transactions that executed
//! while holding a pre-scheduled lock demote their locks to semi-locks and
//! keep them until those normal grants arrive (driven by the request issuer).
//!
//! Every handler pushes its replies and events straight into the caller's
//! reusable [`QmSink`] — the state transitions themselves never allocate,
//! which is what makes the owning queue manager's batched hot path
//! allocation-free in steady state. A normal-upgrade of a previously
//! pre-scheduled lock appears in the sink as a second `Grant` reply with
//! `class = Normal` and `value = None` (a real grant always carries
//! `Some(value)`).

use std::collections::VecDeque;

use dbmodel::{AccessMode, CcMethod, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId, Value};
use pam::precedence::{AssignmentPolicy, PrecClass, Precedence};
use pam::queue::{DataQueue, EntryStatus, QueueEntry};
use pam::{GrantClass, LockMode, ReplyMsg};

use crate::qm::QmEvent;
use crate::sink::QmSink;

/// Default number of versions each item retains above the read watermark.
pub const DEFAULT_VERSION_RETAIN: usize = 8;

/// Hard bound on the chain as a multiple of the retain knob: if the
/// watermark stalls (a commit decided but unacknowledged pins it), the
/// chain still cannot grow past `retain * VERSION_HARD_CAP_FACTOR` —
/// the oldest versions are dropped instead, and a snapshot read that
/// needed them is *refused* (it falls back to the coordinated path)
/// rather than served a wrong value.
pub const VERSION_HARD_CAP_FACTOR: usize = 4;

/// One committed version of an item's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    /// The global commit timestamp the value was installed at
    /// (`Timestamp::ZERO` only for the seed version holding the initial
    /// value).
    pub ts: Timestamp,
    /// The committed value.
    pub value: Value,
}

/// Which precedence-enforcement variant the item runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnforcementMode {
    /// The semi-lock protocol of Section 4.2 (the paper's proposal).
    SemiLock,
    /// The simpler "use locking for all requests" alternative the paper
    /// mentions and rejects: T/O requests are treated exactly like PA
    /// requests for locking purposes. Used as the ablation baseline (E5).
    LockAll,
}

/// A lock currently held on the item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldLock {
    /// The holding transaction.
    pub txn: TxnId,
    /// The lock mode currently held (may have been demoted to a semi-lock).
    pub mode: LockMode,
    /// Normal or pre-scheduled, as decided at grant time.
    pub class: GrantClass,
    /// Grant order on this item (smaller = granted earlier).
    pub seq: u64,
    /// The access mode of the underlying request (read/write), independent of
    /// later demotion.
    pub access: AccessMode,
}

/// The complete concurrency-control state of one physical data item.
#[derive(Debug, Clone)]
pub struct ItemState {
    item: PhysicalItemId,
    queue: DataQueue,
    assign: AssignmentPolicy,
    r_ts: Timestamp,
    w_ts: Timestamp,
    locks: Vec<HeldLock>,
    value: Value,
    grant_counter: u64,
    enforcement: EnforcementMode,
    /// Committed versions in commit-timestamp order (append-only ring:
    /// writers on one item are serialized by lock exclusivity, and
    /// fast-path writes draw their stamp at apply time on an idle item,
    /// so stamps only ever grow). The chain always holds at least one
    /// version — the seed at `Timestamp::ZERO` until the first stamped
    /// write prunes past it.
    versions: VecDeque<Version>,
    /// How many versions to keep above the watermark (see
    /// [`ItemState::set_version_retain`]).
    version_retain: usize,
}

impl ItemState {
    /// Create the state of `item` with an initial value.
    pub fn new(item: PhysicalItemId, initial_value: Value, enforcement: EnforcementMode) -> Self {
        let mut versions =
            VecDeque::with_capacity(DEFAULT_VERSION_RETAIN * VERSION_HARD_CAP_FACTOR + 1);
        versions.push_back(Version {
            ts: Timestamp::ZERO,
            value: initial_value,
        });
        ItemState {
            item,
            queue: DataQueue::new(),
            assign: AssignmentPolicy::new(),
            r_ts: Timestamp::ZERO,
            w_ts: Timestamp::ZERO,
            locks: Vec::new(),
            value: initial_value,
            grant_counter: 0,
            enforcement,
            versions,
            version_retain: DEFAULT_VERSION_RETAIN,
        }
    }

    /// The physical item this state belongs to.
    pub fn item(&self) -> PhysicalItemId {
        self.item
    }

    /// The item's current (committed) value.
    pub fn value(&self) -> Value {
        self.value
    }

    /// The currently held locks, in grant order.
    pub fn locks(&self) -> &[HeldLock] {
        &self.locks
    }

    /// The `R-TS(j)` threshold.
    pub fn r_ts(&self) -> Timestamp {
        self.r_ts
    }

    /// The `W-TS(j)` threshold.
    pub fn w_ts(&self) -> Timestamp {
        self.w_ts
    }

    /// Number of queued (waiting or granted) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when no requests are queued and no locks are held.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.locks.is_empty()
    }

    /// True when `txn` has an entry (granted or waiting) in this item's
    /// queue. A queue entry exists from admission until release/abort, so
    /// this is the idempotence key for duplicate `Access` suppression:
    /// TxnIds are never reused across incarnations, and one incarnation
    /// issues at most one request per item.
    pub fn has_queued(&self, txn: TxnId) -> bool {
        self.queue.get(txn).is_some()
    }

    /// True when `txn` holds any state at this item — a queue entry or a
    /// (possibly semi-) lock. Used by the stranded-transaction sweep.
    pub fn involves(&self, txn: TxnId) -> bool {
        self.has_queued(txn) || self.locks.iter().any(|l| l.txn == txn)
    }

    /// Append every transaction holding any state at this item (queued or
    /// locked) to `out`.
    pub fn present_txns_into(&self, out: &mut Vec<TxnId>) {
        out.extend(self.queue.iter().map(|e| e.txn));
        out.extend(self.locks.iter().map(|l| l.txn));
    }

    /// Crash with partial amnesia: drop every *ungranted* queue entry
    /// (in-flight admissions that never reached stable storage) while
    /// keeping granted entries, held locks, the item value and the
    /// `R-TS`/`W-TS` thresholds (all durable). Lock upgrades and grants
    /// are re-evaluated afterwards (defensively — every surviving entry
    /// is granted already, so this is normally a no-op) with any output
    /// flowing into `sink` like any other transition. Returns how many
    /// entries were wiped.
    pub fn crash_recover(&mut self, sink: &mut QmSink) -> usize {
        let wiped = self.queue.retain_granted();
        if wiped > 0 {
            self.after_lock_removal(sink);
        }
        wiped
    }

    /// True when a coordination-free read of this item must be refused: a
    /// write-kind lock is held (the holder's write will implement at some
    /// later point on *every* item it touches, and a fast-path read
    /// slipping between those points could close a precedence cycle), or a
    /// write-access request is queued (granting it later has the same
    /// effect). Held read-kind locks and queued reads are harmless — reads
    /// commute with reads.
    pub fn confluent_read_blocked(&self) -> bool {
        self.locks.iter().any(|l| l.mode.is_write_kind())
            || self.queue.iter().any(|e| e.mode == AccessMode::Write)
    }

    /// Install a value written by the coordination-free fast path. Only
    /// legal on an idle item (the caller checks); deliberately leaves
    /// `R-TS`/`W-TS` untouched — fast-path writes are not part of any
    /// timestamp order, they occupy a single point in the owning shard's
    /// command order instead. `commit_ts` is the stamp drawn *at the shard*
    /// when the command was applied (drawing at the client would let two
    /// idle-window writers install out of stamp order).
    pub(crate) fn apply_confluent_write(
        &mut self,
        value: Value,
        commit_ts: Timestamp,
        watermark: Timestamp,
    ) {
        self.value = value;
        self.install_version(commit_ts, value, watermark);
    }

    // ------------------------------------------------------------------
    // Version chain (MVCC snapshot-read plane)
    // ------------------------------------------------------------------

    /// The committed versions currently retained, oldest first.
    pub fn versions(&self) -> impl Iterator<Item = &Version> + '_ {
        self.versions.iter()
    }

    /// Set how many versions to keep above the watermark (at least one),
    /// re-reserving the ring so steady-state installs never reallocate.
    pub fn set_version_retain(&mut self, retain: usize) {
        self.version_retain = retain.max(1);
        let want = self.version_retain * VERSION_HARD_CAP_FACTOR + 1;
        if self.versions.capacity() < want {
            self.versions.reserve(want - self.versions.len());
        }
    }

    /// The newest committed value with a stamp at or below `ts`, or `None`
    /// when the chain no longer reaches back that far (pruned past `ts`) —
    /// the caller must refuse the snapshot read and fall back.
    pub fn snapshot_value_at(&self, ts: Timestamp) -> Option<Version> {
        self.versions.iter().rev().find(|v| v.ts <= ts).copied()
    }

    /// The raw head of the chain: the newest committed version regardless
    /// of any watermark. Only the `snapshot_validation = false` mutation
    /// switch serves this — it is exactly the torn read the watermark
    /// check exists to prevent.
    pub fn head_version(&self) -> Version {
        *self.versions.back().expect("the chain is never empty")
    }

    /// Append a committed `(ts, value)` version and prune: versions
    /// shadowed at the watermark (a newer version also ≤ watermark exists)
    /// are dropped once the chain exceeds the retain knob, and the hard
    /// cap drops oldest-first unconditionally. Unstamped writes
    /// (`Timestamp::ZERO`, the simulator path) keep the chain untouched.
    fn install_version(&mut self, ts: Timestamp, value: Value, watermark: Timestamp) {
        if ts == Timestamp::ZERO {
            return;
        }
        debug_assert!(
            self.versions.back().is_none_or(|v| v.ts <= ts),
            "commit stamps on one item must be monotone"
        );
        self.versions.push_back(Version { ts, value });
        while self.versions.len() > self.version_retain
            && self.versions.get(1).is_some_and(|v| v.ts <= watermark)
        {
            self.versions.pop_front();
        }
        while self.versions.len() > self.version_retain * VERSION_HARD_CAP_FACTOR {
            self.versions.pop_front();
        }
    }

    // ------------------------------------------------------------------
    // Incoming protocol actions
    // ------------------------------------------------------------------

    /// Handle an incoming access request (the `Access` message).
    pub fn handle_access(
        &mut self,
        txn: TxnId,
        site: SiteId,
        mode: AccessMode,
        method: CcMethod,
        ts: TsTuple,
        sink: &mut QmSink,
    ) {
        let effective_method = self.effective_method(method);
        match effective_method {
            CcMethod::TwoPhaseLocking => {
                let precedence = self
                    .assign
                    .assign(CcMethod::TwoPhaseLocking, ts.ts, site, txn);
                self.queue.insert(QueueEntry {
                    txn,
                    mode,
                    method,
                    precedence,
                    status: EntryStatus::Accepted,
                    granted: false,
                });
            }
            CcMethod::TimestampOrdering => {
                if self.to_acceptable(mode, ts.ts) {
                    let precedence = self.assign.assign(method, ts.ts, site, txn);
                    self.queue.insert(QueueEntry {
                        txn,
                        mode,
                        method,
                        precedence,
                        status: EntryStatus::Accepted,
                        granted: false,
                    });
                } else {
                    sink.replies.push(ReplyMsg::Reject {
                        txn,
                        item: self.item,
                    });
                    return;
                }
            }
            CcMethod::PrecedenceAgreement => {
                if self.to_acceptable(mode, ts.ts) {
                    let precedence = self.assign.assign(method, ts.ts, site, txn);
                    self.queue.insert(QueueEntry {
                        txn,
                        mode,
                        method,
                        precedence,
                        status: EntryStatus::Accepted,
                        granted: false,
                    });
                    // Acknowledge the acceptance unless the grant is issued in
                    // this very call (the grant then subsumes the ack). The
                    // ack, when needed, precedes any grants the insertion
                    // triggered, so it is spliced in at the pre-grant mark.
                    let mark = sink.replies.len();
                    self.try_grants(sink);
                    let granted_now = sink.replies[mark..]
                        .iter()
                        .any(|r| matches!(r, ReplyMsg::Grant { txn: t, .. } if *t == txn));
                    if !granted_now {
                        sink.replies.insert(
                            mark,
                            ReplyMsg::Ack {
                                txn,
                                item: self.item,
                            },
                        );
                    }
                    return;
                } else {
                    let floor = match mode {
                        AccessMode::Read => self.w_ts,
                        AccessMode::Write => self.w_ts.max(self.r_ts),
                    };
                    let new_ts = ts.ts.min_backoff_above(ts.interval, floor);
                    self.assign.observe_ts(new_ts);
                    self.queue.insert(QueueEntry {
                        txn,
                        mode,
                        method,
                        precedence: Precedence::timestamped(new_ts, site, txn),
                        status: EntryStatus::Blocked,
                        granted: false,
                    });
                    sink.replies.push(ReplyMsg::Backoff {
                        txn,
                        item: self.item,
                        new_ts,
                    });
                }
            }
        }
        self.try_grants(sink);
    }

    /// Handle a PA `UpdatedTs` message: the issuer's final backed-off
    /// timestamp for this transaction.
    pub fn handle_updated_ts(&mut self, txn: TxnId, new_ts: Timestamp, sink: &mut QmSink) {
        let Some(entry) = self.queue.get(txn) else {
            return;
        };
        let site = match entry.precedence.class {
            PrecClass::NonTwoPl { site, .. } => site,
            // A 2PL entry never receives timestamp updates; ignore.
            PrecClass::TwoPl { .. } => return,
        };
        let was_granted = entry.granted;
        self.assign.observe_ts(new_ts);
        self.queue
            .reprioritise(txn, Precedence::timestamped(new_ts, site, txn));
        if was_granted {
            // Revoke the grant rather than carry it to the new precedence.
            // A grant kept while its entry moves *up* lets a conflicting
            // smaller-precedence request be granted and implemented
            // underneath the still-unimplemented lock; the log stays
            // serializable (the implementation order follows precedence),
            // but the value that was attached to this transaction's original
            // grant is then no longer its predecessor state — a lost update
            // for read-modify-write embedders. Dropping the lock re-queues
            // the entry at its backed-off precedence; `try_grants` re-issues
            // the grant (immediately, unless a smaller-precedence conflict
            // now exists) with a fresh value, and the issuer awaits fresh
            // grants for every item after its backoff round.
            if let Some(pos) = self.locks.iter().position(|l| l.txn == txn) {
                self.locks.remove(pos);
            }
            self.after_lock_removal(sink);
            return;
        }
        self.try_grants(sink);
    }

    /// Handle a `Release` message: drop the transaction's lock and queue
    /// entry. For a write access of a 2PL/PA transaction (or of a T/O
    /// transaction that never demoted), the value is installed and the
    /// operation is implemented now — appending `(commit_ts, value)` to the
    /// version chain when the release carries a stamp.
    pub fn handle_release(
        &mut self,
        txn: TxnId,
        write_value: Option<Value>,
        commit_ts: Timestamp,
        watermark: Timestamp,
        sink: &mut QmSink,
    ) {
        let Some(pos) = self.locks.iter().position(|l| l.txn == txn) else {
            // No lock held (already released, or the request never granted);
            // still drop any queue entry so the item does not leak state.
            self.queue.remove(txn);
            self.after_lock_removal(sink);
            return;
        };
        let lock = self.locks.remove(pos);
        // A semi-lock means the operation was already implemented at demote
        // time; a normal lock is implemented now.
        if !lock.mode.is_semi() {
            let mut stamp = None;
            if lock.access == AccessMode::Write {
                if let Some(v) = write_value {
                    self.value = v;
                    self.install_version(commit_ts, v, watermark);
                    if commit_ts != Timestamp::ZERO {
                        stamp = Some(commit_ts);
                    }
                }
            }
            sink.events.push(QmEvent::Implemented {
                item: self.item,
                txn,
                access: lock.access,
                commit_ts: stamp,
            });
        }
        self.queue.remove(txn);
        self.after_lock_removal(sink);
    }

    /// Handle a T/O `Demote` message: the transaction executed while holding
    /// at least one pre-scheduled lock; its lock on this item becomes a
    /// semi-lock and the operation is implemented now.
    pub fn handle_demote(
        &mut self,
        txn: TxnId,
        write_value: Option<Value>,
        commit_ts: Timestamp,
        watermark: Timestamp,
        sink: &mut QmSink,
    ) {
        let Some(lock) = self.locks.iter_mut().find(|l| l.txn == txn) else {
            return;
        };
        if lock.mode.is_semi() {
            // Already demoted; nothing to do.
            return;
        }
        let mut stamp = None;
        if lock.access == AccessMode::Write {
            if let Some(v) = write_value {
                self.value = v;
                if commit_ts != Timestamp::ZERO {
                    stamp = Some(commit_ts);
                }
            }
        }
        lock.mode = lock.mode.demoted();
        let access = lock.access;
        if let (Some(ts), Some(v)) = (stamp, write_value) {
            self.install_version(ts, v, watermark);
        }
        sink.events.push(QmEvent::Implemented {
            item: self.item,
            txn,
            access,
            commit_ts: stamp,
        });
        // Demotion can unblock waiting T/O requests (a WL that blocked a T/O
        // read became an SWL, an RL that blocked a T/O write became an SRL).
        self.try_grants(sink);
    }

    /// Handle an `Abort`: remove the transaction's lock and queue entry
    /// without implementing anything.
    pub fn handle_abort(&mut self, txn: TxnId, sink: &mut QmSink) {
        self.locks.retain(|l| l.txn != txn);
        self.queue.remove(txn);
        self.after_lock_removal(sink);
    }

    // ------------------------------------------------------------------
    // Wait-for edges for deadlock detection
    // ------------------------------------------------------------------

    /// Append this item's wait-for edges to `edges`: `(waiter, holder)` pairs
    /// where `waiter` is an ungranted request and `holder` is a transaction
    /// it must wait for (either the holder of a conflicting unreleased lock,
    /// or an earlier ungranted entry that must reach the head first).
    pub fn wait_edges_into(&self, edges: &mut Vec<(TxnId, TxnId)>) {
        let mut earlier_ungranted: Vec<TxnId> = Vec::new();
        for entry in self.queue.iter() {
            if entry.granted {
                continue;
            }
            // Lock-conflict edges: only locks held by smaller-precedence
            // entries actually block this request (mirrors the grant rule).
            for holder in self.queue.iter() {
                if !holder.granted
                    || holder.txn == entry.txn
                    || holder.precedence >= entry.precedence
                {
                    continue;
                }
                for lock in &self.locks {
                    if lock.txn == holder.txn
                        && self.lock_blocks_request(lock, entry.mode, entry.method)
                    {
                        edges.push((entry.txn, lock.txn));
                    }
                }
            }
            // Head-order edges: every earlier ungranted entry must be granted
            // before this one can reach the head.
            for &earlier in &earlier_ungranted {
                edges.push((entry.txn, earlier));
            }
            earlier_ungranted.push(entry.txn);
        }
        // A transaction holding a *pre-scheduled* lock is waiting for the
        // conflicting locks of smaller-precedence entries to be released
        // (that is when its normal grant is issued). Without these edges a
        // cycle running through a T/O transaction in its collect-normal-
        // grants phase would be invisible to the deadlock detector and the
        // 2PL member of the cycle would never be chosen as a victim.
        for lock in &self.locks {
            if lock.class != GrantClass::PreScheduled {
                continue;
            }
            let Some(my_prec) = self.queue.get(lock.txn).map(|e| e.precedence) else {
                continue;
            };
            for other in &self.locks {
                if other.txn != lock.txn
                    && other.mode.conflicts_with(lock.mode)
                    && self
                        .queue
                        .get(other.txn)
                        .is_some_and(|e| e.precedence < my_prec)
                {
                    edges.push((lock.txn, other.txn));
                }
            }
        }
    }

    /// The wait-for edges contributed by this item, as a fresh vector
    /// (convenience over [`ItemState::wait_edges_into`]).
    pub fn wait_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        self.wait_edges_into(&mut edges);
        edges
    }

    /// Append the transactions currently waiting (queued but not granted) at
    /// this item to `out`.
    pub fn waiting_txns_into(&self, out: &mut Vec<TxnId>) {
        out.extend(self.queue.iter().filter(|e| !e.granted).map(|e| e.txn));
    }

    /// The transactions currently waiting at this item, as a fresh vector.
    pub fn waiting_txns(&self) -> Vec<TxnId> {
        let mut out = Vec::new();
        self.waiting_txns_into(&mut out);
        out
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Under [`EnforcementMode::LockAll`] every T/O request is treated like a
    /// PA request for queueing and locking purposes (but it is still rejected
    /// rather than backed off, so the ablation changes only the enforcement
    /// side).
    fn effective_method(&self, method: CcMethod) -> CcMethod {
        match (self.enforcement, method) {
            (EnforcementMode::LockAll, CcMethod::TimestampOrdering) => CcMethod::TimestampOrdering,
            _ => method,
        }
    }

    fn to_acceptable(&self, mode: AccessMode, ts: Timestamp) -> bool {
        match mode {
            AccessMode::Read => ts > self.w_ts,
            AccessMode::Write => ts > self.w_ts && ts > self.r_ts,
        }
    }

    /// Does an outstanding lock block a head request of the given mode and
    /// method?
    fn lock_blocks_request(&self, lock: &HeldLock, mode: AccessMode, method: CcMethod) -> bool {
        let semi_aware =
            self.enforcement == EnforcementMode::SemiLock && method == CcMethod::TimestampOrdering;
        match (mode, semi_aware) {
            // 2PL/PA read: blocked by WL and SWL.
            (AccessMode::Read, false) => lock.mode.is_write_kind(),
            // 2PL/PA write: blocked by every lock.
            (AccessMode::Write, false) => true,
            // T/O read: blocked only by WL.
            (AccessMode::Read, true) => lock.mode == LockMode::Write,
            // T/O write: blocked by RL and WL (not by semi-locks).
            (AccessMode::Write, true) => {
                lock.mode == LockMode::Read || lock.mode == LockMode::Write
            }
        }
    }

    /// Whether an outstanding lock *conflicts* with a request (for deciding
    /// the pre-scheduled class), per the semi-lock conflict rule: at least
    /// one of the two is a write or semi-write lock.
    fn lock_conflicts_with_request(lock: &HeldLock, mode: AccessMode) -> bool {
        let requested = match mode {
            AccessMode::Read => LockMode::Read,
            AccessMode::Write => LockMode::Write,
        };
        lock.mode.conflicts_with(requested)
    }

    fn try_grants(&mut self, sink: &mut QmSink) {
        while let Some(head) = self.queue.head() {
            if head.status == EntryStatus::Blocked {
                break;
            }
            let txn = head.txn;
            let mode = head.mode;
            let method = head.method;
            let precedence = head.precedence;
            let prec_ts = precedence.ts;
            // The head is blocked only by conflicting locks whose queue
            // entries have *smaller precedence*. Locks held by later-
            // precedence requests (possible when a PA transaction's granted
            // entry was re-timestamped upwards by its backoff round) do not
            // block it — this is the reading of "previously granted" under
            // which the paper's Theorem 3 (only 2PL can block the system)
            // actually holds; blocking on wall-clock grant order instead
            // lets two PA transactions deadlock.
            let blocked = self.queue.iter().any(|e| {
                e.granted
                    && e.txn != txn
                    && e.precedence < precedence
                    && self
                        .locks
                        .iter()
                        .any(|l| l.txn == e.txn && self.lock_blocks_request(l, mode, method))
            });
            if blocked {
                break;
            }
            // Grant. The grant is pre-scheduled when a *smaller-precedence*
            // entry still holds a conflicting (possibly semi-) lock — the
            // same precedence-based reading of "granted earlier" as the
            // blocking rule above. Conflicting locks held by larger-
            // precedence entries are logically after this request and must
            // not tie its release to theirs (doing so creates PA/T-O wait
            // cycles with no 2PL member, which Theorem 3 rules out).
            let class = if self.queue.iter().any(|e| {
                e.granted
                    && e.txn != txn
                    && e.precedence < precedence
                    && self
                        .locks
                        .iter()
                        .any(|l| l.txn == e.txn && Self::lock_conflicts_with_request(l, mode))
            }) {
                GrantClass::PreScheduled
            } else {
                GrantClass::Normal
            };
            let lock_mode = match (mode, method, self.enforcement) {
                (AccessMode::Read, CcMethod::TimestampOrdering, EnforcementMode::SemiLock) => {
                    LockMode::SemiRead
                }
                (AccessMode::Read, _, _) => LockMode::Read,
                (AccessMode::Write, _, _) => LockMode::Write,
            };
            let seq = self.grant_counter;
            self.grant_counter += 1;
            self.locks.push(HeldLock {
                txn,
                mode: lock_mode,
                class,
                seq,
                access: mode,
            });
            self.queue.mark_granted(txn);
            match mode {
                AccessMode::Read => self.r_ts = self.r_ts.max(prec_ts),
                AccessMode::Write => self.w_ts = self.w_ts.max(prec_ts),
            }
            // The current value is attached to every grant, not only to
            // read grants. Whenever a grant is issued — normal or
            // pre-scheduled — every conflicting predecessor has already been
            // implemented (a semi-lock installs its value at demote time,
            // and a not-yet-implemented normal lock blocks the grant), so
            // the value is the request's correct predecessor state. Write
            // grants carrying the value is what gives embedders
            // read-modify-write semantics for items in the write set.
            sink.replies.push(ReplyMsg::Grant {
                txn,
                item: self.item,
                lock: lock_mode,
                class,
                value: Some(self.value),
                at: prec_ts,
            });
            sink.events.push(QmEvent::GrantIssued {
                item: self.item,
                txn,
                access: mode,
                lock: lock_mode,
                class,
            });
        }
    }

    /// After a lock disappears (release or abort): upgrade pre-scheduled
    /// locks whose conflicts are gone, then try to grant the head.
    fn after_lock_removal(&mut self, sink: &mut QmSink) {
        // Upgrade pre-scheduled locks that no longer have a conflicting lock
        // held by a smaller-precedence entry (mirror of the pre-scheduled
        // classification at grant time). The upgrade decisions are all taken
        // against the current lock table before any class is rewritten —
        // only the transaction ids are snapshotted (into the sink's reusable
        // scratch), not the whole lock vector.
        let mut upgrades = std::mem::take(&mut sink.upgrade_scratch);
        debug_assert!(upgrades.is_empty());
        for lock in self
            .locks
            .iter()
            .filter(|l| l.class == GrantClass::PreScheduled)
        {
            let Some(my_prec) = self.queue.get(lock.txn).map(|e| e.precedence) else {
                continue;
            };
            let still_conflicted = self.locks.iter().any(|other| {
                other.txn != lock.txn
                    && other.mode.conflicts_with(lock.mode)
                    && self
                        .queue
                        .get(other.txn)
                        .is_some_and(|e| e.precedence < my_prec)
            });
            if !still_conflicted {
                upgrades.push(lock.txn);
            }
        }
        for &txn in &upgrades {
            let at = self
                .queue
                .get(txn)
                .map(|e| e.precedence.ts)
                .unwrap_or(Timestamp::ZERO);
            if let Some(lock) = self.locks.iter_mut().find(|l| l.txn == txn) {
                lock.class = GrantClass::Normal;
                sink.replies.push(ReplyMsg::Grant {
                    txn: lock.txn,
                    item: self.item,
                    lock: lock.mode,
                    class: GrantClass::Normal,
                    value: None,
                    at,
                });
            }
        }
        upgrades.clear();
        sink.upgrade_scratch = upgrades;
        self.try_grants(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::LogicalItemId;

    fn item() -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(1), SiteId(0))
    }

    fn ts(v: u64) -> TsTuple {
        TsTuple::new(Timestamp(v), 10)
    }

    fn state() -> ItemState {
        ItemState::new(item(), 100, EnforcementMode::SemiLock)
    }

    /// Run an access through a fresh sink and return it.
    fn access(
        s: &mut ItemState,
        txn: u64,
        site: u32,
        mode: AccessMode,
        method: CcMethod,
        at: TsTuple,
    ) -> QmSink {
        let mut sink = QmSink::new();
        s.handle_access(TxnId(txn), SiteId(site), mode, method, at, &mut sink);
        sink
    }

    fn release(s: &mut ItemState, txn: u64, value: Option<Value>) -> QmSink {
        let mut sink = QmSink::new();
        s.handle_release(
            TxnId(txn),
            value,
            Timestamp::ZERO,
            Timestamp::ZERO,
            &mut sink,
        );
        sink
    }

    /// Transactions granted a *real* lock in this sink (a real grant always
    /// carries the item value; normal-upgrade notices carry `None`).
    fn grant_txns(sink: &QmSink) -> Vec<TxnId> {
        sink.events
            .iter()
            .filter_map(|e| match e {
                QmEvent::GrantIssued { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect()
    }

    /// Transactions whose pre-scheduled lock became normal in this sink.
    fn upgraded_txns(sink: &QmSink) -> Vec<(TxnId, LockMode)> {
        sink.replies
            .iter()
            .filter_map(|r| match r {
                ReplyMsg::Grant {
                    txn,
                    lock,
                    class: GrantClass::Normal,
                    value: None,
                    ..
                } => Some((*txn, *lock)),
                _ => None,
            })
            .collect()
    }

    fn implemented(sink: &QmSink) -> Vec<(TxnId, AccessMode)> {
        sink.events
            .iter()
            .filter_map(|e| match e {
                QmEvent::Implemented { txn, access, .. } => Some((*txn, *access)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn two_pl_requests_grant_fcfs_and_block_on_conflict() {
        let mut s = state();
        let e1 = access(
            &mut s,
            1,
            0,
            AccessMode::Read,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        assert_eq!(grant_txns(&e1), vec![TxnId(1)]);
        // A second reader is also granted (read locks are compatible).
        let e2 = access(
            &mut s,
            2,
            1,
            AccessMode::Read,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        assert_eq!(grant_txns(&e2), vec![TxnId(2)]);
        // A writer must wait for both readers.
        let e3 = access(
            &mut s,
            3,
            2,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        assert!(grant_txns(&e3).is_empty());
        // Release one reader: still blocked; release the second: granted.
        let e4 = release(&mut s, 1, None);
        assert!(grant_txns(&e4).is_empty());
        let e5 = release(&mut s, 2, None);
        assert_eq!(grant_txns(&e5), vec![TxnId(3)]);
    }

    #[test]
    fn read_grant_attaches_current_value_and_write_applies_at_release() {
        let mut s = state();
        let e = access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        assert_eq!(grant_txns(&e), vec![TxnId(1)]);
        assert_eq!(s.value(), 100, "value unchanged until release");
        release(&mut s, 1, Some(250));
        assert_eq!(s.value(), 250);
        let e = access(
            &mut s,
            2,
            0,
            AccessMode::Read,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        match &e.replies[0] {
            ReplyMsg::Grant { value, .. } => assert_eq!(*value, Some(250)),
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    fn to_read_below_w_ts_is_rejected() {
        let mut s = state();
        // A T/O writer with ts 50 is granted and released, setting W-TS = 50.
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TimestampOrdering,
            ts(50),
        );
        release(&mut s, 1, Some(7));
        // A reader with a smaller timestamp must be rejected.
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Read,
            CcMethod::TimestampOrdering,
            ts(40),
        );
        assert_eq!(
            e.replies,
            vec![ReplyMsg::Reject {
                txn: TxnId(2),
                item: item()
            }]
        );
        assert!(e.events.is_empty());
        // A reader with a larger timestamp is accepted.
        let e = access(
            &mut s,
            3,
            1,
            AccessMode::Read,
            CcMethod::TimestampOrdering,
            ts(60),
        );
        assert_eq!(grant_txns(&e), vec![TxnId(3)]);
    }

    #[test]
    fn to_write_checks_both_thresholds() {
        let mut s = state();
        access(
            &mut s,
            1,
            0,
            AccessMode::Read,
            CcMethod::TimestampOrdering,
            ts(80),
        );
        // R-TS is now 80; a write with ts 70 is rejected even though W-TS is 0.
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Write,
            CcMethod::TimestampOrdering,
            ts(70),
        );
        assert_eq!(
            e.replies,
            vec![ReplyMsg::Reject {
                txn: TxnId(2),
                item: item()
            }]
        );
    }

    #[test]
    fn pa_request_backs_off_instead_of_rejecting() {
        let mut s = state();
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::PrecedenceAgreement,
            ts(50),
        );
        release(&mut s, 1, Some(1));
        // PA read at ts 30 with interval 10: smallest 30 + 10k above 50 is 60.
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Read,
            CcMethod::PrecedenceAgreement,
            TsTuple::new(Timestamp(30), 10),
        );
        assert_eq!(
            e.replies,
            vec![ReplyMsg::Backoff {
                txn: TxnId(2),
                item: item(),
                new_ts: Timestamp(60)
            }]
        );
        // The blocked entry is not granted until the updated timestamp arrives.
        assert!(s.queue_len() == 1);
        let mut sink = QmSink::new();
        s.handle_updated_ts(TxnId(2), Timestamp(75), &mut sink);
        assert_eq!(grant_txns(&sink), vec![TxnId(2)]);
    }

    #[test]
    fn pa_accepted_but_queued_is_acknowledged_before_grants() {
        let mut s = state();
        // A 2PL writer holds the item, so an accepted PA reader queues.
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Read,
            CcMethod::PrecedenceAgreement,
            ts(50),
        );
        assert_eq!(
            e.replies,
            vec![ReplyMsg::Ack {
                txn: TxnId(2),
                item: item()
            }],
            "accepted-but-queued PA request is acknowledged"
        );
    }

    #[test]
    fn blocked_pa_entry_prevents_later_grants() {
        let mut s = state();
        // Seed thresholds with a granted+released PA write at ts 50.
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::PrecedenceAgreement,
            ts(50),
        );
        release(&mut s, 1, None);
        // PA write at ts 20 gets backed off (blocked, proposed 60).
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Write,
            CcMethod::PrecedenceAgreement,
            TsTuple::new(Timestamp(20), 40),
        );
        assert!(matches!(e.replies[0], ReplyMsg::Backoff { .. }));
        // A later T/O read at ts 100 queues behind the blocked entry and must
        // not be granted while the head is blocked.
        let e = access(
            &mut s,
            3,
            2,
            AccessMode::Read,
            CcMethod::TimestampOrdering,
            ts(100),
        );
        assert!(grant_txns(&e).is_empty(), "head is blocked; nothing grants");
        // Once the PA entry is accepted, both grant in precedence order.
        let mut sink = QmSink::new();
        s.handle_updated_ts(TxnId(2), Timestamp(60), &mut sink);
        assert_eq!(grant_txns(&sink), vec![TxnId(2)]);
    }

    #[test]
    fn semi_lock_lets_to_read_overlap_semi_write() {
        let mut s = state();
        // A T/O writer is granted (normal), executes, and demotes because it
        // held a pre-scheduled lock elsewhere — here we just demote directly.
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TimestampOrdering,
            ts(10),
        );
        let mut sink = QmSink::new();
        s.handle_demote(
            TxnId(1),
            Some(777),
            Timestamp::ZERO,
            Timestamp::ZERO,
            &mut sink,
        );
        assert_eq!(implemented(&sink), vec![(TxnId(1), AccessMode::Write)]);
        assert_eq!(s.value(), 777, "demote implements the write");
        // A T/O reader with a later timestamp may be granted an SRL even
        // though the SWL is still held…
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Read,
            CcMethod::TimestampOrdering,
            ts(20),
        );
        assert_eq!(grant_txns(&e), vec![TxnId(2)]);
        match &e.replies[0] {
            ReplyMsg::Grant {
                lock, class, value, ..
            } => {
                assert_eq!(*lock, LockMode::SemiRead);
                assert_eq!(*class, GrantClass::PreScheduled);
                assert_eq!(*value, Some(777), "reads the demoted writer's value");
            }
            other => panic!("unexpected {other:?}"),
        }
        // …but a PA reader is still blocked by the semi-write lock.
        let e = access(
            &mut s,
            3,
            2,
            AccessMode::Read,
            CcMethod::PrecedenceAgreement,
            ts(30),
        );
        assert!(grant_txns(&e).is_empty());
        // When the T/O writer finally releases, the pre-scheduled SRL becomes
        // normal and the PA reader is granted.
        let e = release(&mut s, 1, None);
        assert_eq!(upgraded_txns(&e), vec![(TxnId(2), LockMode::SemiRead)]);
        assert!(grant_txns(&e).contains(&TxnId(3)));
    }

    #[test]
    fn lock_all_mode_blocks_to_read_behind_semi_write() {
        let mut s = ItemState::new(item(), 0, EnforcementMode::LockAll);
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TimestampOrdering,
            ts(10),
        );
        let mut sink = QmSink::new();
        s.handle_demote(
            TxnId(1),
            Some(5),
            Timestamp::ZERO,
            Timestamp::ZERO,
            &mut sink,
        );
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Read,
            CcMethod::TimestampOrdering,
            ts(20),
        );
        assert!(
            grant_txns(&e).is_empty(),
            "under lock-all enforcement the T/O read waits for the release"
        );
        let e = release(&mut s, 1, None);
        assert_eq!(grant_txns(&e), vec![TxnId(2)]);
    }

    #[test]
    fn release_implements_and_purges_state() {
        let mut s = state();
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::PrecedenceAgreement,
            ts(5),
        );
        let e = release(&mut s, 1, Some(9));
        assert_eq!(implemented(&e), vec![(TxnId(1), AccessMode::Write)]);
        assert!(s.is_idle());
        assert_eq!(s.value(), 9);
        // Releasing again is a no-op.
        let e = release(&mut s, 1, Some(1000));
        assert!(implemented(&e).is_empty());
        assert_eq!(s.value(), 9);
    }

    #[test]
    fn release_after_demote_does_not_reimplement() {
        let mut s = state();
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TimestampOrdering,
            ts(5),
        );
        let mut sink = QmSink::new();
        s.handle_demote(
            TxnId(1),
            Some(1),
            Timestamp::ZERO,
            Timestamp::ZERO,
            &mut sink,
        );
        assert_eq!(implemented(&sink).len(), 1);
        let release_events = release(&mut s, 1, Some(2));
        assert_eq!(
            implemented(&release_events).len(),
            0,
            "a demoted lock's operation is implemented only once"
        );
        assert_eq!(s.value(), 1, "the release after demote does not overwrite");
    }

    #[test]
    fn abort_discards_without_implementing() {
        let mut s = state();
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        access(
            &mut s,
            2,
            1,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        let mut e = QmSink::new();
        s.handle_abort(TxnId(1), &mut e);
        assert!(implemented(&e).is_empty());
        assert_eq!(
            grant_txns(&e),
            vec![TxnId(2)],
            "the waiter is granted after the abort"
        );
        assert_eq!(s.value(), 100);
    }

    #[test]
    fn crash_recover_wipes_waiters_keeps_grants_and_regrants() {
        let mut s = state();
        // t1 holds the write lock; t2 and t3 wait.
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        access(
            &mut s,
            2,
            1,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        access(
            &mut s,
            3,
            2,
            AccessMode::Read,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        assert!(s.involves(TxnId(2)) && s.has_queued(TxnId(3)));
        let mut sink = QmSink::new();
        let wiped = s.crash_recover(&mut sink);
        assert_eq!(wiped, 2, "both waiters wiped");
        assert!(grant_txns(&sink).is_empty(), "nothing new grantable yet");
        assert_eq!(s.locks().len(), 1, "the granted lock survives");
        assert_eq!(s.queue_len(), 1);
        assert!(!s.involves(TxnId(2)));
        // The holder's release still implements its write after the crash.
        let e = release(&mut s, 1, Some(41));
        assert_eq!(implemented(&e), vec![(TxnId(1), AccessMode::Write)]);
        assert_eq!(s.value(), 41);
        assert!(s.is_idle());
        // A present-txns report covers queued and locked transactions.
        access(
            &mut s,
            4,
            0,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        let mut present = Vec::new();
        s.present_txns_into(&mut present);
        present.sort_unstable();
        present.dedup();
        assert_eq!(present, vec![TxnId(4)]);
    }

    #[test]
    fn crash_recover_wipes_blocked_heads_too() {
        let mut s = state();
        // Seed thresholds, then park a blocked PA head in front of an
        // ungranted T/O read (same shape as
        // `blocked_pa_entry_prevents_later_grants`).
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::PrecedenceAgreement,
            ts(50),
        );
        release(&mut s, 1, None);
        access(
            &mut s,
            2,
            1,
            AccessMode::Write,
            CcMethod::PrecedenceAgreement,
            TsTuple::new(Timestamp(20), 40),
        );
        let e = access(
            &mut s,
            3,
            2,
            AccessMode::Read,
            CcMethod::TimestampOrdering,
            ts(100),
        );
        assert!(grant_txns(&e).is_empty(), "blocked head holds t3 back");
        let mut sink = QmSink::new();
        let wiped = s.crash_recover(&mut sink);
        assert_eq!(wiped, 2, "both ungranted entries wiped");
        assert!(s.is_idle(), "no locks were held; item empty after crash");
    }

    #[test]
    fn wait_edges_capture_lock_and_order_waits() {
        let mut s = state();
        access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        access(
            &mut s,
            2,
            1,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        access(
            &mut s,
            3,
            2,
            AccessMode::Write,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        let edges = s.wait_edges();
        // t2 waits for the holder t1; t3 waits for t1 (lock) and t2 (order).
        assert!(edges.contains(&(TxnId(2), TxnId(1))));
        assert!(edges.contains(&(TxnId(3), TxnId(1))));
        assert!(edges.contains(&(TxnId(3), TxnId(2))));
        assert!(!edges.iter().any(|&(w, _)| w == TxnId(1)));
        assert_eq!(s.waiting_txns(), vec![TxnId(2), TxnId(3)]);
        // The `_into` variants append to the caller's buffers.
        let mut buf = vec![(TxnId(99), TxnId(98))];
        s.wait_edges_into(&mut buf);
        assert_eq!(buf[0], (TxnId(99), TxnId(98)));
        assert_eq!(buf.len(), 1 + edges.len());
    }

    #[test]
    fn to_timestamp_order_enforced_among_queued_requests() {
        let mut s = state();
        // Two T/O writers arrive out of order while a 2PL reader holds the item.
        access(
            &mut s,
            1,
            0,
            AccessMode::Read,
            CcMethod::TwoPhaseLocking,
            ts(0),
        );
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Write,
            CcMethod::TimestampOrdering,
            ts(50),
        );
        assert!(grant_txns(&e).is_empty());
        let e = access(
            &mut s,
            3,
            2,
            AccessMode::Write,
            CcMethod::TimestampOrdering,
            ts(40),
        );
        assert!(grant_txns(&e).is_empty());
        // Release the reader: the smaller-timestamp writer (t3) must be
        // granted first, then t2 after t3 releases.
        let e = release(&mut s, 1, None);
        assert_eq!(grant_txns(&e), vec![TxnId(3)]);
        let e = release(&mut s, 3, Some(1));
        assert_eq!(grant_txns(&e), vec![TxnId(2)]);
    }

    #[test]
    fn updated_ts_revokes_and_regrants_with_fresh_value() {
        // P (PA) is granted a write at ts 10, then backs off to ts 50 while
        // T (T/O, ts 20) waits. The timestamp update must revoke P's grant:
        // T is granted first (value 100), implements its write (v = 7), and
        // only then is P re-granted — with the fresh value, not the one
        // attached to its original grant. Keeping the original grant would
        // let P overwrite T's update from a stale read.
        let mut s = state();
        let e = access(
            &mut s,
            1,
            0,
            AccessMode::Write,
            CcMethod::PrecedenceAgreement,
            ts(10),
        );
        assert_eq!(grant_txns(&e), vec![TxnId(1)]);
        let e = access(
            &mut s,
            2,
            1,
            AccessMode::Write,
            CcMethod::TimestampOrdering,
            ts(20),
        );
        assert!(grant_txns(&e).is_empty(), "blocked behind P's write lock");

        let mut e = QmSink::new();
        s.handle_updated_ts(TxnId(1), Timestamp(50), &mut e);
        assert_eq!(grant_txns(&e), vec![TxnId(2)], "revocation unblocks T");
        let t_value = e.replies.iter().find_map(|r| match r {
            ReplyMsg::Grant {
                txn: TxnId(2),
                value,
                ..
            } => *value,
            _ => None,
        });
        assert_eq!(t_value, Some(100), "T reads the original value");

        let e = release(&mut s, 2, Some(7));
        assert_eq!(grant_txns(&e), vec![TxnId(1)], "P re-granted after T");
        let p_value = e.replies.iter().find_map(|r| match r {
            ReplyMsg::Grant {
                txn: TxnId(1),
                value,
                ..
            } => *value,
            _ => None,
        });
        assert_eq!(p_value, Some(7), "P's re-grant carries the fresh value");
        assert_eq!(s.w_ts(), Timestamp(50));
    }
}
