//! The reusable output sink of the engine hot path.
//!
//! The seed engine returned a fresh `Vec<ItemEvent>` from every
//! `ItemState::handle_*` call and translated it into a freshly allocated
//! `QmOutput { Vec<ReplyMsg>, Vec<QmEvent> }` per message — three heap
//! allocations per protocol message, ~16 messages per wide transaction.
//! [`QmSink`] replaces all of that with one pair of accumulators the
//! caller owns and reuses: item states push their replies and events
//! straight into the sink, a whole drained command batch flows through
//! [`crate::qm::QueueManager::handle_batch`] into the same sink, and the
//! shard flushes replies directly from it. After warm-up the capacities
//! stabilise and a steady-state batch performs **zero** heap allocations
//! (asserted by the counting-allocator test in `integration-tests`).

use dbmodel::TxnId;
use pam::ReplyMsg;

use crate::qm::QmEvent;

/// Reply/event accumulators for the engine hot path, reused across
/// batches. `clear()` between batches retains every buffer's capacity.
#[derive(Debug, Clone, Default)]
pub struct QmSink {
    /// Replies to send back to request issuers, in processing order.
    pub replies: Vec<ReplyMsg>,
    /// Metric / log events, in processing order.
    pub events: Vec<QmEvent>,
    /// Scratch for `ItemState::after_lock_removal`'s pre-scheduled → normal
    /// upgrade pass (replaces the seed's full `locks.clone()` snapshot).
    pub(crate) upgrade_scratch: Vec<TxnId>,
}

impl QmSink {
    /// An empty sink. Buffers are grown on first use and retained from
    /// then on.
    pub fn new() -> Self {
        QmSink::default()
    }

    /// A sink with pre-reserved reply/event capacity (skips the warm-up
    /// growth for callers that know their batch shape).
    pub fn with_capacity(replies: usize, events: usize) -> Self {
        QmSink {
            replies: Vec::with_capacity(replies),
            events: Vec::with_capacity(events),
            upgrade_scratch: Vec::new(),
        }
    }

    /// Drop accumulated replies and events, keeping all capacity.
    pub fn clear(&mut self) {
        self.replies.clear();
        self.events.clear();
    }

    /// True when no replies and no events are pending.
    pub fn is_empty(&self) -> bool {
        self.replies.is_empty() && self.events.is_empty()
    }

    /// Current reply capacity (allocation-stability tests).
    pub fn reply_capacity(&self) -> usize {
        self.replies.capacity()
    }

    /// Current event capacity (allocation-stability tests).
    pub fn event_capacity(&self) -> usize {
        self.events.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_retains_capacity() {
        let mut sink = QmSink::with_capacity(8, 4);
        let (r, e) = (sink.reply_capacity(), sink.event_capacity());
        assert!(r >= 8 && e >= 4);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.reply_capacity(), r);
        assert_eq!(sink.event_capacity(), e);
    }
}
