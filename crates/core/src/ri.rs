//! The request issuer (RI): the per-transaction coordinator state machine.
//!
//! One [`RequestIssuer`] exists per transaction *incarnation* (a restart
//! creates a fresh incarnation with a fresh transaction id). It sends the
//! transaction's physical requests to the queue managers, reacts to grants,
//! rejections and backoff proposals according to the transaction's chosen
//! protocol, and drives the release (or demote-then-release) sequence after
//! execution.
//!
//! The issuer is a pure state machine: every entry point returns an
//! [`RiOutput`] containing the messages to send and the lifecycle actions the
//! driver must take (start the local-computation timer, record a commit,
//! restart the transaction, …).

use std::collections::BTreeMap;

use dbmodel::{
    AccessMode, CcMethod, LogicalItemId, PhysicalItemId, Timestamp, Transaction, TsTuple, TxnId,
    Value,
};
use pam::{GrantClass, ReplyMsg, RequestMsg};

/// The lifecycle phase of a transaction incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiPhase {
    /// Requests sent; waiting for the first reply from every item.
    Requesting,
    /// PA only: the final backed-off timestamp has been broadcast; waiting
    /// for the remaining grants.
    AwaitingBackoffGrants,
    /// All items granted; the local computing phase is in progress.
    Executing,
    /// T/O only: executed while holding a pre-scheduled lock; locks were
    /// demoted to semi-locks and the issuer is collecting normal grants.
    AwaitingNormalGrants,
    /// All locks released; the incarnation is complete.
    Finished,
    /// The incarnation was aborted (T/O rejection or deadlock victim) and
    /// will be restarted by the driver.
    Aborted,
}

/// Lifecycle actions the driver must take in response to issuer output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiAction {
    /// Every item is granted: schedule the end of the local computing phase.
    StartExecution,
    /// The transaction is considered executed: record its system time.
    Committed,
    /// Every lock has been released; the incarnation holds no more resources.
    FullyReleased,
    /// The incarnation aborted and must be restarted. `rejected` is true for
    /// a T/O rejection and false for a deadlock abort.
    Restart {
        /// True when the restart was caused by a T/O rejection.
        rejected: bool,
    },
    /// PA: one backoff round was performed.
    BackoffRound,
}

/// The output of one issuer step.
#[derive(Debug, Clone, Default)]
pub struct RiOutput {
    /// Messages to send; each message's item identifies the destination site.
    pub sends: Vec<RequestMsg>,
    /// Lifecycle actions for the driver.
    pub actions: Vec<RiAction>,
}

impl RiOutput {
    fn send(&mut self, msg: RequestMsg) {
        self.sends.push(msg);
    }
    fn action(&mut self, a: RiAction) {
        self.actions.push(a);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemProgress {
    /// No reply (or no final reply after a backoff round) received yet.
    Waiting,
    /// PA: the request was accepted at its timestamp; the grant will follow.
    Acked,
    /// Granted, but the grant was pre-scheduled and no normal grant has
    /// arrived yet.
    PreScheduled,
    /// A normal grant has been received.
    NormalGranted,
    /// PA: this item proposed a backoff timestamp.
    BackoffProposed(Timestamp),
}

impl ItemProgress {
    fn is_granted(self) -> bool {
        matches!(
            self,
            ItemProgress::PreScheduled | ItemProgress::NormalGranted
        )
    }
}

#[derive(Debug, Clone)]
struct ItemReq {
    item: PhysicalItemId,
    mode: AccessMode,
    progress: ItemProgress,
}

/// The per-incarnation request issuer.
#[derive(Debug, Clone)]
pub struct RequestIssuer {
    txn: Transaction,
    ts: TsTuple,
    items: Vec<ItemReq>,
    phase: RiPhase,
    had_prescheduled: bool,
    read_results: BTreeMap<PhysicalItemId, Value>,
    write_values: BTreeMap<LogicalItemId, Value>,
    /// Global commit stamp the incarnation's writes are implemented at;
    /// `Timestamp::ZERO` = unstamped (simulator path).
    commit_ts: Timestamp,
}

impl RequestIssuer {
    /// Create an issuer for one transaction incarnation.
    ///
    /// `accesses` is the transaction's physical access list (one entry per
    /// physical item), normally produced by
    /// [`dbmodel::Catalog::translate_txn`].
    pub fn new(txn: Transaction, ts: TsTuple, accesses: Vec<(PhysicalItemId, AccessMode)>) -> Self {
        let items = accesses
            .into_iter()
            .map(|(item, mode)| ItemReq {
                item,
                mode,
                progress: ItemProgress::Waiting,
            })
            .collect();
        RequestIssuer {
            txn,
            ts,
            items,
            phase: RiPhase::Requesting,
            had_prescheduled: false,
            read_results: BTreeMap::new(),
            write_values: BTreeMap::new(),
            commit_ts: Timestamp::ZERO,
        }
    }

    /// Stamp the incarnation's writes with a global commit timestamp; the
    /// Release/Demote messages built by [`Self::on_execution_done`] carry it
    /// so the queue managers can append to the item version chains. Must be
    /// called before `on_execution_done` to take effect.
    pub fn set_commit_ts(&mut self, ts: Timestamp) {
        self.commit_ts = ts;
    }

    /// The transaction this issuer coordinates.
    pub fn txn(&self) -> &Transaction {
        &self.txn
    }

    /// The transaction id.
    pub fn txn_id(&self) -> TxnId {
        self.txn.id
    }

    /// The current phase.
    pub fn phase(&self) -> RiPhase {
        self.phase
    }

    /// The current (possibly backed-off) timestamp tuple.
    pub fn ts(&self) -> TsTuple {
        self.ts
    }

    /// The values read so far, keyed by physical item.
    pub fn read_results(&self) -> &BTreeMap<PhysicalItemId, Value> {
        &self.read_results
    }

    /// The value read for a logical item, if any copy of it was read.
    pub fn read_value(&self, item: LogicalItemId) -> Option<Value> {
        self.read_results
            .iter()
            .find(|(p, _)| p.logical == item)
            .map(|(_, &v)| v)
    }

    /// Provide the value the transaction will write to a logical item during
    /// its write phase. If not provided, the transaction id is written (the
    /// simulator does not care about values, only about ordering).
    pub fn set_write_value(&mut self, item: LogicalItemId, value: Value) {
        self.write_values.insert(item, value);
    }

    /// True if every item has at least one grant.
    pub fn all_granted(&self) -> bool {
        self.items.iter().all(|i| i.progress.is_granted())
    }

    /// The physical items this incarnation accesses.
    pub fn accessed_items(&self) -> impl Iterator<Item = (PhysicalItemId, AccessMode)> + '_ {
        self.items.iter().map(|i| (i.item, i.mode))
    }

    /// A human-readable snapshot of the per-item progress, for diagnostics
    /// ("which grant is this transaction still waiting for?").
    pub fn progress_summary(&self) -> String {
        let items: Vec<String> = self
            .items
            .iter()
            .map(|i| {
                let state = match i.progress {
                    ItemProgress::Waiting => "waiting",
                    ItemProgress::Acked => "acked",
                    ItemProgress::PreScheduled => "pre-scheduled",
                    ItemProgress::NormalGranted => "granted",
                    ItemProgress::BackoffProposed(_) => "backoff-proposed",
                };
                format!("{}:{state}", i.item)
            })
            .collect();
        format!("{:?} [{}]", self.phase, items.join(", "))
    }

    /// Emit the initial request messages. Must be called exactly once.
    pub fn start(&mut self) -> RiOutput {
        assert_eq!(
            self.phase,
            RiPhase::Requesting,
            "start() may only be called once"
        );
        let mut out = RiOutput::default();
        for req in &self.items {
            out.send(RequestMsg::Access {
                txn: self.txn.id,
                item: req.item,
                mode: req.mode,
                method: self.txn.method,
                ts: self.ts,
            });
        }
        // A degenerate transaction with no accesses commits immediately.
        if self.items.is_empty() {
            self.phase = RiPhase::Executing;
            out.action(RiAction::StartExecution);
        }
        out
    }

    /// Process one reply from a queue manager.
    pub fn on_reply(&mut self, reply: &ReplyMsg) -> RiOutput {
        let mut out = RiOutput::default();
        if matches!(self.phase, RiPhase::Finished | RiPhase::Aborted) {
            return out;
        }
        debug_assert_eq!(reply.txn(), self.txn.id, "reply routed to the wrong issuer");
        match reply {
            ReplyMsg::Ack { item, .. } => {
                if let Some(req) = self.items.iter_mut().find(|r| r.item == *item) {
                    if req.progress == ItemProgress::Waiting {
                        req.progress = ItemProgress::Acked;
                    }
                }
                self.after_progress(&mut out);
            }
            ReplyMsg::Grant {
                item,
                class,
                value,
                at,
                ..
            } => {
                // After a PA backoff round, only grants issued at the
                // backed-off timestamp count: a grant issued at the original
                // timestamp was revoked by the `UpdatedTs` broadcast (it may
                // still be in flight when the round fires) and its attached
                // value may be stale — the queue re-issues the grant at the
                // new timestamp once the intervening requests implement. The
                // guard covers every post-round phase (not just the waiting
                // one) so a reordered transport cannot sneak the stale value
                // into `read_results` during execution. It is PA-specific:
                // 2PL grants legitimately carry per-queue precedence
                // timestamps that differ from the transaction's own.
                if self.txn.method == CcMethod::PrecedenceAgreement
                    && self.phase != RiPhase::Requesting
                    && *at != self.ts.ts
                {
                    return out;
                }
                if let Some(v) = value {
                    self.read_results.insert(*item, *v);
                }
                if let Some(req) = self.items.iter_mut().find(|r| r.item == *item) {
                    req.progress = match (req.progress, class) {
                        // A second (normal) grant upgrades a pre-scheduled one.
                        (_, GrantClass::Normal) => ItemProgress::NormalGranted,
                        (ItemProgress::NormalGranted, _) => ItemProgress::NormalGranted,
                        (_, GrantClass::PreScheduled) => {
                            self.had_prescheduled = true;
                            ItemProgress::PreScheduled
                        }
                    };
                }
                self.after_progress(&mut out);
            }
            ReplyMsg::Reject { .. } => {
                self.abort(&mut out, true);
            }
            ReplyMsg::Backoff { item, new_ts, .. } => {
                if let Some(req) = self.items.iter_mut().find(|r| r.item == *item) {
                    req.progress = ItemProgress::BackoffProposed(*new_ts);
                }
                self.after_progress(&mut out);
            }
        }
        out
    }

    /// The driver signals that the local computing phase has finished.
    pub fn on_execution_done(&mut self) -> RiOutput {
        let mut out = RiOutput::default();
        if self.phase != RiPhase::Executing {
            return out;
        }
        let semi_path = self.txn.method == CcMethod::TimestampOrdering && self.had_prescheduled;
        if semi_path {
            for req in &self.items {
                out.send(RequestMsg::Demote {
                    txn: self.txn.id,
                    item: req.item,
                    write_value: self.write_value_for(req),
                    commit_ts: self.commit_ts,
                });
            }
            out.action(RiAction::Committed);
            if self.all_normal_granted() {
                self.release_all(&mut out);
            } else {
                self.phase = RiPhase::AwaitingNormalGrants;
            }
        } else {
            for req in &self.items {
                out.send(RequestMsg::Release {
                    txn: self.txn.id,
                    item: req.item,
                    write_value: self.write_value_for(req),
                    commit_ts: self.commit_ts,
                });
            }
            out.action(RiAction::Committed);
            out.action(RiAction::FullyReleased);
            self.phase = RiPhase::Finished;
        }
        out
    }

    /// The driver selected this incarnation as a deadlock victim. Only
    /// meaningful while the incarnation is still waiting for grants.
    pub fn abort_for_deadlock(&mut self) -> RiOutput {
        let mut out = RiOutput::default();
        if !matches!(
            self.phase,
            RiPhase::Requesting | RiPhase::AwaitingBackoffGrants
        ) {
            return out;
        }
        self.abort(&mut out, false);
        out
    }

    // ------------------------------------------------------------------

    fn write_value_for(&self, req: &ItemReq) -> Option<Value> {
        if req.mode == AccessMode::Write {
            Some(
                self.write_values
                    .get(&req.item.logical)
                    .copied()
                    .unwrap_or(self.txn.id.0 as Value),
            )
        } else {
            None
        }
    }

    fn all_normal_granted(&self) -> bool {
        self.items
            .iter()
            .all(|i| i.progress == ItemProgress::NormalGranted)
    }

    /// Every item has answered the initial request round with an
    /// acknowledgement, a grant or a backoff proposal.
    fn all_replied(&self) -> bool {
        self.items
            .iter()
            .all(|i| !matches!(i.progress, ItemProgress::Waiting))
    }

    fn any_backoff(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i.progress, ItemProgress::BackoffProposed(_)))
    }

    fn after_progress(&mut self, out: &mut RiOutput) {
        match self.phase {
            RiPhase::Requesting | RiPhase::AwaitingBackoffGrants => {
                if self.all_granted() {
                    self.phase = RiPhase::Executing;
                    out.action(RiAction::StartExecution);
                } else if self.phase == RiPhase::Requesting
                    && self.txn.method == CcMethod::PrecedenceAgreement
                    && self.all_replied()
                    && self.any_backoff()
                {
                    // One backoff round: TS' = max over the proposed
                    // timestamps, broadcast to every accessed queue.
                    let new_ts = self
                        .items
                        .iter()
                        .filter_map(|i| match i.progress {
                            ItemProgress::BackoffProposed(ts) => Some(ts),
                            _ => None,
                        })
                        .max()
                        .expect("any_backoff() guarantees at least one proposal");
                    self.ts = TsTuple::new(new_ts, self.ts.interval);
                    // Every item re-decides at the new timestamp: queues
                    // revoke and re-issue grants held at the old precedence
                    // (with fresh values), so previously granted items go
                    // back to Waiting alongside the backed-off ones.
                    for req in self.items.iter_mut() {
                        req.progress = ItemProgress::Waiting;
                    }
                    for req in &self.items {
                        out.send(RequestMsg::UpdatedTs {
                            txn: self.txn.id,
                            item: req.item,
                            new_ts,
                        });
                    }
                    self.phase = RiPhase::AwaitingBackoffGrants;
                    out.action(RiAction::BackoffRound);
                }
            }
            RiPhase::AwaitingNormalGrants => {
                if self.all_normal_granted() {
                    self.release_all(out);
                }
            }
            // Upgrades arriving during execution are just recorded.
            RiPhase::Executing | RiPhase::Finished | RiPhase::Aborted => {}
        }
    }

    fn release_all(&mut self, out: &mut RiOutput) {
        // Values were already installed at demote time on this path.
        for req in &self.items {
            out.send(RequestMsg::Release {
                txn: self.txn.id,
                item: req.item,
                write_value: None,
                commit_ts: self.commit_ts,
            });
        }
        out.action(RiAction::FullyReleased);
        self.phase = RiPhase::Finished;
    }

    fn abort(&mut self, out: &mut RiOutput, rejected: bool) {
        for req in &self.items {
            out.send(RequestMsg::Abort {
                txn: self.txn.id,
                item: req.item,
            });
        }
        out.action(RiAction::Restart { rejected });
        self.phase = RiPhase::Aborted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{SiteId, Transaction};
    use pam::LockMode;

    fn li(i: u64) -> LogicalItemId {
        LogicalItemId(i)
    }
    fn pi(i: u64, s: u32) -> PhysicalItemId {
        PhysicalItemId::new(li(i), SiteId(s))
    }

    fn txn(id: u64, method: CcMethod) -> Transaction {
        Transaction::builder(TxnId(id), SiteId(0))
            .method(method)
            .read(li(1))
            .write(li(2))
            .build()
    }

    fn accesses() -> Vec<(PhysicalItemId, AccessMode)> {
        vec![(pi(1, 0), AccessMode::Read), (pi(2, 1), AccessMode::Write)]
    }

    fn grant(
        txn: u64,
        item: PhysicalItemId,
        class: GrantClass,
        value: Option<Value>,
        at: u64,
    ) -> ReplyMsg {
        ReplyMsg::Grant {
            txn: TxnId(txn),
            item,
            lock: LockMode::Read,
            class,
            value,
            at: Timestamp(at),
        }
    }

    #[test]
    fn two_pl_happy_path_commits_and_releases() {
        let mut ri = RequestIssuer::new(
            txn(1, CcMethod::TwoPhaseLocking),
            TsTuple::new(Timestamp(0), 10),
            accesses(),
        );
        let out = ri.start();
        assert_eq!(out.sends.len(), 2);
        assert!(matches!(out.sends[0], RequestMsg::Access { .. }));
        assert_eq!(ri.phase(), RiPhase::Requesting);

        let out = ri.on_reply(&grant(1, pi(1, 0), GrantClass::Normal, Some(42), 0));
        assert!(out.actions.is_empty());
        let out = ri.on_reply(&grant(1, pi(2, 1), GrantClass::Normal, None, 0));
        assert_eq!(out.actions, vec![RiAction::StartExecution]);
        assert_eq!(ri.phase(), RiPhase::Executing);
        assert_eq!(ri.read_value(li(1)), Some(42));

        ri.set_write_value(li(2), 777);
        let out = ri.on_execution_done();
        assert_eq!(
            out.actions,
            vec![RiAction::Committed, RiAction::FullyReleased]
        );
        assert_eq!(out.sends.len(), 2);
        let release_value = out.sends.iter().find_map(|m| match m {
            RequestMsg::Release {
                item, write_value, ..
            } if *item == pi(2, 1) => Some(*write_value),
            _ => None,
        });
        assert_eq!(release_value, Some(Some(777)));
        assert_eq!(ri.phase(), RiPhase::Finished);
    }

    #[test]
    fn to_rejection_aborts_everything() {
        let mut ri = RequestIssuer::new(
            txn(2, CcMethod::TimestampOrdering),
            TsTuple::new(Timestamp(5), 10),
            accesses(),
        );
        ri.start();
        ri.on_reply(&grant(2, pi(1, 0), GrantClass::Normal, Some(1), 5));
        let out = ri.on_reply(&ReplyMsg::Reject {
            txn: TxnId(2),
            item: pi(2, 1),
        });
        assert_eq!(out.actions, vec![RiAction::Restart { rejected: true }]);
        assert_eq!(out.sends.len(), 2, "aborts go to every accessed item");
        assert!(out
            .sends
            .iter()
            .all(|m| matches!(m, RequestMsg::Abort { .. })));
        assert_eq!(ri.phase(), RiPhase::Aborted);
        // Stale replies after the abort are ignored.
        let out = ri.on_reply(&grant(2, pi(2, 1), GrantClass::Normal, None, 5));
        assert!(out.sends.is_empty() && out.actions.is_empty());
    }

    #[test]
    fn pa_backoff_round_broadcasts_max_timestamp() {
        let mut ri = RequestIssuer::new(
            txn(3, CcMethod::PrecedenceAgreement),
            TsTuple::new(Timestamp(10), 5),
            accesses(),
        );
        ri.start();
        let out = ri.on_reply(&ReplyMsg::Backoff {
            txn: TxnId(3),
            item: pi(1, 0),
            new_ts: Timestamp(30),
        });
        assert!(out.actions.is_empty(), "waits for the second item's reply");
        let out = ri.on_reply(&ReplyMsg::Backoff {
            txn: TxnId(3),
            item: pi(2, 1),
            new_ts: Timestamp(45),
        });
        assert_eq!(out.actions, vec![RiAction::BackoffRound]);
        assert_eq!(out.sends.len(), 2);
        for msg in &out.sends {
            match msg {
                RequestMsg::UpdatedTs { new_ts, .. } => assert_eq!(*new_ts, Timestamp(45)),
                other => panic!("expected UpdatedTs, got {other:?}"),
            }
        }
        assert_eq!(ri.ts().ts, Timestamp(45));
        assert_eq!(ri.phase(), RiPhase::AwaitingBackoffGrants);
        // Grants now complete the negotiation.
        ri.on_reply(&grant(3, pi(1, 0), GrantClass::Normal, Some(0), 45));
        let out = ri.on_reply(&grant(3, pi(2, 1), GrantClass::Normal, None, 45));
        assert_eq!(out.actions, vec![RiAction::StartExecution]);
    }

    #[test]
    fn pa_mixed_grant_and_backoff_still_rounds() {
        let mut ri = RequestIssuer::new(
            txn(4, CcMethod::PrecedenceAgreement),
            TsTuple::new(Timestamp(10), 5),
            accesses(),
        );
        ri.start();
        ri.on_reply(&grant(4, pi(1, 0), GrantClass::Normal, Some(3), 10));
        let out = ri.on_reply(&ReplyMsg::Backoff {
            txn: TxnId(4),
            item: pi(2, 1),
            new_ts: Timestamp(20),
        });
        assert_eq!(out.actions, vec![RiAction::BackoffRound]);
        // The update is broadcast to all queues, including the granted one.
        assert_eq!(out.sends.len(), 2);
        // The queues revoke grants held at the old timestamp and re-issue
        // them at the new one, so the issuer now awaits *both* grants; the
        // re-issued grant carries a fresh value that supersedes the stale
        // one.
        let out = ri.on_reply(&grant(4, pi(2, 1), GrantClass::Normal, None, 20));
        assert!(out.actions.is_empty(), "item 1's re-grant is still pending");
        let out = ri.on_reply(&grant(4, pi(1, 0), GrantClass::Normal, Some(8), 20));
        assert_eq!(out.actions, vec![RiAction::StartExecution]);
        assert_eq!(ri.read_value(li(1)), Some(8), "fresh value wins");
    }

    #[test]
    fn to_semi_lock_path_demotes_then_releases_after_normal_grants() {
        let mut ri = RequestIssuer::new(
            txn(5, CcMethod::TimestampOrdering),
            TsTuple::new(Timestamp(10), 5),
            accesses(),
        );
        ri.start();
        ri.on_reply(&grant(5, pi(1, 0), GrantClass::PreScheduled, Some(9), 10));
        let out = ri.on_reply(&grant(5, pi(2, 1), GrantClass::Normal, None, 10));
        assert_eq!(out.actions, vec![RiAction::StartExecution]);
        let out = ri.on_execution_done();
        assert_eq!(out.actions, vec![RiAction::Committed]);
        assert!(out
            .sends
            .iter()
            .all(|m| matches!(m, RequestMsg::Demote { .. })));
        assert_eq!(ri.phase(), RiPhase::AwaitingNormalGrants);
        // The normal grant for the pre-scheduled item arrives later.
        let out = ri.on_reply(&grant(5, pi(1, 0), GrantClass::Normal, None, 10));
        assert_eq!(out.actions, vec![RiAction::FullyReleased]);
        assert!(out
            .sends
            .iter()
            .all(|m| matches!(m, RequestMsg::Release { .. })));
        assert_eq!(ri.phase(), RiPhase::Finished);
    }

    #[test]
    fn to_without_prescheduled_releases_directly() {
        let mut ri = RequestIssuer::new(
            txn(6, CcMethod::TimestampOrdering),
            TsTuple::new(Timestamp(10), 5),
            accesses(),
        );
        ri.start();
        ri.on_reply(&grant(6, pi(1, 0), GrantClass::Normal, Some(9), 10));
        ri.on_reply(&grant(6, pi(2, 1), GrantClass::Normal, None, 10));
        let out = ri.on_execution_done();
        assert_eq!(
            out.actions,
            vec![RiAction::Committed, RiAction::FullyReleased]
        );
        assert!(out
            .sends
            .iter()
            .all(|m| matches!(m, RequestMsg::Release { .. })));
    }

    #[test]
    fn stale_pre_backoff_grant_is_ignored_after_round() {
        let mut ri = RequestIssuer::new(
            txn(12, CcMethod::PrecedenceAgreement),
            TsTuple::new(Timestamp(10), 5),
            accesses(),
        );
        ri.start();
        // Item 2 proposes a backoff; item 1's grant (issued at the original
        // timestamp) is still in flight when the round fires.
        let out = ri.on_reply(&ReplyMsg::Backoff {
            txn: TxnId(12),
            item: pi(2, 1),
            new_ts: Timestamp(45),
        });
        assert!(out.actions.is_empty());
        let out = ri.on_reply(&grant(12, pi(1, 0), GrantClass::Normal, Some(3), 10));
        assert_eq!(out.actions, vec![RiAction::BackoffRound]);
        assert_eq!(ri.phase(), RiPhase::AwaitingBackoffGrants);
        // The same grant, re-delivered late (it was revoked by the queue when
        // the `UpdatedTs` arrived), must NOT count towards all-granted: the
        // pre-round value it carries may no longer be the predecessor state
        // by the time the entry is re-granted at the backed-off timestamp.
        let out = ri.on_reply(&grant(12, pi(1, 0), GrantClass::Normal, Some(3), 10));
        assert!(out.actions.is_empty(), "stale grant ignored");
        assert_eq!(
            ri.phase(),
            RiPhase::AwaitingBackoffGrants,
            "still awaiting the re-issued grants"
        );
        // Fresh grants at the backed-off timestamp complete the negotiation.
        ri.on_reply(&grant(12, pi(1, 0), GrantClass::Normal, Some(9), 45));
        let out = ri.on_reply(&grant(12, pi(2, 1), GrantClass::Normal, None, 45));
        assert_eq!(out.actions, vec![RiAction::StartExecution]);
        assert_eq!(ri.read_value(li(1)), Some(9));
    }

    #[test]
    fn deadlock_abort_only_while_waiting() {
        let mut ri = RequestIssuer::new(
            txn(7, CcMethod::TwoPhaseLocking),
            TsTuple::new(Timestamp(0), 10),
            accesses(),
        );
        ri.start();
        let out = ri.abort_for_deadlock();
        assert_eq!(out.actions, vec![RiAction::Restart { rejected: false }]);
        assert_eq!(ri.phase(), RiPhase::Aborted);

        // Once executing, a deadlock abort is refused (the transaction is not
        // waiting for anything).
        let mut ri = RequestIssuer::new(
            txn(8, CcMethod::TwoPhaseLocking),
            TsTuple::new(Timestamp(0), 10),
            accesses(),
        );
        ri.start();
        ri.on_reply(&grant(8, pi(1, 0), GrantClass::Normal, Some(1), 0));
        ri.on_reply(&grant(8, pi(2, 1), GrantClass::Normal, None, 0));
        assert_eq!(ri.phase(), RiPhase::Executing);
        let out = ri.abort_for_deadlock();
        assert!(out.sends.is_empty() && out.actions.is_empty());
        assert_eq!(ri.phase(), RiPhase::Executing);
    }

    #[test]
    fn empty_transaction_executes_immediately() {
        let t = Transaction::builder(TxnId(9), SiteId(0)).build();
        let mut ri = RequestIssuer::new(t, TsTuple::new(Timestamp(1), 1), vec![]);
        let out = ri.start();
        assert!(out.sends.is_empty());
        assert_eq!(out.actions, vec![RiAction::StartExecution]);
        let out = ri.on_execution_done();
        assert_eq!(
            out.actions,
            vec![RiAction::Committed, RiAction::FullyReleased]
        );
    }

    #[test]
    fn default_write_value_is_txn_id() {
        let mut ri = RequestIssuer::new(
            txn(11, CcMethod::TwoPhaseLocking),
            TsTuple::new(Timestamp(0), 10),
            accesses(),
        );
        ri.start();
        ri.on_reply(&grant(11, pi(1, 0), GrantClass::Normal, Some(1), 0));
        ri.on_reply(&grant(11, pi(2, 1), GrantClass::Normal, None, 0));
        let out = ri.on_execution_done();
        let release_value = out.sends.iter().find_map(|m| match m {
            RequestMsg::Release {
                item, write_value, ..
            } if *item == pi(2, 1) => Some(*write_value),
            _ => None,
        });
        assert_eq!(release_value, Some(Some(11)));
    }
}
