//! Wait-for-graph deadlock detection for the 2PL transactions in the mix.
//!
//! The paper's Theorem 3 shows that in the unified system only 2PL-type
//! transactions can block the system: T/O transactions either proceed or are
//! rejected (and restart), and PA transactions either proceed or back off
//! their timestamps (at most once). Corollary 2 sharpens this: *every*
//! deadlock cycle contains at least one 2PL transaction. The detector below
//! exploits that result — when a cycle is found, the victim is chosen among
//! the 2PL transactions in the cycle (the youngest one), which is always
//! possible; finding a cycle with no 2PL member indicates a transient state
//! (e.g. a PA transaction whose timestamp update is still in flight) and is
//! not acted upon.
//!
//! The simulator runs detection as a periodic global scan over the wait-for
//! edges reported by every queue manager, which corresponds to a centralised
//! snapshot-based detector — adequate for a simulation study, and the
//! detection period is exposed as an experiment knob (parameter (6) in the
//! paper's list).

use std::collections::{BTreeMap, BTreeSet};

use dbmodel::TxnId;

/// A directed wait-for graph over transactions.
#[derive(Debug, Clone, Default)]
pub struct WaitForGraph {
    edges: BTreeMap<TxnId, BTreeSet<TxnId>>,
    nodes: BTreeSet<TxnId>,
}

impl WaitForGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        WaitForGraph::default()
    }

    /// Build a graph from `(waiter, holder)` edges.
    pub fn from_edges<I: IntoIterator<Item = (TxnId, TxnId)>>(edges: I) -> Self {
        let mut g = WaitForGraph::new();
        for (waiter, holder) in edges {
            g.add_edge(waiter, holder);
        }
        g
    }

    /// Add one `waiter → holder` edge.
    pub fn add_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if waiter == holder {
            return;
        }
        self.nodes.insert(waiter);
        self.nodes.insert(holder);
        self.edges.entry(waiter).or_default().insert(holder);
    }

    /// Number of distinct transactions appearing in the graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// True if `waiter` is (transitively or directly) recorded as waiting.
    pub fn is_waiting(&self, waiter: TxnId) -> bool {
        self.edges.contains_key(&waiter)
    }

    /// Find every elementary deadlock cycle reachable in the graph, reported
    /// as disjoint sets of transactions. Each strongly-connected component
    /// with more than one node (or with a self-loop, which we exclude at
    /// insertion) is a deadlock.
    pub fn find_deadlocks(&self) -> Vec<Vec<TxnId>> {
        // Tarjan's strongly-connected components, iteratively.
        #[derive(Default, Clone)]
        struct NodeData {
            index: Option<usize>,
            lowlink: usize,
            on_stack: bool,
        }
        let node_list: Vec<TxnId> = self.nodes.iter().copied().collect();
        let idx_of: BTreeMap<TxnId, usize> =
            node_list.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut data = vec![NodeData::default(); node_list.len()];
        let mut index = 0usize;
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<TxnId>> = Vec::new();

        // Iterative Tarjan to avoid recursion limits on long wait chains.
        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        for start in 0..node_list.len() {
            if data[start].index.is_some() {
                continue;
            }
            let mut call_stack = vec![Frame::Enter(start)];
            while let Some(frame) = call_stack.pop() {
                match frame {
                    Frame::Enter(v) => {
                        data[v].index = Some(index);
                        data[v].lowlink = index;
                        index += 1;
                        stack.push(v);
                        data[v].on_stack = true;
                        call_stack.push(Frame::Resume(v, 0));
                    }
                    Frame::Resume(v, mut child_idx) => {
                        let succs: Vec<usize> = self
                            .edges
                            .get(&node_list[v])
                            .map(|s| s.iter().filter_map(|t| idx_of.get(t).copied()).collect())
                            .unwrap_or_default();
                        let mut descended = false;
                        while child_idx < succs.len() {
                            let w = succs[child_idx];
                            child_idx += 1;
                            if data[w].index.is_none() {
                                call_stack.push(Frame::Resume(v, child_idx));
                                call_stack.push(Frame::Enter(w));
                                descended = true;
                                break;
                            } else if data[w].on_stack {
                                data[v].lowlink = data[v].lowlink.min(data[w].index.unwrap());
                            }
                        }
                        if descended {
                            continue;
                        }
                        // All children processed.
                        if data[v].lowlink == data[v].index.unwrap() {
                            let mut component = Vec::new();
                            loop {
                                let w = stack.pop().expect("stack non-empty");
                                data[w].on_stack = false;
                                component.push(node_list[w]);
                                if w == v {
                                    break;
                                }
                            }
                            if component.len() > 1 {
                                component.sort_unstable();
                                sccs.push(component);
                            }
                        }
                        // Propagate lowlink to the parent frame, if any.
                        if let Some(Frame::Resume(parent, _)) = call_stack.last() {
                            let parent = *parent;
                            data[parent].lowlink = data[parent].lowlink.min(data[v].lowlink);
                        }
                    }
                }
            }
        }
        sccs
    }

    /// Pick one victim per deadlock cycle: among the transactions of the
    /// cycle that the `is_eligible` predicate accepts (the unified system
    /// passes "is a 2PL transaction"), the one with the largest transaction
    /// id (the *youngest*, since ids are assigned in arrival order). Cycles
    /// with no eligible member yield no victim.
    pub fn choose_victims<F>(&self, is_eligible: F) -> Vec<TxnId>
    where
        F: Fn(TxnId) -> bool,
    {
        self.find_deadlocks()
            .into_iter()
            .filter_map(|cycle| cycle.into_iter().filter(|&t| is_eligible(t)).max())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn empty_graph_has_no_deadlocks() {
        let g = WaitForGraph::new();
        assert!(g.find_deadlocks().is_empty());
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        let g = WaitForGraph::from_edges([(t(1), t(2)), (t(2), t(3)), (t(3), t(4))]);
        assert!(g.find_deadlocks().is_empty());
        assert!(g.is_waiting(t(1)));
        assert!(!g.is_waiting(t(4)));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn two_cycle_is_detected() {
        let g = WaitForGraph::from_edges([(t(1), t(2)), (t(2), t(1))]);
        let dl = g.find_deadlocks();
        assert_eq!(dl, vec![vec![t(1), t(2)]]);
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(1));
        assert!(g.find_deadlocks().is_empty());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn long_cycle_and_attached_waiters() {
        // 1 -> 2 -> 3 -> 1 (cycle), with 4 and 5 waiting on the cycle.
        let g = WaitForGraph::from_edges([
            (t(1), t(2)),
            (t(2), t(3)),
            (t(3), t(1)),
            (t(4), t(1)),
            (t(5), t(4)),
        ]);
        let dl = g.find_deadlocks();
        assert_eq!(dl.len(), 1);
        assert_eq!(dl[0], vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn multiple_disjoint_cycles() {
        let g = WaitForGraph::from_edges([
            (t(1), t(2)),
            (t(2), t(1)),
            (t(10), t(11)),
            (t(11), t(12)),
            (t(12), t(10)),
        ]);
        let mut dl = g.find_deadlocks();
        dl.sort();
        assert_eq!(dl.len(), 2);
        assert_eq!(dl[0], vec![t(1), t(2)]);
        assert_eq!(dl[1], vec![t(10), t(11), t(12)]);
    }

    #[test]
    fn victim_is_youngest_eligible() {
        let g = WaitForGraph::from_edges([(t(1), t(2)), (t(2), t(3)), (t(3), t(1))]);
        // Only 1 and 2 are 2PL-type; victim must be the younger of them.
        let victims = g.choose_victims(|txn| txn.0 <= 2);
        assert_eq!(victims, vec![t(2)]);
        // No eligible member: no victim (transient non-2PL cycle).
        let victims = g.choose_victims(|txn| txn.0 >= 100);
        assert!(victims.is_empty());
    }

    #[test]
    fn big_random_graph_does_not_overflow_stack() {
        // A long chain ending in a small cycle exercises the iterative SCC.
        let mut edges = Vec::new();
        for i in 0..5000u64 {
            edges.push((t(i), t(i + 1)));
        }
        edges.push((t(5000), t(4990)));
        let g = WaitForGraph::from_edges(edges);
        let dl = g.find_deadlocks();
        assert_eq!(dl.len(), 1);
        assert_eq!(dl[0].len(), 11);
    }
}
