//! # unified-cc — the paper's unified concurrency control system (Section 4)
//!
//! This crate is the primary contribution of the reproduction: a concurrency
//! control engine in which **each transaction chooses its own protocol** —
//! Two-Phase Locking (2PL), Basic Timestamp Ordering (T/O), or Precedence
//! Agreement (PA) — and all three coexist on the same data while the overall
//! execution stays conflict serializable.
//!
//! The two halves of the paper's construction map onto two state machines:
//!
//! * [`item::ItemState`] + [`qm::QueueManager`] — the data-site side: the
//!   unified precedence assignment (Section 4.1) and the **semi-lock
//!   protocol** (Section 4.2) that unifies precedence enforcement. One
//!   [`qm::QueueManager`] per site owns the [`item::ItemState`] of every
//!   physical item stored there.
//! * [`ri::RequestIssuer`] — the user-site side: one per transaction
//!   incarnation, driving the request/grant/backoff/release conversation for
//!   whichever protocol the transaction selected.
//!
//! Both are *sans-IO*: they consume [`pam::RequestMsg`]/[`pam::ReplyMsg`]
//! values and produce messages and lifecycle actions, never touching clocks,
//! threads or sockets. The `sim` crate drives them through a discrete-event
//! simulation for the paper's experiments; the same state machines can be
//! embedded directly (see the `examples` package).
//!
//! Deadlock handling for the 2PL transactions in the mix (the only ones that
//! can deadlock — Theorem 3) lives in [`deadlock`].

pub mod deadlock;
pub mod item;
pub mod qm;
pub mod ri;
pub mod sink;

pub use deadlock::WaitForGraph;
pub use item::{
    EnforcementMode, HeldLock, ItemState, DEFAULT_VERSION_RETAIN, VERSION_HARD_CAP_FACTOR,
};
pub use qm::{ConfluentOp, QmEvent, QmOutput, QueueManager};
pub use ri::{RequestIssuer, RiAction, RiOutput, RiPhase};
pub use sink::QmSink;
